#include "exec.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "campaign/campaigns.hpp"
#include "campaign/closure.hpp"
#include "campaign/runner.hpp"
#include "campaign/sink.hpp"
#include "ckpt/checkpoint.hpp"
#include "diff/diff.hpp"

namespace autovision::svc {

namespace {

using campaign::CampaignConfig;
using campaign::CampaignResult;
using campaign::CampaignRunner;
using campaign::ClosureConfig;
using campaign::ClosureLoop;
using campaign::JobRecord;

std::uint64_t param_u64(const JobSpec& spec, const char* key,
                        std::uint64_t def) {
    const auto it = spec.params.find(key);
    if (it == spec.params.end()) return def;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    return end != it->second.c_str() && *end == '\0' ? v : def;
}

unsigned param_u32(const JobSpec& spec, const char* key, unsigned def) {
    return static_cast<unsigned>(param_u64(spec, key, def));
}

double param_double(const JobSpec& spec, const char* key, double def) {
    const auto it = spec.params.find(key);
    if (it == spec.params.end()) return def;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    return end != it->second.c_str() && *end == '\0' ? v : def;
}

bool param_flag(const JobSpec& spec, const char* key, bool def) {
    const auto it = spec.params.find(key);
    if (it == spec.params.end()) return def;
    return it->second != "0" && it->second != "false";
}

std::string param_str(const JobSpec& spec, const char* key) {
    const auto it = spec.params.find(key);
    return it != spec.params.end() ? it->second : std::string();
}

bool is_cancelled(const ExecHooks& hooks) {
    return hooks.cancelled && hooks.cancelled();
}

/// Pass verdict from a deterministic verdict line (to_verdict_line always
/// embeds the status field).
bool line_passed(const std::string& line) {
    return line.find("\"status\":\"pass\"") != std::string::npos;
}

void append_pct(std::string& out, double pct) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", pct);
    out += buf;
}

JobOutcome make_outcome(const JobSpec& spec, JobState state) {
    JobOutcome out;
    out.id = spec.id;
    out.state = state;
    return out;
}

// --- closure jobs ----------------------------------------------------------

JobOutcome run_closure_job(const JobSpec& spec, const ExecConfig& cfg,
                           const ExecHooks& hooks,
                           const std::string& resume_blob) {
    ClosureConfig cc;
    cc.seed = param_u64(spec, "seed", 1);
    cc.batch_size = param_u32(spec, "batch-size", 12);
    cc.max_batches = param_u32(spec, "batches", 6);
    cc.target_percent = param_double(spec, "target", 95.0);
    cc.bias = param_flag(spec, "bias", true);
    cc.warm_start = param_flag(spec, "warm-start", true);

    ClosureLoop loop(cc);
    if (!resume_blob.empty()) {
        // A stale or foreign blob (config hash mismatch, malformed) is
        // discarded: correctness over continuity, the job restarts fresh.
        std::istringstream is(resume_blob);
        std::string err;
        ClosureLoop restored(cc);
        if (restored.restore(is, &err)) loop = std::move(restored);
    }

    CampaignConfig rc;
    rc.jobs = cfg.job_workers;
    rc.timeout = cfg.timeout;
    rc.retries = cfg.retries;
    // Streamed records carry the campaign-wide index (the loop itself only
    // re-bases after the batch returns).
    unsigned index_base = 0;
    if (hooks.on_record) {
        rc.on_record = [&hooks, &index_base](const JobRecord& rec) {
            JobRecord fixed = rec;
            fixed.index += index_base;
            hooks.on_record(fixed);
        };
    }

    const std::uint32_t total = cc.max_batches;
    if (hooks.on_progress) hooks.on_progress(loop.next_batch(), total);

    bool cancelled = false;
    unsigned since_ckpt = 0;
    while (!loop.done()) {
        if (is_cancelled(hooks)) {
            cancelled = true;
            break;
        }
        index_base = loop.scenarios_run();
        loop.run_batch(rc);
        if (hooks.on_progress) hooks.on_progress(loop.next_batch(), total);
        if (cfg.ckpt_interval != 0 && ++since_ckpt >= cfg.ckpt_interval &&
            !loop.done() && hooks.on_checkpoint) {
            since_ckpt = 0;
            std::ostringstream blob;
            if (loop.save(blob)) hooks.on_checkpoint(blob.str());
        }
    }

    JobOutcome out =
        make_outcome(spec, cancelled ? JobState::kCancelled : JobState::kDone);
    out.pass = !cancelled;
    for (const std::string& v : loop.verdicts()) {
        if (!line_passed(v)) out.pass = false;
        out.verdicts += v;
        out.verdicts += '\n';
    }

    std::ostringstream cover;
    loop.merged().write_json(cover);
    out.cover_json = cover.str();

    std::string sum;
    for (const campaign::BatchSummary& b : loop.batches()) {
        sum += "batch " + std::to_string(b.index) + ": +" +
               std::to_string(b.new_bins) + " new bins, " +
               std::to_string(b.goal_hit) + " goal bins hit (";
        append_pct(sum, b.percent);
        sum += "%)\n";
    }
    if (cancelled) {
        sum += "cancelled after " + std::to_string(loop.scenarios_run()) +
               " scenarios\n";
    } else {
        const ClosureConfig& c = cc;
        sum += std::string(loop.merged().percent() >= c.target_percent
                               ? "target reached"
                               : loop.next_batch() >= c.max_batches
                                     ? "batch budget exhausted"
                                     : "saturated") +
               " after " + std::to_string(loop.scenarios_run()) +
               " scenarios: ";
        append_pct(sum, loop.merged().percent());
        sum += "% of " + std::to_string(loop.merged().goal_bins()) +
               " goal bins\n";
    }
    std::ostringstream text;
    loop.merged().write_text(text);
    out.summary = sum + text.str();
    return out;
}

// --- diff jobs -------------------------------------------------------------

struct DiffDone {
    bool pass = false;
    double genuine = 0.0;
    std::string line;
};

constexpr char kDiffSection[] = "svc.diff.done";

std::string save_diff_progress(const JobSpec& spec,
                               const std::map<std::uint32_t, DiffDone>& done) {
    ckpt::Manifest m;
    m.config_hash = spec.config_hash();
    m.sim_time = done.size();
    ckpt::Saver saver(m);
    rtlsim::SnapWriter& w = saver.section(kDiffSection);
    w.u32(static_cast<std::uint32_t>(done.size()));
    for (const auto& [idx, d] : done) {
        w.u32(idx);
        w.bool8(d.pass);
        std::uint64_t bits = 0;
        static_assert(sizeof bits == sizeof d.genuine);
        std::memcpy(&bits, &d.genuine, sizeof bits);
        w.u64(bits);
        w.str(d.line);
    }
    std::ostringstream os;
    return saver.write_to(os) ? os.str() : std::string();
}

std::map<std::uint32_t, DiffDone> load_diff_progress(
    const JobSpec& spec, const std::string& blob) {
    std::map<std::uint32_t, DiffDone> done;
    if (blob.empty()) return done;
    std::istringstream is(blob);
    ckpt::Loader loader;
    if (!loader.load(is, spec.config_hash())) return done;
    rtlsim::SnapReader r = loader.reader(kDiffSection);
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok_so_far(); ++i) {
        const std::uint32_t idx = r.u32();
        DiffDone d;
        d.pass = r.bool8();
        const std::uint64_t bits = r.u64();
        std::memcpy(&d.genuine, &bits, sizeof d.genuine);
        d.line = r.str();
        done[idx] = std::move(d);
    }
    if (!r.ok()) done.clear();  // malformed: restart from scratch
    return done;
}

JobOutcome run_diff_job(const JobSpec& spec, const ExecConfig& cfg,
                        const ExecHooks& hooks,
                        const std::string& resume_blob) {
    campaign::DiffCampaignConfig dc;
    dc.seed = param_u64(spec, "seed", 1);
    dc.count = param_u32(spec, "seeds", 20);
    bool known = false;
    const std::string inject = param_str(spec, "inject");
    dc.inject = inject.empty()
                    ? diff::DiffFault::kNone
                    : diff::fault_from_string(inject, &known);
    if (!inject.empty() && !known) {
        JobOutcome out = make_outcome(spec, JobState::kFailed);
        out.summary = "unknown inject fault: " + inject;
        return out;
    }
    dc.repro_dir = param_str(spec, "repro-out");
    if (!dc.repro_dir.empty()) {
        ::mkdir(dc.repro_dir.c_str(), 0755);  // EEXIST is fine
    }

    const std::vector<campaign::SimJob> jobs = campaign::diff_batch_jobs(dc);
    const std::uint32_t total = static_cast<std::uint32_t>(jobs.size());

    std::map<std::uint32_t, DiffDone> done =
        load_diff_progress(spec, resume_blob);
    if (hooks.on_progress) {
        hooks.on_progress(static_cast<std::uint32_t>(done.size()), total);
    }

    if (is_cancelled(hooks)) return make_outcome(spec, JobState::kCancelled);

    // Re-run only the scenarios with no recorded verdict; each job is
    // seed-deterministic, so the merged verdict set is identical to an
    // uninterrupted batch.
    std::vector<campaign::SimJob> remaining;
    std::vector<std::uint32_t> orig_index;
    for (std::uint32_t i = 0; i < total; ++i) {
        if (done.count(i) == 0) {
            remaining.push_back(jobs[i]);
            orig_index.push_back(i);
        }
    }

    if (!remaining.empty()) {
        std::mutex mu;
        unsigned since_ckpt = 0;
        CampaignConfig rc;
        rc.jobs = cfg.job_workers;
        rc.timeout = cfg.timeout;
        rc.retries = cfg.retries;
        rc.on_record = [&](const JobRecord& rec) {
            JobRecord fixed = rec;
            fixed.index = orig_index[rec.index];
            DiffDone d;
            d.pass = fixed.passed();
            const auto it = fixed.report.metrics.find("genuine");
            d.genuine = it != fixed.report.metrics.end() ? it->second : 0.0;
            d.line = campaign::to_verdict_line(fixed);
            std::string blob;
            std::uint32_t n = 0;
            {
                const std::lock_guard lk(mu);
                done[static_cast<std::uint32_t>(fixed.index)] = std::move(d);
                n = static_cast<std::uint32_t>(done.size());
                if (cfg.ckpt_interval != 0 &&
                    ++since_ckpt >= cfg.ckpt_interval && n < total) {
                    since_ckpt = 0;
                    blob = save_diff_progress(spec, done);
                }
            }
            if (hooks.on_record) hooks.on_record(fixed);
            if (hooks.on_progress) hooks.on_progress(n, total);
            if (!blob.empty() && hooks.on_checkpoint) hooks.on_checkpoint(blob);
        };
        CampaignRunner runner(rc);
        (void)runner.run(remaining);
    }

    JobOutcome out = make_outcome(spec, JobState::kDone);
    out.pass = true;
    double genuine = 0.0;
    unsigned failed = 0;
    for (const auto& [idx, d] : done) {  // map: submission order
        if (!d.pass) {
            out.pass = false;
            ++failed;
        }
        genuine += d.genuine;
        out.verdicts += d.line;
        out.verdicts += '\n';
    }
    if (param_flag(spec, "expect-genuine", false) && genuine == 0.0) {
        out.pass = false;
        out.summary += "!! expect-genuine: no genuine divergence flagged\n";
    }
    out.summary += "diff: " + std::to_string(done.size()) + " scenarios, " +
                   std::to_string(failed) + " failed, " +
                   std::to_string(static_cast<long long>(genuine)) +
                   " genuine divergences\n";
    return out;
}

}  // namespace

JobOutcome run_service_job(const JobSpec& spec, const ExecConfig& cfg,
                           const ExecHooks& hooks,
                           const std::string& resume_blob) {
    try {
        if (spec.kind == "closure") {
            return run_closure_job(spec, cfg, hooks, resume_blob);
        }
        if (spec.kind == "diff") {
            return run_diff_job(spec, cfg, hooks, resume_blob);
        }
        JobOutcome out = make_outcome(spec, JobState::kFailed);
        out.summary =
            "unknown job kind '" + spec.kind + "' (valid: closure, diff)";
        return out;
    } catch (const std::exception& e) {
        JobOutcome out = make_outcome(spec, JobState::kFailed);
        out.summary = std::string("execution error: ") + e.what();
        return out;
    }
}

}  // namespace autovision::svc
