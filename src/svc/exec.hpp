// svc: the execution half of the campaign service.
//
// Maps a wire JobSpec onto the existing src/campaign machinery — the
// closure loop for "closure" jobs, the differential-oracle batch for
// "diff" jobs — and adds the two things a daemon needs on top of the batch
// CLIs: streaming (each completed simulation job surfaces immediately
// through ExecHooks::on_record, index re-based to campaign-wide
// submission order) and
// resumability (every ckpt_interval completed units the current progress
// is serialized through ExecHooks::on_checkpoint as a ckpt-section blob;
// run_service_job started with that blob continues where the previous
// process died).
//
// Determinism contract: a job's JobOutcome.verdicts and .cover_json are
// byte-identical whether the job ran uninterrupted, was resumed from any
// checkpoint, or ran through the batch CLI with the same parameters — the
// property the CI service smoke enforces with kill -9 and cmp.
#pragma once

#include <chrono>
#include <functional>
#include <string>

#include "campaign/job.hpp"
#include "wire.hpp"

namespace autovision::svc {

struct ExecConfig {
    /// Worker threads of the per-job campaign pool (0 = hw concurrency).
    unsigned job_workers = 0;
    /// Completed units (closure batches / diff scenarios) between progress
    /// checkpoints. 0 disables checkpointing.
    unsigned ckpt_interval = 1;
    /// Per-simulation watchdog budget; 0 = none.
    std::chrono::milliseconds timeout{0};
    unsigned retries = 1;
};

struct ExecHooks {
    /// One completed simulation job. Serialized by the campaign runner;
    /// may be invoked from a worker thread. Format with campaign::to_jsonl
    /// for streaming, fold report.metrics for rollups.
    std::function<void(const campaign::JobRecord& rec)> on_record;
    /// Persist a progress checkpoint; called between units with the
    /// latest resume blob.
    std::function<void(const std::string& blob)> on_checkpoint;
    /// Units-done progress (closure batches / diff scenarios done, total).
    std::function<void(std::uint32_t done, std::uint32_t total)> on_progress;
    /// Cooperative cancel, polled between units.
    std::function<bool()> cancelled;
};

/// Run one service job to completion (or cancellation). `resume_blob` is
/// the job's latest checkpoint ("" = fresh start); a blob whose config
/// hash does not match the spec is ignored with a fresh start — never
/// trusted into a differently parameterised run.
[[nodiscard]] JobOutcome run_service_job(const JobSpec& spec,
                                         const ExecConfig& cfg,
                                         const ExecHooks& hooks,
                                         const std::string& resume_blob);

}  // namespace autovision::svc
