// svc: the persistent, sharded job queue.
//
// Every state transition of a service job is one journal record:
//
//   u8 1  submit    JobSpec (wire encoding)
//   u8 2  progress  u64 job id, u32 checkpoint ordinal, bytes resume-blob
//   u8 3  done      u64 job id, JobOutcome (wire encoding)
//   u8 4  cancel    u64 job id
//
// Records for job `id` land in shard file `shard-<id % shards>.jnl` inside
// the state directory — appends from concurrently running executors only
// contend when their jobs share a shard, and a shard is the natural unit a
// future multi-process (then multi-machine) split hands out. Recovery
// replays every shard, rebuilds the per-job state, and exposes the jobs
// that were submitted but never finished — each with its latest resume
// blob, so an executor can continue a killed job from its last checkpoint
// instead of from scratch.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "journal.hpp"
#include "wire.hpp"

namespace autovision::svc {

/// Recovered (and live) state of one job.
struct QueueEntry {
    JobSpec spec;
    std::string resume_blob;     ///< latest progress checkpoint ("" = none)
    std::uint32_t checkpoints = 0;
    std::uint32_t resumed = 0;   ///< submit-time replays of prior progress
    bool finished = false;       ///< a done record exists
    bool cancelled = false;
    JobOutcome outcome;          ///< valid when finished
};

class PersistentQueue {
public:
    /// Open (creating) `dir` with `shards` journal files and replay them.
    /// False on I/O failure; torn tails are truncated and reported via
    /// recovery_torn().
    [[nodiscard]] bool open(const std::string& dir, unsigned shards,
                            std::string* err);

    /// Persist a submission; assigns and returns the job id (0 on write
    /// failure). Ids are dense and strictly increasing across restarts.
    [[nodiscard]] std::uint64_t record_submit(JobSpec spec);

    /// Persist a progress checkpoint (the job's latest resume blob).
    [[nodiscard]] bool record_progress(std::uint64_t id,
                                       const std::string& blob);

    /// Persist the terminal outcome.
    [[nodiscard]] bool record_done(std::uint64_t id, const JobOutcome& out);

    /// Persist a cancellation of a queued job.
    [[nodiscard]] bool record_cancel(std::uint64_t id);

    /// Ids of jobs with no terminal record, submission order. After a
    /// crash these are the jobs to re-enqueue (with their resume blobs).
    [[nodiscard]] std::vector<std::uint64_t> unfinished() const;

    /// Every known job id, submission order.
    [[nodiscard]] std::vector<std::uint64_t> ids() const;

    /// Snapshot of a job's entry; false when the id is unknown.
    [[nodiscard]] bool find(std::uint64_t id, QueueEntry* out) const;

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] unsigned shards() const noexcept {
        return static_cast<unsigned>(writers_.size());
    }
    /// True when any shard lost a torn tail during open().
    [[nodiscard]] bool recovery_torn() const noexcept { return torn_; }

private:
    void apply_record(std::span<const std::uint8_t> payload);
    [[nodiscard]] JournalWriter& shard_for(std::uint64_t id) {
        return *writers_[id % writers_.size()];
    }

    mutable std::mutex mu_;                 // entries_ + next_id_
    std::map<std::uint64_t, QueueEntry> entries_;
    std::uint64_t next_id_ = 1;
    std::vector<std::unique_ptr<JournalWriter>> writers_;
    std::vector<std::unique_ptr<std::mutex>> shard_mu_;  // one per shard
    bool torn_ = false;
};

}  // namespace autovision::svc
