// svc: the campaign-service wire protocol.
//
// Length-prefixed binary frames over a local stream socket:
//
//   u32  payload length (big-endian, <= kMaxFrame)
//   u8   message type (MsgType)
//   ...  message body, SnapWriter-encoded (big-endian, length-prefixed
//        strings — the same byte discipline as the checkpoint format)
//
// One request frame gets one response frame, except kWait: the daemon
// streams zero or more kRecord frames (one JSONL line per completed job,
// reusing campaign::to_jsonl) and terminates the exchange with kDone
// carrying the job's final outcome and artifacts. Unknown or malformed
// requests are answered with kError; a protocol-version mismatch in the
// kHello handshake is fatal for the connection.
//
// Everything here is transport-independent (encode/decode work on byte
// buffers) so the framing can be unit-tested without sockets; the fd-based
// read_frame/write_frame helpers below are the only POSIX-facing piece.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "kernel/snapshot.hpp"

namespace autovision::svc {

/// Bumped on any incompatible frame/message change; exchanged in kHello.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on a frame payload: a closure cover.json plus verdict lines
/// is tens of KiB; 16 MiB leaves room for large artifact frames while a
/// corrupt length prefix can never allocate unbounded memory.
inline constexpr std::uint32_t kMaxFrame = 16u << 20;

enum class MsgType : std::uint8_t {
    kHello = 1,        ///< client -> daemon: version + client name
    kHelloOk = 2,      ///< daemon -> client: version accepted
    kSubmit = 3,       ///< client -> daemon: JobSpec (id ignored)
    kSubmitOk = 4,     ///< daemon -> client: SubmitResult (accepted or not)
    kStatus = 5,       ///< client -> daemon: JobRef
    kStatusOk = 6,     ///< daemon -> client: JobStatusInfo
    kList = 7,         ///< client -> daemon: (empty body)
    kListOk = 8,       ///< daemon -> client: JobList
    kWait = 9,         ///< client -> daemon: JobRef; subscribes until done
    kRecord = 10,      ///< daemon -> client: RecordLine (streamed JSONL)
    kDone = 11,        ///< daemon -> client: JobOutcome (ends a kWait)
    kCancel = 12,      ///< client -> daemon: JobRef
    kCancelOk = 13,    ///< daemon -> client: JobStatusInfo after the cancel
    kShutdown = 14,    ///< client -> daemon: request a graceful shutdown
    kShutdownOk = 15,  ///< daemon -> client: shutdown acknowledged
    kError = 16,       ///< daemon -> client: ErrorInfo
};

[[nodiscard]] const char* to_string(MsgType t);

/// Job priority classes, highest first. The ready queue is strict priority
/// with FIFO order inside a class.
enum class Priority : std::uint8_t { kHigh = 0, kNormal = 1, kBatch = 2 };

[[nodiscard]] const char* to_string(Priority p);
/// Parse "high"/"normal"/"batch"; false leaves *out untouched.
[[nodiscard]] bool priority_from_string(const std::string& s, Priority* out);

/// What a client submits: a campaign kind plus its string parameters (the
/// same knobs the batch CLI exposes: seed, batches, batch-size, seeds,
/// inject, ...). The daemon assigns `id`.
struct JobSpec {
    std::uint64_t id = 0;
    std::string kind;    ///< "closure" | "diff"
    std::string client;  ///< free-form submitter tag (admission accounting)
    Priority priority = Priority::kNormal;
    std::map<std::string, std::string> params;

    void encode(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool decode(rtlsim::SnapReader& r);

    /// Identity hash over (kind, params): a resume blob recorded for a job
    /// only restores into an identically parameterised job.
    [[nodiscard]] std::uint64_t config_hash() const;
};

struct JobRef {
    std::uint64_t id = 0;
    void encode(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool decode(rtlsim::SnapReader& r);
};

struct SubmitResult {
    bool accepted = false;
    std::uint64_t id = 0;
    std::string reason;  ///< admission rejection reason when !accepted
    void encode(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool decode(rtlsim::SnapReader& r);
};

/// Job lifecycle as the status/list calls report it.
enum class JobState : std::uint8_t {
    kQueued = 0,
    kRunning = 1,
    kDone = 2,
    kFailed = 3,
    kCancelled = 4,
    kUnknown = 5,
};
[[nodiscard]] const char* to_string(JobState s);

struct JobStatusInfo {
    std::uint64_t id = 0;
    JobState state = JobState::kUnknown;
    std::string kind;
    Priority priority = Priority::kNormal;
    std::uint32_t units_done = 0;   ///< batches (closure) / jobs (diff)
    std::uint32_t units_total = 0;  ///< 0 when not yet known
    std::uint32_t checkpoints = 0;  ///< progress records persisted so far
    std::uint32_t resumed = 0;      ///< times this job resumed from a ckpt
    void encode(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool decode(rtlsim::SnapReader& r);
};

struct JobList {
    std::vector<JobStatusInfo> jobs;
    void encode(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool decode(rtlsim::SnapReader& r);
};

/// One streamed result line (campaign::to_jsonl of a completed job).
struct RecordLine {
    std::uint64_t id = 0;
    std::string line;
    void encode(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool decode(rtlsim::SnapReader& r);
};

/// Terminal result of a service job, with its deterministic artifacts
/// inline: the verdict lines (campaign::to_verdict_line, submission order,
/// newline-joined) and — for closure jobs — the merged coverage JSON. Both
/// are byte-identical whether the job ran uninterrupted or resumed from a
/// crash-time checkpoint.
struct JobOutcome {
    std::uint64_t id = 0;
    JobState state = JobState::kUnknown;
    bool pass = false;
    std::string summary;     ///< human-readable rollup
    std::string verdicts;    ///< deterministic verdict lines
    std::string cover_json;  ///< merged coverage (closure jobs)
    void encode(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool decode(rtlsim::SnapReader& r);
};

struct ErrorInfo {
    std::string message;
    void encode(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool decode(rtlsim::SnapReader& r);
};

struct Hello {
    std::uint32_t version = kProtocolVersion;
    std::string name;
    void encode(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool decode(rtlsim::SnapReader& r);
};

/// A parsed frame: type + body bytes (without the length prefix).
struct Frame {
    MsgType type = MsgType::kError;
    std::vector<std::uint8_t> body;

    [[nodiscard]] rtlsim::SnapReader reader() const {
        return rtlsim::SnapReader(body);
    }
};

/// Serialize a message into a ready-to-send frame image (length prefix +
/// type + body).
template <typename Msg>
[[nodiscard]] std::vector<std::uint8_t> encode_frame(MsgType t,
                                                     const Msg& msg) {
    rtlsim::SnapWriter body;
    msg.encode(body);
    rtlsim::SnapWriter out;
    out.u32(static_cast<std::uint32_t>(body.size() + 1));
    out.u8(static_cast<std::uint8_t>(t));
    std::vector<std::uint8_t> img = out.take();
    const std::vector<std::uint8_t>& b = body.buffer();
    img.insert(img.end(), b.begin(), b.end());
    return img;
}

/// Parse one frame from a contiguous image; false on a short/oversized
/// image. `*consumed` reports the frame's total size on success.
[[nodiscard]] bool decode_frame(std::span<const std::uint8_t> image,
                                Frame* out, std::size_t* consumed);

// --- fd-based framing (blocking, EINTR-safe) -------------------------------

/// Write a full frame to a connected socket; false on error/EPIPE.
[[nodiscard]] bool write_frame_fd(int fd, MsgType t,
                                  std::span<const std::uint8_t> body);

template <typename Msg>
[[nodiscard]] bool send_msg(int fd, MsgType t, const Msg& msg) {
    rtlsim::SnapWriter body;
    msg.encode(body);
    return write_frame_fd(fd, t, body.buffer());
}

/// Read a full frame; false on EOF, error, or an oversized length prefix.
[[nodiscard]] bool read_frame_fd(int fd, Frame* out);

}  // namespace autovision::svc
