// svc: admission control and the priority ready-queue.
//
// The daemon's backpressure edge. Submissions are admitted against bounded
// budgets — total unfinished jobs, per-client unfinished jobs, and queued
// jobs per priority class — and rejected with a reason (carried back over
// the wire in SubmitResult) once a budget is exhausted, instead of letting
// one client grow the queue without limit. Admitted jobs wait in a strict-
// priority ready queue: high before normal before batch, FIFO inside a
// class so same-priority submitters are served in arrival order.
//
// Pure bookkeeping, no I/O, no threads of its own (the daemon provides
// the locking context for admit/finished; PriorityReadyQueue has its own
// blocking pop) — which keeps it unit-testable without a daemon.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "wire.hpp"

namespace autovision::svc {

struct AdmissionConfig {
    std::size_t max_jobs = 64;        ///< unfinished jobs, all clients
    std::size_t max_per_client = 16;  ///< unfinished jobs per client tag
    /// Queued (not yet running) jobs allowed per priority class; keeps a
    /// flood of batch work from starving the queue's bound for high-
    /// priority submitters.
    std::size_t max_queued_per_class = 32;
};

/// Decision + accounting. Call admit() before enqueueing a job, finished()
/// when its terminal record lands (done, failed, or cancelled).
class AdmissionController {
public:
    explicit AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {}

    struct Decision {
        bool admit = false;
        std::string reason;
    };

    /// Check budgets and, when admitted, charge them.
    [[nodiscard]] Decision admit(const JobSpec& spec);
    /// A queued job started running: release its per-class queued slot.
    void started(const JobSpec& spec);
    /// A job reached a terminal state: release its budgets.
    void finished(const JobSpec& spec);

    [[nodiscard]] std::size_t in_flight() const;

private:
    AdmissionConfig cfg_;
    mutable std::mutex mu_;
    std::size_t total_ = 0;
    std::map<std::string, std::size_t> per_client_;
    std::map<Priority, std::size_t> queued_;
};

/// Strict-priority FIFO of ready job ids. pop() blocks until an id is
/// available or the queue is closed; remove() supports cancelling a job
/// that has not started yet.
class PriorityReadyQueue {
public:
    void push(std::uint64_t id, Priority p);
    /// Blocking; nullopt once closed and drained.
    [[nodiscard]] std::optional<std::uint64_t> pop();
    /// True when the id was still queued (and is now removed).
    [[nodiscard]] bool remove(std::uint64_t id);
    void close();
    [[nodiscard]] std::size_t size() const;

private:
    /// Key: (priority class, arrival sequence) — strict priority, FIFO
    /// within a class.
    using Key = std::pair<std::uint8_t, std::uint64_t>;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<Key, std::uint64_t> ready_;
    std::uint64_t seq_ = 0;
    bool closed_ = false;
};

}  // namespace autovision::svc
