#include "journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "kernel/snapshot.hpp"

namespace autovision::svc {

namespace {

constexpr std::size_t kHeaderBytes = 4 + 4 + 8;

bool read_exact(int fd, std::uint8_t* p, std::size_t n) {
    std::size_t got = 0;
    while (got != n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (r == 0) return false;
        got += static_cast<std::size_t>(r);
    }
    return true;
}

bool write_exact(int fd, const std::uint8_t* p, std::size_t n) {
    while (n != 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

std::uint64_t payload_hash(std::span<const std::uint8_t> payload) {
    return rtlsim::snap_hash64(std::string_view(
        reinterpret_cast<const char*>(payload.data()), payload.size()));
}

ReplayStats scan_fd(int fd, std::size_t file_size,
                    const std::function<void(std::span<const std::uint8_t>)>&
                        fn) {
    ReplayStats stats;
    std::vector<std::uint8_t> payload;
    while (true) {
        if (stats.valid_bytes + kHeaderBytes > file_size) break;
        std::uint8_t head[kHeaderBytes];
        if (!read_exact(fd, head, sizeof head)) break;
        rtlsim::SnapReader r(std::span<const std::uint8_t>(head, sizeof head));
        const std::uint32_t magic = r.u32();
        const std::uint32_t len = r.u32();
        const std::uint64_t sum = r.u64();
        if (magic != kJournalMagic || len > kMaxRecord ||
            stats.valid_bytes + kHeaderBytes + len > file_size) {
            break;
        }
        payload.resize(len);
        if (!read_exact(fd, payload.data(), len)) break;
        if (payload_hash(payload) != sum) break;
        if (fn) fn(payload);
        ++stats.records;
        stats.valid_bytes += kHeaderBytes + len;
    }
    stats.torn_bytes = file_size - stats.valid_bytes;
    stats.torn = stats.torn_bytes != 0;
    return stats;
}

}  // namespace

ReplayStats replay_journal(
    const std::string& path,
    const std::function<void(std::span<const std::uint8_t>)>& fn) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        ReplayStats stats;
        if (errno != ENOENT) {
            stats.ok = false;
            stats.error = path + ": " + std::strerror(errno);
        }
        return stats;  // absent file: empty, clean journal
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        ReplayStats stats;
        stats.ok = false;
        stats.error = path + ": " + std::strerror(errno);
        return stats;
    }
    ReplayStats stats = scan_fd(fd, static_cast<std::size_t>(st.st_size), fn);
    ::close(fd);
    return stats;
}

bool JournalWriter::open(
    const std::string& path,
    const std::function<void(std::span<const std::uint8_t>)>& fn,
    std::string* err) {
    close();
    recovery_ = replay_journal(path, fn);
    if (!recovery_.ok) {
        if (err != nullptr) *err = recovery_.error;
        return false;
    }
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
        if (err != nullptr) *err = path + ": " + std::strerror(errno);
        return false;
    }
    // Drop the torn tail so the next append lands at a record boundary.
    if (::ftruncate(fd, static_cast<off_t>(recovery_.valid_bytes)) != 0 ||
        ::lseek(fd, 0, SEEK_END) < 0) {
        if (err != nullptr) *err = path + ": " + std::strerror(errno);
        ::close(fd);
        return false;
    }
    fd_ = fd;
    path_ = path;
    return true;
}

bool JournalWriter::append(std::span<const std::uint8_t> payload) {
    if (fd_ < 0 || payload.size() > kMaxRecord) return false;
    rtlsim::SnapWriter w;
    w.u32(kJournalMagic);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.u64(payload_hash(payload));
    std::vector<std::uint8_t> rec = w.take();
    rec.insert(rec.end(), payload.begin(), payload.end());
    if (!write_exact(fd_, rec.data(), rec.size())) return false;
    // Durability point: after this returns, a kill -9 can no longer lose
    // the record (the service-smoke kill lands between appends).
    return ::fdatasync(fd_) == 0;
}

void JournalWriter::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    path_.clear();
}

}  // namespace autovision::svc
