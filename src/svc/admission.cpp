#include "admission.hpp"

namespace autovision::svc {

AdmissionController::Decision AdmissionController::admit(
    const JobSpec& spec) {
    const std::lock_guard lk(mu_);
    Decision d;
    if (total_ >= cfg_.max_jobs) {
        d.reason = "service at capacity (" + std::to_string(cfg_.max_jobs) +
                   " unfinished jobs); retry later";
        return d;
    }
    const std::size_t mine = per_client_[spec.client];
    if (mine >= cfg_.max_per_client) {
        d.reason = "client '" + spec.client + "' at its quota (" +
                   std::to_string(cfg_.max_per_client) +
                   " unfinished jobs)";
        return d;
    }
    if (queued_[spec.priority] >= cfg_.max_queued_per_class) {
        d.reason = std::string("priority class '") +
                   to_string(spec.priority) + "' queue full (" +
                   std::to_string(cfg_.max_queued_per_class) + ")";
        return d;
    }
    ++total_;
    ++per_client_[spec.client];
    ++queued_[spec.priority];
    d.admit = true;
    return d;
}

void AdmissionController::started(const JobSpec& spec) {
    const std::lock_guard lk(mu_);
    auto it = queued_.find(spec.priority);
    if (it != queued_.end() && it->second != 0) --it->second;
}

void AdmissionController::finished(const JobSpec& spec) {
    const std::lock_guard lk(mu_);
    if (total_ != 0) --total_;
    auto it = per_client_.find(spec.client);
    if (it != per_client_.end() && it->second != 0) {
        if (--it->second == 0) per_client_.erase(it);
    }
}

std::size_t AdmissionController::in_flight() const {
    const std::lock_guard lk(mu_);
    return total_;
}

void PriorityReadyQueue::push(std::uint64_t id, Priority p) {
    const std::lock_guard lk(mu_);
    ready_.emplace(Key{static_cast<std::uint8_t>(p), seq_++}, id);
    cv_.notify_one();
}

std::optional<std::uint64_t> PriorityReadyQueue::pop() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return closed_ || !ready_.empty(); });
    if (ready_.empty()) return std::nullopt;
    const auto it = ready_.begin();  // lowest (priority, seq): next up
    const std::uint64_t id = it->second;
    ready_.erase(it);
    return id;
}

bool PriorityReadyQueue::remove(std::uint64_t id) {
    const std::lock_guard lk(mu_);
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
        if (it->second == id) {
            ready_.erase(it);
            return true;
        }
    }
    return false;
}

void PriorityReadyQueue::close() {
    const std::lock_guard lk(mu_);
    closed_ = true;
    cv_.notify_all();
}

std::size_t PriorityReadyQueue::size() const {
    const std::lock_guard lk(mu_);
    return ready_.size();
}

}  // namespace autovision::svc
