// svc: campaignd — the campaign service daemon.
//
// Glue between the four leaf pieces: the persistent sharded queue (journal
// recovery + durable state transitions), the admission controller and
// priority ready-queue (bounded backpressure), the executor (campaign
// machinery + checkpoint/resume), and the wire protocol over an AF_UNIX
// listener. One accept loop, one connection thread per client, a small
// pool of executor threads each running one job at a time.
//
// Crash story: every submit/progress/done lands in the journal before it
// is acknowledged or acted on, so a daemon killed with SIGKILL restarts
// into the same job set — finished jobs answer status/wait from their
// recorded outcomes, unfinished jobs re-enter the ready queue with their
// latest resume blob and continue from the last checkpoint. A graceful
// shutdown (kShutdown or SIGTERM) additionally stops between units: the
// running jobs checkpoint out and are preserved as unfinished rather than
// cancelled.
//
// Streaming: each completed simulation record is fanned out to the kWait
// subscribers of its job as a kRecord frame (campaign::to_jsonl), mirrored
// to <state_dir>/job-<id>.jsonl (the sink discipline: whole line, one
// write), and its obs.* metrics are folded into a service-wide rollup
// written to <state_dir>/metrics-rollup.json.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "admission.hpp"
#include "exec.hpp"
#include "queue.hpp"
#include "socket.hpp"
#include "wire.hpp"

namespace autovision::svc {

struct DaemonConfig {
    std::string socket_path;
    std::string state_dir;
    unsigned shards = 4;     ///< journal shard files
    unsigned executors = 1;  ///< concurrently running jobs
    ExecConfig exec;
    AdmissionConfig admission;
    bool quiet = false;  ///< suppress stderr progress lines
};

class Daemon {
public:
    explicit Daemon(DaemonConfig cfg);
    ~Daemon();

    /// Open/replay the journal, re-enqueue unfinished jobs, bind the
    /// socket, start the executor pool. False (with *err) on failure.
    [[nodiscard]] bool start(std::string* err);

    /// Accept/serve until a shutdown is requested; then drain and tear
    /// down. Call after start().
    void run();

    /// Request a graceful stop (kShutdown handler, signal relay). Safe
    /// from any thread; async-signal-safe enough for a signal handler
    /// (one atomic store + one shutdown(2)).
    void signal_stop() noexcept;

    [[nodiscard]] const PersistentQueue& queue() const noexcept {
        return queue_;
    }

private:
    /// One kWait subscription: frames for the job go straight to `fd`.
    struct Subscriber {
        int fd = -1;
        bool done = false;  ///< terminal frame sent; waiter may resume
    };

    /// Runtime state of a queued/running job (finished jobs live only in
    /// the queue).
    struct JobRt {
        JobSpec spec;
        std::atomic<JobState> state{JobState::kQueued};
        std::atomic<std::uint32_t> units_done{0};
        std::atomic<std::uint32_t> units_total{0};
        std::atomic<bool> cancel{false};  ///< client cancel (terminal)
        std::uint32_t resumed = 0;
        std::mutex subs_mu;  // subs + terminal broadcast
        std::condition_variable subs_cv;
        std::vector<std::shared_ptr<Subscriber>> subs;
    };

    struct Conn {
        Fd fd;
        std::thread th;
    };

    void executor_loop();
    void run_one(std::uint64_t id, const std::shared_ptr<JobRt>& rt);
    void serve_connection(int fd);
    /// Send the terminal kDone to every subscriber and release them.
    void broadcast_done(const std::shared_ptr<JobRt>& rt,
                        const JobOutcome& out);
    void fan_out_record(const std::shared_ptr<JobRt>& rt,
                        const campaign::JobRecord& rec);
    [[nodiscard]] JobStatusInfo status_of(std::uint64_t id) const;
    [[nodiscard]] std::shared_ptr<JobRt> live_find(std::uint64_t id) const;
    void roll_up_metrics(const campaign::JobRecord& rec);
    void write_rollup_locked() const;
    void note(const char* fmt, ...) const;

    DaemonConfig cfg_;
    PersistentQueue queue_;
    AdmissionController admission_;
    PriorityReadyQueue ready_;
    UnixListener listener_;

    mutable std::mutex live_mu_;
    std::map<std::uint64_t, std::shared_ptr<JobRt>> live_;

    mutable std::mutex rollup_mu_;
    std::map<std::string, double> rollup_;  ///< summed obs.* + job counters

    std::vector<std::thread> executors_;
    mutable std::mutex conns_mu_;
    std::vector<std::shared_ptr<Conn>> conns_;
    std::atomic<bool> stop_{false};
    bool started_ = false;
};

}  // namespace autovision::svc
