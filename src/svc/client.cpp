#include "client.hpp"

namespace autovision::svc {

namespace {

void set_err(std::string* err, const std::string& msg) {
    if (err != nullptr) *err = msg;
}

/// Decode a kError reply into *err; any other decode failure gets a
/// generic message.
void absorb_error(const Frame& f, std::string* err) {
    ErrorInfo e;
    rtlsim::SnapReader r = f.reader();
    set_err(err, e.decode(r) ? e.message : "malformed error reply");
}

}  // namespace

bool Client::roundtrip(MsgType send, MsgType want,
                       std::span<const std::uint8_t> body, Frame* reply,
                       std::string* err) {
    if (!fd_.valid()) {
        set_err(err, "not connected");
        return false;
    }
    if (!write_frame_fd(fd_.get(), send, body)) {
        set_err(err, "connection lost (write)");
        fd_.reset();
        return false;
    }
    if (!read_frame_fd(fd_.get(), reply)) {
        set_err(err, "connection lost (read)");
        fd_.reset();
        return false;
    }
    if (reply->type == MsgType::kError) {
        absorb_error(*reply, err);
        return false;
    }
    if (reply->type != want) {
        set_err(err, std::string("unexpected reply ") +
                         to_string(reply->type) + " (wanted " +
                         to_string(want) + ")");
        return false;
    }
    return true;
}

bool Client::connect(const std::string& socket_path, const std::string& name,
                     std::string* err) {
    fd_ = unix_connect(socket_path, err);
    if (!fd_.valid()) return false;
    Hello hello;
    hello.name = name;
    rtlsim::SnapWriter w;
    hello.encode(w);
    Frame reply;
    if (!roundtrip(MsgType::kHello, MsgType::kHelloOk, w.buffer(), &reply,
                   err)) {
        fd_.reset();
        return false;
    }
    Hello ack;
    rtlsim::SnapReader r = reply.reader();
    if (!ack.decode(r)) {
        set_err(err, "malformed hello ack");
        fd_.reset();
        return false;
    }
    return true;
}

bool Client::submit(const JobSpec& spec, SubmitResult* result,
                    std::string* err) {
    rtlsim::SnapWriter w;
    spec.encode(w);
    Frame reply;
    if (!roundtrip(MsgType::kSubmit, MsgType::kSubmitOk, w.buffer(), &reply,
                   err)) {
        return false;
    }
    rtlsim::SnapReader r = reply.reader();
    if (!result->decode(r)) {
        set_err(err, "malformed submit reply");
        return false;
    }
    return true;
}

bool Client::status(std::uint64_t id, JobStatusInfo* info, std::string* err) {
    JobRef ref;
    ref.id = id;
    rtlsim::SnapWriter w;
    ref.encode(w);
    Frame reply;
    if (!roundtrip(MsgType::kStatus, MsgType::kStatusOk, w.buffer(), &reply,
                   err)) {
        return false;
    }
    rtlsim::SnapReader r = reply.reader();
    if (!info->decode(r)) {
        set_err(err, "malformed status reply");
        return false;
    }
    return true;
}

bool Client::list(JobList* out, std::string* err) {
    Frame reply;
    if (!roundtrip(MsgType::kList, MsgType::kListOk, {}, &reply, err)) {
        return false;
    }
    rtlsim::SnapReader r = reply.reader();
    if (!out->decode(r)) {
        set_err(err, "malformed list reply");
        return false;
    }
    return true;
}

bool Client::wait(std::uint64_t id,
                  const std::function<void(const RecordLine&)>& on_record,
                  JobOutcome* out, std::string* err) {
    if (!fd_.valid()) {
        set_err(err, "not connected");
        return false;
    }
    JobRef ref;
    ref.id = id;
    rtlsim::SnapWriter w;
    ref.encode(w);
    if (!write_frame_fd(fd_.get(), MsgType::kWait, w.buffer())) {
        set_err(err, "connection lost (write)");
        fd_.reset();
        return false;
    }
    for (;;) {
        Frame f;
        if (!read_frame_fd(fd_.get(), &f)) {
            set_err(err, "connection lost while waiting");
            fd_.reset();
            return false;
        }
        rtlsim::SnapReader r = f.reader();
        switch (f.type) {
            case MsgType::kRecord: {
                RecordLine rl;
                if (rl.decode(r) && on_record) on_record(rl);
                break;
            }
            case MsgType::kDone: {
                if (!out->decode(r)) {
                    set_err(err, "malformed outcome");
                    return false;
                }
                return true;
            }
            case MsgType::kError:
                absorb_error(f, err);
                return false;
            default:
                set_err(err, std::string("unexpected frame ") +
                                 to_string(f.type) + " during wait");
                return false;
        }
    }
}

bool Client::cancel(std::uint64_t id, JobStatusInfo* info, std::string* err) {
    JobRef ref;
    ref.id = id;
    rtlsim::SnapWriter w;
    ref.encode(w);
    Frame reply;
    if (!roundtrip(MsgType::kCancel, MsgType::kCancelOk, w.buffer(), &reply,
                   err)) {
        return false;
    }
    rtlsim::SnapReader r = reply.reader();
    if (!info->decode(r)) {
        set_err(err, "malformed cancel reply");
        return false;
    }
    return true;
}

bool Client::shutdown_daemon(std::string* err) {
    Frame reply;
    return roundtrip(MsgType::kShutdown, MsgType::kShutdownOk, {}, &reply,
                     err);
}

}  // namespace autovision::svc
