// svc: minimal RAII wrappers for local stream sockets.
//
// The campaign service speaks its wire protocol over AF_UNIX SOCK_STREAM —
// local clients only, no network surface, filesystem permissions as the
// access control. These wrappers own the fds and expose just what the
// daemon/client need: bind+listen+accept on one side, connect on the
// other; framing lives in wire.hpp.
#pragma once

#include <string>
#include <utility>

namespace autovision::svc {

/// Owning fd wrapper: closes on destruction, move-only.
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
    Fd& operator=(Fd&& o) noexcept;
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;
    ~Fd() { reset(); }

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    void reset(int fd = -1);
    /// shutdown(SHUT_RDWR): wakes a thread blocked in read/accept on this
    /// fd without racing against close (the fd number stays reserved).
    void shutdown() const noexcept;

private:
    int fd_ = -1;
};

/// Listening AF_UNIX socket. Binding unlinks a stale socket file first so
/// a daemon restarted after kill -9 can rebind its old path.
class UnixListener {
public:
    /// Bind + listen; false (with *err) on failure.
    [[nodiscard]] bool listen(const std::string& path, std::string* err);
    /// Accept one connection; invalid Fd on error/shutdown.
    [[nodiscard]] Fd accept() const;
    /// Wake any blocked accept() (daemon shutdown path).
    void shutdown() const noexcept { fd_.shutdown(); }
    /// Close and remove the socket file.
    void close();

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    Fd fd_;
    std::string path_;
};

/// Connect to a daemon socket; invalid Fd (with *err) on failure.
[[nodiscard]] Fd unix_connect(const std::string& path, std::string* err);

}  // namespace autovision::svc
