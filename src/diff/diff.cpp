#include "diff.hpp"

#include <functional>
#include <memory>
#include <sstream>

#include "bus/dcr.hpp"
#include "ckpt/checkpoint.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/engine_regs.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/clock.hpp"
#include "obs/recorder.hpp"
#include "recon/isolation.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "sys/address_map.hpp"
#include "vm/virtual_mux.hpp"

namespace autovision::diff {

using rtlsim::Time;
using rtlsim::Word;

const char* to_string(DiffFault f) {
    switch (f) {
        case DiffFault::kNone: return "none";
        case DiffFault::kVmNoSigInit: return "vm-no-sig-init";
        case DiffFault::kIsolationMissing: return "isolation-missing";
        case DiffFault::kWrongModuleMap: return "wrong-module-map";
        case DiffFault::kCount: break;
    }
    return "?";
}

DiffFault fault_from_string(const std::string& s, bool* ok) {
    for (unsigned i = 0; i < static_cast<unsigned>(DiffFault::kCount); ++i) {
        const auto f = static_cast<DiffFault>(i);
        if (s == to_string(f)) {
            if (ok != nullptr) *ok = true;
            return f;
        }
    }
    if (ok != nullptr) *ok = false;
    return DiffFault::kNone;
}

namespace {

constexpr Time kClk = 10 * rtlsim::NS;

// Probe geometry: one 16x16 frame pair at fixed addresses, one output
// window per probe index. Margin 4 keeps the ME grid non-empty at 16x16.
constexpr unsigned kProbeW = 16;
constexpr unsigned kProbeH = 16;
constexpr std::uint32_t kProbeSrcA = 0x4'0000;
constexpr std::uint32_t kProbeSrcB = 0x4'1000;
constexpr std::uint32_t kProbeDstBase = 0x5'0000;
constexpr std::uint32_t kProbeDstStride = 0x1000;
constexpr unsigned kProbeOutBytes = 64;
constexpr std::uint32_t kMeParam = 2u | (4u << 8) | (4u << 16);

[[nodiscard]] constexpr unsigned slot_of(std::uint8_t module_id) {
    return module_id == 1 ? 0u : 1u;
}

/// The hardware both sides share: the minimal DPR stack of the stream
/// harness plus the isolation module (so a correct ReSim-side driver can
/// keep reconfiguration X off the bus).
struct Fixture {
    rtlsim::Scheduler sch;
    rtlsim::Clock clk{sch, "clk", kClk};
    rtlsim::ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem{Memory::Config{0, 1u << 20, 4}};
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{2, 16, 1u << 30}};
    rtlsim::Signal<rtlsim::Logic> done_line{sch, "done_line",
                                            rtlsim::Logic::L0};
    DcrChain dcr{sch, "dcr", clk.out, rst.out};
    Isolation iso{sch, "iso", sys::kDcrIso};
    EngineRegs cie_regs{sch, "cie_regs", clk.out, 0x60};
    EngineRegs me_regs{sch, "me_regs", clk.out, 0x68};
    CensusEngine cie{sch, "cie", clk.out, rst.out, cie_regs};
    MatchingEngine me{sch, "me", clk.out, rst.out, me_regs};
    RrBoundary rr{sch, "rr", plb.master(1), done_line};
    obs::EventRecorder rec;

    Fixture() {
        plb.attach_slave(mem);
        dcr.attach(cie_regs);
        dcr.attach(me_regs);
        dcr.attach(iso);
        rr.add_module(cie);
        rr.add_module(me);
        rr.set_isolation_signal(iso.isolate);
        rec.set_enabled(true);
        rr.set_observer(&rec);
        dcr.set_observer(&rec);
        iso.set_observer(&rec);
        load_probe_images();
    }

    void load_probe_images() {
        std::vector<std::uint8_t> img(kProbeW * kProbeH);
        std::uint32_t s = 0x0123'4567u;
        for (std::uint8_t& b : img) {
            s = s * 1664525u + 1013904223u;
            b = static_cast<std::uint8_t>(s >> 24);
        }
        mem.load_bytes(kProbeSrcA, img);
        for (std::uint8_t& b : img) {
            s = s * 1664525u + 1013904223u;
            b = static_cast<std::uint8_t>(s >> 24);
        }
        mem.load_bytes(kProbeSrcB, img);
    }

    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }

    /// Serialize the boot state (reset settled, bus idle) plus the side's
    /// own artifact sections via `extra`. Fills `out`; false = not at a
    /// snapshottable point (left empty, the caller stays on the cold path).
    [[nodiscard]] bool save_boot(
        std::string& out, std::uint64_t hash,
        const std::function<void(ckpt::Saver&)>& extra) const {
        if (!sch.ckpt_quiescent() || dcr.busy()) return false;
        ckpt::Saver saver(
            ckpt::Manifest{ckpt::kFormatVersion, hash, sch.now()});
        sch.ckpt_save(saver.section("kernel"));
        clk.ckpt_save(saver.section("clock"));
        rst.ckpt_save(saver.section("reset"));
        mem.ckpt_save(saver.section("memory"));
        plb.ckpt_save(saver.section("plb"));
        dcr.ckpt_save(saver.section("dcr"));
        iso.ckpt_save(saver.section("iso"));
        cie_regs.ckpt_save(saver.section("cie_regs"));
        me_regs.ckpt_save(saver.section("me_regs"));
        cie.ckpt_save(saver.section("cie"));
        me.ckpt_save(saver.section("me"));
        rr.ckpt_save(saver.section("rr"));
        rec.ckpt_save(saver.section("recorder"));
        extra(saver);
        sch.ckpt_save_signals(saver.section("signals"));
        std::ostringstream os;
        if (!saver.write_to(os)) return false;
        out = os.str();
        return true;
    }

    /// Restore a save_boot blob into this freshly elaborated fixture.
    [[nodiscard]] bool restore_boot(
        const std::string& blob, std::uint64_t hash,
        const std::function<bool(ckpt::Loader&)>& extra) {
        std::istringstream is(blob);
        ckpt::Loader loader;
        if (!loader.load(is, hash)) return false;
        {
            rtlsim::SnapReader r = loader.reader("kernel");
            if (!sch.ckpt_restore(r)) return false;
        }
        if (!ckpt::restore_section(loader, "clock", clk)) return false;
        if (!ckpt::restore_section(loader, "reset", rst)) return false;
        if (!ckpt::restore_section(loader, "memory", mem)) return false;
        if (!ckpt::restore_section(loader, "plb", plb)) return false;
        if (!ckpt::restore_section(loader, "dcr", dcr)) return false;
        if (!ckpt::restore_section(loader, "iso", iso)) return false;
        if (!ckpt::restore_section(loader, "cie_regs", cie_regs)) return false;
        if (!ckpt::restore_section(loader, "me_regs", me_regs)) return false;
        if (!ckpt::restore_section(loader, "cie", cie)) return false;
        if (!ckpt::restore_section(loader, "me", me)) return false;
        if (!ckpt::restore_section(loader, "rr", rr)) return false;
        if (!ckpt::restore_section(loader, "recorder", rec)) return false;
        if (!extra(loader)) return false;
        {
            rtlsim::SnapReader r = loader.reader("signals");
            if (!sch.ckpt_restore_signals(r)) return false;
        }
        return true;
    }

    [[nodiscard]] bool cancelled(const DiffOptions& opt) const {
        return opt.cancel != nullptr &&
               opt.cancel->load(std::memory_order_relaxed);
    }

    void wait_dcr() {
        for (unsigned i = 0; i < 64 && dcr.busy(); ++i) run_cycles(1);
    }

    /// One DCR transaction per session, identical on both sides (the VM
    /// side has no payload window to overlap it with, so it issues the
    /// transaction up front).
    void issue_session_traffic(const scen::StreamSession& ss) {
        if (ss.dcr == scen::DcrTraffic::kRead) {
            dcr.start_read(0x60 + EngineRegs::kStatus, [](Word) {});
        } else {
            dcr.start_write(0x60 + EngineRegs::kSrc, Word{0x1234});
        }
    }

    /// Program, start and wait out one engine job, then hash the output
    /// window. A start pulse aimed at a module that is not resident is
    /// simply lost (the bug.dpr.6b mechanism), which the early busy/done
    /// check converts into done=false without burning the full budget.
    ProbeOutcome probe(std::uint8_t module_id, unsigned index,
                       const DiffOptions& opt) {
        EngineRegs& regs = module_id == 1 ? cie_regs : me_regs;
        const std::uint32_t base = module_id == 1 ? 0x60u : 0x68u;
        const std::uint32_t dst = kProbeDstBase + index * kProbeDstStride;
        regs.dcr_write(base + EngineRegs::kSrc, Word{kProbeSrcA});
        regs.dcr_write(base + EngineRegs::kDst, Word{dst});
        regs.dcr_write(base + EngineRegs::kDims,
                       Word{(kProbeW << 16) | kProbeH});
        if (module_id == 2) {
            regs.dcr_write(base + EngineRegs::kSrc2, Word{kProbeSrcB});
            regs.dcr_write(base + EngineRegs::kParam, Word{kMeParam});
        }
        run_cycles(4);
        regs.dcr_write(base + EngineRegs::kCtrl, Word{1});
        run_cycles(64);
        unsigned waited = 64;
        if (regs.busy() || regs.done()) {
            while (!regs.done() && waited < opt.probe_budget_cycles &&
                   !cancelled(opt)) {
                run_cycles(128);
                waited += 128;
            }
        }
        ProbeOutcome out;
        out.done = regs.done();
        regs.dcr_write(base + EngineRegs::kStatus, Word{2});  // W1C done
        run_cycles(2);
        std::uint64_t h = 1469598103934665603ull;  // FNV-1a
        for (unsigned i = 0; i < kProbeOutBytes; ++i) {
            bool ok = false;
            std::uint8_t v = mem.peek_u8(dst + i, &ok);
            if (!ok) {
                ++out.x_bytes;
                v = 0xAA;  // deterministic sentinel keeps the hash stable
            }
            h = (h ^ v) * 1099511628211ull;
        }
        out.hash = h;
        return out;
    }

    void finish(SideRun& run, const DiffOptions& opt) {
        run.cancelled = run.cancelled || cancelled(opt);
        run.events = rec.snapshot();
        for (const obs::Event& e : run.events) {
            if (e.kind == obs::EventKind::kSelect &&
                e.src == obs::Source::kRrBoundary) {
                run.selects.push_back(static_cast<std::int32_t>(e.a));
            }
        }
        run.diagnostics.reserve(sch.diagnostics().size());
        for (const rtlsim::Diag& d : sch.diagnostics()) {
            run.diagnostics.push_back(d.source + ": " + d.message);
        }
        run.stats = sch.stats;
        run.sim_time = sch.now();
    }
};

}  // namespace

SideRun run_vm_side(const scen::Scenario& s, const DiffOptions& opt) {
    Fixture f;
    vm::VirtualMux vmux{f.sch, "vmux", f.rr, sys::kDcrSig};
    vmux.map_module(1, 0);
    vmux.map_module(2, 1);
    f.dcr.attach(vmux);
    // A VM wrapper has both engines instantiated; a mis-steered 2-state mux
    // drives idle levels, never X.
    f.rr.set_unselected_policy(RrBoundary::UnselectedPolicy::kIdle);

    // The injected fault is folded into the blob identity: a boot saved
    // with the signature initialised must never restore into a
    // kVmNoSigInit elaboration (and vice versa).
    const std::uint64_t hash = rtlsim::snap_hash64_u64(
        static_cast<std::uint64_t>(opt.inject),
        rtlsim::snap_hash64("autovision.difftb.vm.v1"));
    std::string* cached =
        opt.boot != nullptr
            ? &opt.boot->vm[static_cast<std::size_t>(opt.inject)]
            : nullptr;
    const auto restore_vmux = [&](ckpt::Loader& l) {
        return ckpt::restore_section(l, "vmux", vmux);
    };
    if (cached == nullptr || cached->empty() ||
        !f.restore_boot(*cached, hash, restore_vmux)) {
        if (opt.inject != DiffFault::kVmNoSigInit) {
            // The boot firmware's engine_signature initialisation — exactly
            // the write bug.hw.2 forgets. Like the system's power-on
            // configuration it happens at elaboration, before the first
            // delta cycle.
            vmux.dcr_write(sys::kDcrSig, Word{1});
        }
        f.sch.run_until(8 * kClk);  // reset settles
        if (cached != nullptr) {
            (void)f.save_boot(*cached, hash, [&](ckpt::Saver& sv) {
                vmux.ckpt_save(sv.section("vmux"));
            });
        }
    }

    SideRun run;
    run.probes.push_back(f.probe(1, 0, opt));
    std::uint8_t resident = 1;
    unsigned idx = 1;
    for (const scen::StreamSession& ss : s.sessions) {
        if (f.cancelled(opt)) {
            run.cancelled = true;
            break;
        }
        // VM consumes only the swap schedule: a zero-delay signature write
        // per session that completes its swap. The SimB words, isolation
        // driving and capture/restore have no VM equivalent.
        if (scen::swap_expected(ss.corrupt)) {
            f.dcr.start_write(sys::kDcrSig, Word{ss.module_id});
            f.wait_dcr();
            resident = ss.module_id;
        }
        if (ss.dcr != scen::DcrTraffic::kNone) {
            f.issue_session_traffic(ss);
            f.wait_dcr();
        }
        f.run_cycles(16);
        run.probes.push_back(f.probe(resident, idx, opt));
        ++idx;
    }
    run.swaps = vmux.swaps();
    f.finish(run, opt);
    return run;
}

SideRun run_resim_side(const scen::Scenario& s, const DiffOptions& opt) {
    Fixture f;
    resim::ExtendedPortal portal{f.sch, "portal"};
    resim::IcapArtifact icap{f.sch, "icap", portal};
    const bool swap_map = opt.inject == DiffFault::kWrongModuleMap;
    portal.map_module(1, 1, f.rr, swap_map ? 1u : 0u);
    portal.map_module(1, 2, f.rr, swap_map ? 0u : 1u);
    portal.set_observer(&f.rec);
    icap.set_observer(&f.rec);

    // Power-on full configuration loads the CIE — at elaboration, before
    // the first delta cycle, or the unconfigured region (all-X under ReSim)
    // would drive X onto the PLB during reset settle.
    portal.initial_configuration(1, 1);

    const std::uint64_t hash = rtlsim::snap_hash64_u64(
        static_cast<std::uint64_t>(opt.inject),
        rtlsim::snap_hash64("autovision.difftb.resim.v1"));
    std::string* cached =
        opt.boot != nullptr
            ? &opt.boot->resim[static_cast<std::size_t>(opt.inject)]
            : nullptr;
    const auto restore_artifacts = [&](ckpt::Loader& l) {
        return ckpt::restore_section(l, "portal", portal) &&
               ckpt::restore_section(l, "icap", icap);
    };
    if (cached == nullptr || cached->empty() ||
        !f.restore_boot(*cached, hash, restore_artifacts)) {
        f.sch.run_until(8 * kClk);  // reset settles
        if (cached != nullptr) {
            (void)f.save_boot(*cached, hash, [&](ckpt::Saver& sv) {
                portal.ckpt_save(sv.section("portal"));
                icap.ckpt_save(sv.section("icap"));
            });
        }
    }

    SideRun run;
    run.probes.push_back(f.probe(1, 0, opt));
    std::uint8_t resident = 1;
    unsigned idx = 1;
    const bool drive_iso = opt.inject != DiffFault::kIsolationMissing;
    for (const scen::StreamSession& ss : s.sessions) {
        if (f.cancelled(opt)) {
            run.cancelled = true;
            break;
        }
        // The correct driver isolates the region across the bitstream
        // transfer; skipping these two writes is bug.dpr.1.
        if (drive_iso) f.iso.dcr_write(sys::kDcrIso, Word{1});
        const std::vector<Word> words = ss.words();
        bool traffic_pending = ss.dcr != scen::DcrTraffic::kNone;
        for (const Word& w : words) {
            if (f.cancelled(opt)) break;
            icap.icap_write(w);
            if (traffic_pending && icap.payload_pending() && !f.dcr.busy()) {
                traffic_pending = false;
                f.issue_session_traffic(ss);
            }
            f.run_cycles(ss.word_gap);
        }
        f.run_cycles(16);  // in-flight DCR token and boundary settle
        if (drive_iso) {
            f.iso.dcr_write(sys::kDcrIso, Word{0});
            f.run_cycles(2);
        }
        if (scen::swap_expected(ss.corrupt)) resident = ss.module_id;
        run.probes.push_back(f.probe(resident, idx, opt));
        ++idx;
    }
    run.swaps = portal.reconfigurations();
    run.aborts = portal.aborts();
    run.captures = portal.captures();
    run.restores = portal.restores();
    f.finish(run, opt);
    return run;
}

std::vector<int> expected_selects(const scen::Scenario& s) {
    std::vector<int> v{0};  // initial configuration: CIE in slot 0
    for (const scen::StreamSession& ss : s.sessions) {
        if (scen::swap_expected(ss.corrupt)) {
            v.push_back(static_cast<int>(slot_of(ss.module_id)));
        }
    }
    return v;
}

std::size_t simb_word_count(const scen::Scenario& s) {
    std::size_t n = 0;
    for (const scen::StreamSession& ss : s.sessions) n += ss.words().size();
    return n;
}

}  // namespace autovision::diff
