// diff: self-contained minimal-reproducer artifacts.
//
// A shrunk divergence is dumped as a pair of files:
//   * <stem>.repro.json — the scenario (every session field), the injected
//     fault, the word counts and the genuine-divergence summaries. The
//     writer emits fields in a fixed order with deterministic formatting,
//     so the same reproducer is byte-identical no matter which worker (or
//     worker count) produced it.
//   * <stem>.simb — the raw SimB word stream the ReSim side plays, one
//     8-digit hex word per line ("XXXXXXXX" for an all-X word), with a
//     comment line per session. Loads into any SimB-consuming tool.
// The JSON round-trips: load_repro() reconstructs the scenario so
// `campaign_runner --campaign diff --replay FILE` (and the tests) can
// re-run the exact divergence.
#pragma once

#include <string>
#include <vector>

#include "classify.hpp"

namespace autovision::diff {

struct ReproBundle {
    scen::Scenario scenario;
    DiffFault inject = DiffFault::kNone;
    std::size_t original_words = 0;
    std::size_t minimal_words = 0;
    /// "kind on side: detail" lines of the genuine divergences.
    std::vector<std::string> genuine;
};

/// Build a bundle from a shrink outcome's minimal scenario + report.
[[nodiscard]] ReproBundle make_bundle(const scen::Scenario& minimal,
                                      const DiffReport& report,
                                      DiffFault inject,
                                      std::size_t original_words,
                                      std::size_t minimal_words);

/// Deterministic serialisations.
[[nodiscard]] std::string repro_to_json(const ReproBundle& b);
[[nodiscard]] std::string simb_to_text(const scen::Scenario& s);

/// Parse a .repro.json document. Returns false (with `err` set) on any
/// syntax or schema problem.
[[nodiscard]] bool repro_from_json(const std::string& text, ReproBundle* out,
                                   std::string* err);

/// Write <dir>/<stem>.repro.json and <dir>/<stem>.simb (dir must exist or
/// be creatable). Returns false with `err` set on I/O failure.
[[nodiscard]] bool write_repro_files(const ReproBundle& b,
                                     const std::string& dir,
                                     const std::string& stem,
                                     std::string* err);

/// Load a .repro.json file from disk.
[[nodiscard]] bool load_repro_file(const std::string& path, ReproBundle* out,
                                   std::string* err);

}  // namespace autovision::diff
