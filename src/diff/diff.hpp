// diff: the differential VM-vs-ReSim oracle.
//
// Two instances of the minimal DPR system are built from one scenario — one
// wired through the Virtual Multiplexing signature register, one through the
// ReSim ICAP/portal path — and driven from the same scen::Scenario. The VM
// side consumes only the scenario's swap *schedule* (engine_signature DCR
// writes; zero-delay, no bitstream), the ReSim side plays the full SimB word
// stream through the ICAP artifact. Between reconfiguration sessions both
// sides run identical engine "probes" (program registers, pulse start, hash
// the output window), which is the frame-output equivalence surface the
// classifier compares.
//
// The harness purposely preserves the paper's VM blind spots instead of
// papering over them: the VM side never opens an X window, never drives the
// isolation module, and never exercises capture/restore — the classifier
// (classify.hpp) masks those as expected-by-construction and reserves
// "genuine" for differences a correct design must not show.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "kernel/stats.hpp"
#include "obs/event.hpp"
#include "scen/scenario.hpp"

namespace autovision::diff {

/// Injectable design faults for oracle self-checks. Each maps to a
/// fault-catalogue class the paper discusses:
///   * kVmNoSigInit      — bug.hw.2: the engine_signature register is never
///                         initialised, so the VM side starts with an empty
///                         region (a VM-only false alarm);
///   * kIsolationMissing — bug.dpr.1: the ReSim-side driver never asserts
///                         isolation, so reconfiguration X escapes onto the
///                         PLB (invisible under VM by construction);
///   * kWrongModuleMap   — bug.dpr.3-class: the ReSim portal maps module ids
///                         to swapped boundary slots, so every SimB swap
///                         lands the wrong engine.
enum class DiffFault : std::uint8_t {
    kNone,
    kVmNoSigInit,
    kIsolationMissing,
    kWrongModuleMap,
    kCount,
};

[[nodiscard]] const char* to_string(DiffFault f);
/// Parse the CLI spelling ("none", "vm-no-sig-init", "isolation-missing",
/// "wrong-module-map"); `ok` reports whether the name was recognised.
[[nodiscard]] DiffFault fault_from_string(const std::string& s, bool* ok);

/// Warm-start cache for the differential fixtures: one boot snapshot per
/// (side, injected fault) — the two sides elaborate different netlists, and
/// an injected fault can change the boot state, so the blobs never mix.
/// Entries are filled by the first run that needs them and reused by every
/// later run (the shrinker's dozens of replays fork from here instead of
/// re-simulating elaborate+reset each time). Not thread-safe: share a cache
/// only within one worker.
struct BootCache {
    std::string vm[static_cast<std::size_t>(DiffFault::kCount)];
    std::string resim[static_cast<std::size_t>(DiffFault::kCount)];
};

struct DiffOptions {
    DiffFault inject = DiffFault::kNone;
    /// Cycle budget for one engine probe before giving up on done.
    unsigned probe_budget_cycles = 30000;
    /// Cooperative cancellation (campaign watchdog); polled between SimB
    /// words and probe chunks.
    const std::atomic<bool>* cancel = nullptr;
    /// Optional externally owned boot-snapshot cache (see BootCache).
    BootCache* boot = nullptr;
};

/// Result of one engine probe: did the engine report done, a hash of the
/// fixed output window, and how many of its bytes carried X.
struct ProbeOutcome {
    bool done = false;
    std::uint64_t hash = 0;
    unsigned x_bytes = 0;

    [[nodiscard]] bool operator==(const ProbeOutcome&) const = default;
};

/// Everything the classifier needs from one side of the pair.
struct SideRun {
    std::vector<int> selects;       ///< boundary kSelect values, in order
    std::uint64_t swaps = 0;        ///< vmux swaps / portal reconfigurations
    std::uint64_t aborts = 0;       ///< ReSim only
    std::uint64_t captures = 0;     ///< ReSim only
    std::uint64_t restores = 0;     ///< ReSim only
    std::vector<ProbeOutcome> probes;
    /// Scheduler diagnostics as "source: message" lines.
    std::vector<std::string> diagnostics;
    std::vector<obs::Event> events;
    rtlsim::SimStats stats;
    rtlsim::Time sim_time = 0;
    bool cancelled = false;
};

/// Drive one side. Probe 0 runs before any session (initial-residency
/// check, the bug.hw.2 surface), then one probe per session.
[[nodiscard]] SideRun run_vm_side(const scen::Scenario& s,
                                  const DiffOptions& opt);
[[nodiscard]] SideRun run_resim_side(const scen::Scenario& s,
                                     const DiffOptions& opt);

/// The boundary-slot sequence a correct design selects for this scenario:
/// the initial configuration (CIE, slot 0) followed by one entry per
/// session whose mutation still completes the swap.
[[nodiscard]] std::vector<int> expected_selects(const scen::Scenario& s);

/// Total SimB words the scenario plays (the shrinker's size metric).
[[nodiscard]] std::size_t simb_word_count(const scen::Scenario& s);

}  // namespace autovision::diff
