// diff: divergence classification — the expected-vs-genuine split.
//
// A VM run and a ReSim run of the same scenario are never identical: the
// paper's whole point is that VM *cannot* show the reconfiguration process.
// The classifier therefore separates divergences into
//   * expected-by-construction — the documented VM blind spots (zero-delay
//     swap, no bitstream datapath, no X propagation, untested isolation, no
//     state capture/restore), reported for visibility but never failures;
//   * genuine — differences a correct design must not show on either side:
//     select-sequence or swap-count deviations from the scenario's schedule,
//     probe (frame-output) mismatches, unexplained diagnostics, and ReSim
//     state-transfer counters that contradict the scenario.
// DESIGN.md section 10 documents the masking rules in prose.
#pragma once

#include <string>
#include <vector>

#include "diff.hpp"

namespace autovision::diff {

enum class Side : std::uint8_t { kVm, kResim, kBoth };

enum class DivergenceKind : std::uint8_t {
    kMechanism,       ///< expected: reconfiguration machinery one side lacks
    kSelectSequence,  ///< boundary select order deviates from the schedule
    kSwapCount,       ///< completed-swap counter deviates from the schedule
    kProbe,           ///< frame-output probe mismatch
    kDiagnostic,      ///< diagnostics not explained by the scenario
    kStateTransfer,   ///< capture/restore/abort counters off-schedule
};

[[nodiscard]] const char* to_string(Side s);
[[nodiscard]] const char* to_string(DivergenceKind k);

struct Divergence {
    DivergenceKind kind = DivergenceKind::kMechanism;
    bool genuine = false;
    /// The side the deviation is attributed to (kBoth when neither side
    /// matches the scenario's expectation, or for mechanism masks).
    Side side = Side::kBoth;
    /// Session index the divergence anchors to; -1 = whole-run / initial.
    int session = -1;
    std::string detail;
};

struct DiffReport {
    std::vector<Divergence> divergences;
    bool cancelled = false;

    [[nodiscard]] unsigned genuine() const;
    [[nodiscard]] unsigned genuine_on(Side s) const;
    [[nodiscard]] unsigned expected() const;
    /// Detail line of the first genuine divergence ("" when clean).
    [[nodiscard]] std::string first_genuine() const;
};

/// Compare the two runs against each other and against the scenario's
/// expectations. Pure function of its inputs.
[[nodiscard]] DiffReport classify(const scen::Scenario& s, const SideRun& vm,
                                  const SideRun& resim);

/// One full differential run: both sides + classification.
struct DiffOutcome {
    SideRun vm;
    SideRun resim;
    DiffReport report;
};

[[nodiscard]] DiffOutcome run_diff(const scen::Scenario& s,
                                   const DiffOptions& opt = {});

}  // namespace autovision::diff
