#include "classify.hpp"

#include <algorithm>
#include <cstdio>

#include "sys/address_map.hpp"

namespace autovision::diff {

const char* to_string(Side s) {
    switch (s) {
        case Side::kVm: return "vm";
        case Side::kResim: return "resim";
        case Side::kBoth: return "both";
    }
    return "?";
}

const char* to_string(DivergenceKind k) {
    switch (k) {
        case DivergenceKind::kMechanism: return "mechanism";
        case DivergenceKind::kSelectSequence: return "select-sequence";
        case DivergenceKind::kSwapCount: return "swap-count";
        case DivergenceKind::kProbe: return "probe";
        case DivergenceKind::kDiagnostic: return "diagnostic";
        case DivergenceKind::kStateTransfer: return "state-transfer";
    }
    return "?";
}

unsigned DiffReport::genuine() const {
    unsigned n = 0;
    for (const Divergence& d : divergences) n += d.genuine ? 1 : 0;
    return n;
}

unsigned DiffReport::genuine_on(Side s) const {
    unsigned n = 0;
    for (const Divergence& d : divergences) {
        if (d.genuine && (d.side == s || d.side == Side::kBoth)) ++n;
    }
    return n;
}

unsigned DiffReport::expected() const {
    return static_cast<unsigned>(divergences.size()) - genuine();
}

std::string DiffReport::first_genuine() const {
    for (const Divergence& d : divergences) {
        if (d.genuine) {
            return std::string(to_string(d.kind)) + " on " +
                   to_string(d.side) + ": " + d.detail;
        }
    }
    return "";
}

namespace {

[[nodiscard]] std::string seq_to_string(const std::vector<int>& v) {
    std::string s = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i != 0) s += ",";
        s += std::to_string(v[i]);
    }
    return s + "]";
}

[[nodiscard]] bool starts_with(const std::string& s, const char* prefix) {
    return s.rfind(prefix, 0) == 0;
}

void push(DiffReport& rep, DivergenceKind kind, bool genuine, Side side,
          int session, std::string detail) {
    rep.divergences.push_back(
        Divergence{kind, genuine, side, session, std::move(detail)});
}

void mask_mechanism(DiffReport& rep, const scen::Scenario&, const SideRun& vm,
                    const SideRun& resim) {
    bool simb = false, xwin = false, isolation = false, state = false;
    for (const obs::Event& e : resim.events) {
        switch (e.kind) {
            case obs::EventKind::kSync:
            case obs::EventKind::kDesync:
            case obs::EventKind::kFarWrite:
            case obs::EventKind::kCmdWrite:
            case obs::EventKind::kFdriHeader:
            case obs::EventKind::kPayloadBegin:
            case obs::EventKind::kPayloadEnd:
            case obs::EventKind::kMalformed:
            case obs::EventKind::kSwap:
                simb = true;
                break;
            case obs::EventKind::kXWindowBegin:
            case obs::EventKind::kXWindowEnd:
                xwin = true;
                break;
            case obs::EventKind::kIsolationOn:
            case obs::EventKind::kIsolationOff:
                isolation = true;
                break;
            case obs::EventKind::kCapture:
            case obs::EventKind::kRestore:
            case obs::EventKind::kAbort:
                state = true;
                break;
            default:
                break;
        }
    }
    bool sig_writes = false;
    for (const obs::Event& e : vm.events) {
        if (e.kind == obs::EventKind::kDcrWrite && e.a == sys::kDcrSig) {
            sig_writes = true;
            break;
        }
    }
    if (simb) {
        push(rep, DivergenceKind::kMechanism, false, Side::kResim, -1,
             "SimB parsing/swap events exist only under ReSim (VM has no "
             "bitstream datapath; its swap is zero-delay)");
    }
    if (xwin) {
        push(rep, DivergenceKind::kMechanism, false, Side::kResim, -1,
             "X-window events exist only under ReSim (VM never produces "
             "erroneous outputs during a swap)");
    }
    if (isolation) {
        push(rep, DivergenceKind::kMechanism, false, Side::kResim, -1,
             "isolation driver traffic exists only under ReSim (VM leaves "
             "the isolation machinery untested)");
    }
    if (state) {
        push(rep, DivergenceKind::kMechanism, false, Side::kResim, -1,
             "state capture/restore and aborts have no VM equivalent");
    }
    if (sig_writes) {
        push(rep, DivergenceKind::kMechanism, false, Side::kVm, -1,
             "engine_signature DCR writes exist only under VM (the register "
             "is simulation-only)");
    }
}

void check_selects(DiffReport& rep, const scen::Scenario& s, const SideRun& vm,
                   const SideRun& resim) {
    const std::vector<int> exp = expected_selects(s);
    const bool vm_ok = vm.selects == exp;
    const bool resim_ok = resim.selects == exp;
    if (vm_ok && resim_ok) return;
    const Side side = vm_ok     ? Side::kResim
                      : resim_ok ? Side::kVm
                                 : Side::kBoth;
    // Anchor to the session of the first deviation (entry 0 is the initial
    // configuration, entry i+1 follows session i of the swap schedule).
    const std::vector<int>& bad = vm_ok ? resim.selects : vm.selects;
    std::size_t i = 0;
    while (i < bad.size() && i < exp.size() && bad[i] == exp[i]) ++i;
    push(rep, DivergenceKind::kSelectSequence, true, side,
         static_cast<int>(i) - 1,
         "select sequence vm=" + seq_to_string(vm.selects) +
             " resim=" + seq_to_string(resim.selects) +
             " expected=" + seq_to_string(exp));
}

void check_swap_counts(DiffReport& rep, const scen::Scenario& s,
                       const SideRun& vm, const SideRun& resim) {
    // The VM counter includes the initial signature write; the portal's
    // initial configuration is a full-bitstream boot, not a reconfiguration.
    const std::uint64_t vm_exp = 1 + s.expected_swaps();
    const std::uint64_t resim_exp = s.expected_swaps();
    if (vm.swaps != vm_exp) {
        push(rep, DivergenceKind::kSwapCount, true, Side::kVm, -1,
             "vm completed " + std::to_string(vm.swaps) +
                 " signature swaps, schedule expects " +
                 std::to_string(vm_exp) + " (incl. initialisation)");
    }
    if (resim.swaps != resim_exp) {
        push(rep, DivergenceKind::kSwapCount, true, Side::kResim, -1,
             "resim completed " + std::to_string(resim.swaps) +
                 " reconfigurations, schedule expects " +
                 std::to_string(resim_exp));
    }
}

void check_probes(DiffReport& rep, const SideRun& vm, const SideRun& resim) {
    const std::size_t n = std::min(vm.probes.size(), resim.probes.size());
    for (std::size_t i = 0; i < n; ++i) {
        const ProbeOutcome& a = vm.probes[i];
        const ProbeOutcome& b = resim.probes[i];
        if (a == b) continue;
        const bool a_bad = !a.done || a.x_bytes != 0;
        const bool b_bad = !b.done || b.x_bytes != 0;
        const Side side = a_bad == b_bad ? Side::kBoth
                          : a_bad        ? Side::kVm
                                         : Side::kResim;
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "probe %zu: vm{done=%d x=%u hash=%016llx} "
                      "resim{done=%d x=%u hash=%016llx}",
                      i, a.done ? 1 : 0, a.x_bytes,
                      static_cast<unsigned long long>(a.hash), b.done ? 1 : 0,
                      b.x_bytes, static_cast<unsigned long long>(b.hash));
        push(rep, DivergenceKind::kProbe, true, side,
             static_cast<int>(i) - 1, buf);
    }
}

void check_diagnostics(DiffReport& rep, const scen::Scenario& s,
                       const SideRun& vm, const SideRun& resim) {
    // The VM side of a correct design is diagnostic-free: it has no SimB
    // parser to complain and no X to escape.
    for (const std::string& d : vm.diagnostics) {
        push(rep, DivergenceKind::kDiagnostic, true, Side::kVm, -1,
             "vm-side diagnostic: " + d);
    }
    // ReSim-side parser/portal complaints are explained when the scenario
    // itself declares a malformation; anything else (notably PLB X-escape
    // reports) is genuine.
    bool malformed_scenario = false;
    for (const scen::StreamSession& ss : s.sessions) {
        if (ss.corrupt != scen::Corrupt::kNone) malformed_scenario = true;
    }
    unsigned explained = 0;
    for (const std::string& d : resim.diagnostics) {
        const bool parser = starts_with(d, "icap:") || starts_with(d, "portal:");
        if (parser && malformed_scenario) {
            ++explained;
        } else {
            push(rep, DivergenceKind::kDiagnostic, true, Side::kResim, -1,
                 "resim-side diagnostic: " + d);
        }
    }
    if (explained != 0) {
        push(rep, DivergenceKind::kDiagnostic, false, Side::kResim, -1,
             std::to_string(explained) +
                 " parser diagnostic(s) explained by scenario-declared "
                 "malformations");
    }
}

void check_state_transfer(DiffReport& rep, const scen::Scenario& s,
                          const SideRun& resim) {
    unsigned exp_cap = 0, exp_rst = 0, exp_abort = 0;
    for (const scen::StreamSession& ss : s.sessions) {
        if (ss.capture_first) ++exp_cap;
        if (ss.restore_state) ++exp_rst;
        if (ss.corrupt == scen::Corrupt::kTruncate) ++exp_abort;
    }
    const auto check = [&](const char* what, std::uint64_t got,
                           unsigned want) {
        if (got == want) return;
        push(rep, DivergenceKind::kStateTransfer, true, Side::kResim, -1,
             std::string(what) + " count " + std::to_string(got) +
                 " != scenario expectation " + std::to_string(want));
    };
    check("capture", resim.captures, exp_cap);
    check("restore", resim.restores, exp_rst);
    check("abort", resim.aborts, exp_abort);
}

}  // namespace

DiffReport classify(const scen::Scenario& s, const SideRun& vm,
                    const SideRun& resim) {
    DiffReport rep;
    rep.cancelled = vm.cancelled || resim.cancelled;
    if (rep.cancelled) return rep;  // partial runs compare as nothing
    mask_mechanism(rep, s, vm, resim);
    check_selects(rep, s, vm, resim);
    check_swap_counts(rep, s, vm, resim);
    check_probes(rep, vm, resim);
    check_diagnostics(rep, s, vm, resim);
    check_state_transfer(rep, s, resim);
    return rep;
}

DiffOutcome run_diff(const scen::Scenario& s, const DiffOptions& opt) {
    DiffOutcome out;
    out.vm = run_vm_side(s, opt);
    out.resim = run_resim_side(s, opt);
    out.report = classify(s, out.vm, out.resim);
    return out;
}

}  // namespace autovision::diff
