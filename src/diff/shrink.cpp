#include "shrink.hpp"

#include <algorithm>
#include <utility>

namespace autovision::diff {

using scen::Corrupt;
using scen::StreamSession;

namespace {

/// Smallest payload each mutation kind can carry (mirrors the generator's
/// per-kind clamps in scen::make_session).
[[nodiscard]] std::uint32_t min_payload(Corrupt c) {
    switch (c) {
        case Corrupt::kHeaderOnly:
        case Corrupt::kZeroPayload:
            return 0;
        case Corrupt::kTruncate:
            return 4;
        case Corrupt::kReorder:
        case Corrupt::kStrayType2:
        case Corrupt::kXWord:
            return 2;
        default:
            return 1;
    }
}

/// The divergence classes (kind + attributed side) a report's genuine
/// findings fall into; sorted so set membership is a binary search.
using Sig = std::vector<std::pair<DivergenceKind, Side>>;

[[nodiscard]] Sig signature_of(const DiffReport& rep) {
    Sig sig;
    for (const Divergence& d : rep.divergences) {
        if (d.genuine) sig.emplace_back(d.kind, d.side);
    }
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
    return sig;
}

[[nodiscard]] bool matches(const DiffReport& rep, const Sig& baseline) {
    for (const Divergence& d : rep.divergences) {
        if (d.genuine && std::binary_search(baseline.begin(), baseline.end(),
                                            std::make_pair(d.kind, d.side))) {
            return true;
        }
    }
    return false;
}

}  // namespace

scen::Scenario normalize(scen::Scenario s) {
    std::uint8_t resident = 1;  // initial configuration: CIE
    bool captured[3] = {false, false, false};
    for (StreamSession& ss : s.sessions) {
        ss.rr_id = 1;
        if (ss.module_id != 1 && ss.module_id != 2) ss.module_id = 2;
        ss.word_gap = std::max(1u, ss.word_gap);
        // 0x7FF is the widest count a short-form type-1 FDRI header can
        // express; the generator never exceeds it either.
        ss.payload_words = std::min<std::uint32_t>(ss.payload_words, 0x7FF);
        switch (ss.corrupt) {
            case Corrupt::kHeaderOnly:
            case Corrupt::kZeroPayload:
                ss.payload_words = 0;
                ss.type2_header = true;
                break;
            case Corrupt::kReorder:
            case Corrupt::kStrayType2:
                ss.type2_header = true;
                ss.payload_words =
                    std::max<std::uint32_t>(ss.payload_words, 2);
                break;
            case Corrupt::kTruncate:
                ss.payload_words =
                    std::max<std::uint32_t>(ss.payload_words, 4);
                ss.corrupt_pos = std::clamp<std::uint32_t>(
                    ss.corrupt_pos, 1, ss.payload_words - 1);
                break;
            case Corrupt::kBitFlip:
                ss.payload_words =
                    std::max<std::uint32_t>(ss.payload_words, 1);
                ss.corrupt_pos =
                    std::min(ss.corrupt_pos, ss.payload_words - 1);
                ss.corrupt_bit &= 31;
                break;
            case Corrupt::kXWord:
                ss.payload_words =
                    std::max<std::uint32_t>(ss.payload_words, 2);
                ss.corrupt_pos =
                    std::min(ss.corrupt_pos, ss.payload_words - 1);
                break;
            default:
                ss.payload_words =
                    std::max<std::uint32_t>(ss.payload_words, 1);
                break;
        }
        if (ss.capture_first) {
            ss.capture_module = resident;
            captured[resident] = true;
        }
        if (ss.restore_state &&
            (ss.corrupt != Corrupt::kNone || !captured[ss.module_id])) {
            ss.restore_state = false;
        }
        if (scen::swap_expected(ss.corrupt)) resident = ss.module_id;
    }
    return s;
}

ShrinkResult shrink(const scen::Scenario& input, const ShrinkOptions& opt_in) {
    ShrinkResult r;
    r.original_words = simb_word_count(input);

    // The shrinker is the heaviest run_diff consumer (up to max_runs
    // two-sided replays of one scenario), so every replay forks both sides
    // from cached boot snapshots instead of re-simulating the shared
    // elaborate+reset prefix. A caller-provided cache is reused as is.
    BootCache cache;
    ShrinkOptions opt = opt_in;
    if (opt.diff.boot == nullptr) opt.diff.boot = &cache;

    scen::Scenario cur = normalize(input);
    DiffOutcome cur_out = run_diff(cur, opt.diff);
    r.runs = 1;
    const Sig sig = signature_of(cur_out.report);
    if (sig.empty()) {
        r.minimal = input;
        r.minimal_words = r.original_words;
        r.outcome = std::move(cur_out);
        return r;
    }
    r.diverged = true;

    const auto cancelled = [&opt] {
        return opt.diff.cancel != nullptr &&
               opt.diff.cancel->load(std::memory_order_relaxed);
    };
    // Accept an edit only while a genuine divergence of the baseline class
    // survives it — reductions must not trade the original finding for an
    // unrelated one.
    const auto try_candidate = [&](scen::Scenario cand) {
        if (r.runs >= opt.max_runs || cancelled()) return false;
        cand = normalize(std::move(cand));
        DiffOutcome out = run_diff(cand, opt.diff);
        ++r.runs;
        if (out.report.cancelled || !matches(out.report, sig)) return false;
        cur = std::move(cand);
        cur_out = std::move(out);
        return true;
    };

    // Stage 1: drop whole sessions, back to front, to fixpoint.
    bool changed = true;
    while (changed && cur.sessions.size() > 1) {
        changed = false;
        for (std::size_t i = cur.sessions.size(); i-- > 0;) {
            scen::Scenario cand = cur;
            cand.sessions.erase(cand.sessions.begin() +
                                static_cast<std::ptrdiff_t>(i));
            if (try_candidate(std::move(cand))) {
                changed = true;
                break;
            }
        }
    }

    // Stage 2: drop per-session packets and pacing.
    for (std::size_t i = 0; i < cur.sessions.size(); ++i) {
        const auto drop = [&](auto edit) {
            scen::Scenario cand = cur;
            edit(cand.sessions[i]);
            (void)try_candidate(std::move(cand));
        };
        if (cur.sessions[i].capture_first) {
            drop([](StreamSession& ss) { ss.capture_first = false; });
        }
        if (cur.sessions[i].restore_state) {
            drop([](StreamSession& ss) { ss.restore_state = false; });
        }
        if (cur.sessions[i].dcr != scen::DcrTraffic::kNone) {
            drop([](StreamSession& ss) { ss.dcr = scen::DcrTraffic::kNone; });
        }
        if (cur.sessions[i].corrupt != Corrupt::kNone) {
            drop([](StreamSession& ss) { ss.corrupt = Corrupt::kNone; });
        }
        if (cur.sessions[i].word_gap > 1) {
            drop([](StreamSession& ss) { ss.word_gap = 1; });
        }
    }

    // Stage 3: shrink payloads — jump straight to the minimum, otherwise
    // descend geometrically with a linear tail.
    for (std::size_t i = 0; i < cur.sessions.size(); ++i) {
        const std::uint32_t floor = min_payload(cur.sessions[i].corrupt);
        if (cur.sessions[i].payload_words > floor) {
            scen::Scenario cand = cur;
            cand.sessions[i].payload_words = floor;
            (void)try_candidate(std::move(cand));
        }
        while (cur.sessions[i].payload_words > floor) {
            scen::Scenario cand = cur;
            cand.sessions[i].payload_words =
                std::max(floor, cur.sessions[i].payload_words / 2);
            if (!try_candidate(std::move(cand))) break;
        }
        while (cur.sessions[i].payload_words > floor) {
            scen::Scenario cand = cur;
            cand.sessions[i].payload_words -= 1;
            if (!try_candidate(std::move(cand))) break;
        }
    }

    r.minimal = cur;
    r.minimal_words = simb_word_count(cur);
    r.outcome = std::move(cur_out);
    return r;
}

}  // namespace autovision::diff
