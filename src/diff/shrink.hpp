// diff: automatic divergence shrinking (delta debugging).
//
// Given a scenario whose differential run shows a genuine divergence, the
// shrinker reduces it Verismith-reducer style — drop sessions, then drop
// per-session packets (capture, restore, DCR traffic, corruption, word
// gaps), then shrink payloads geometrically — re-running both sides after
// every candidate edit and keeping it only when the *same class* of genuine
// divergence (kind + attributed side) survives. Candidates are renormalised
// to the generator's valid-by-construction invariants first, so the loop
// never wanders into scenarios whose expectations are ill-defined.
//
// The whole loop is RNG-free and iterates in a fixed order, so a given
// (scenario, injection) pair shrinks to the same minimal reproducer on any
// worker, any thread count, any run.
#pragma once

#include "classify.hpp"

namespace autovision::diff {

struct ShrinkOptions {
    DiffOptions diff;
    /// Differential-run budget (each run is two full simulations).
    unsigned max_runs = 160;
};

struct ShrinkResult {
    /// False when the input scenario showed no genuine divergence (nothing
    /// to shrink; `minimal` is the input).
    bool diverged = false;
    scen::Scenario minimal;
    /// Differential outcome of `minimal` (the baseline outcome when the
    /// input did not diverge).
    DiffOutcome outcome;
    unsigned runs = 0;
    std::size_t original_words = 0;
    std::size_t minimal_words = 0;
};

/// Re-establish the generator's invariants after an edit: recompute the
/// resident-module chain, drop captures/restores that lost their
/// prerequisites, and clamp payload sizes and corruption positions to what
/// each mutation kind requires.
[[nodiscard]] scen::Scenario normalize(scen::Scenario s);

[[nodiscard]] ShrinkResult shrink(const scen::Scenario& s,
                                  const ShrinkOptions& opt = {});

}  // namespace autovision::diff
