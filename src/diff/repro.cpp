#include "repro.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace autovision::diff {

using scen::Corrupt;
using scen::DcrTraffic;
using scen::StreamSession;

namespace {

/// Same escape set as campaign::json_escape (not reused: campaign links
/// against this library, so diff must not link back).
[[nodiscard]] std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

[[nodiscard]] std::string hex64(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

[[nodiscard]] const char* dcr_to_string(DcrTraffic d) {
    switch (d) {
        case DcrTraffic::kNone: return "none";
        case DcrTraffic::kRead: return "read";
        case DcrTraffic::kWrite: return "write";
    }
    return "?";
}

[[nodiscard]] bool dcr_from_string(const std::string& s, DcrTraffic* out) {
    for (unsigned i = 0; i < 3; ++i) {
        const auto d = static_cast<DcrTraffic>(i);
        if (s == dcr_to_string(d)) {
            *out = d;
            return true;
        }
    }
    return false;
}

[[nodiscard]] bool corrupt_from_string(const std::string& s, Corrupt* out) {
    for (unsigned i = 0; i < scen::kNumCorrupt; ++i) {
        const auto c = static_cast<Corrupt>(i);
        if (s == scen::to_string(c)) {
            *out = c;
            return true;
        }
    }
    return false;
}

// --- minimal JSON reader (objects, arrays, strings, unsigned ints, bools) --

struct Jv {
    enum class T { kNull, kBool, kNum, kStr, kArr, kObj };
    T t = T::kNull;
    bool b = false;
    std::uint64_t num = 0;
    std::string str;
    std::vector<Jv> arr;
    std::vector<std::pair<std::string, Jv>> obj;

    [[nodiscard]] const Jv* find(const std::string& key) const {
        for (const auto& [k, v] : obj) {
            if (k == key) return &v;
        }
        return nullptr;
    }
};

struct Parser {
    const char* p;
    const char* end;
    std::string err;

    void skip_ws() {
        while (p != end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                            *p == '\r')) {
            ++p;
        }
    }

    bool fail(const char* what) {
        if (err.empty()) err = what;
        return false;
    }

    bool parse_string(std::string* out) {
        if (p == end || *p != '"') return fail("expected string");
        ++p;
        out->clear();
        while (p != end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (p == end) return fail("dangling escape");
            const char e = *p++;
            switch (e) {
                case '"': *out += '"'; break;
                case '\\': *out += '\\'; break;
                case '/': *out += '/'; break;
                case 'b': *out += '\b'; break;
                case 'f': *out += '\f'; break;
                case 'n': *out += '\n'; break;
                case 'r': *out += '\r'; break;
                case 't': *out += '\t'; break;
                case 'u': {
                    if (end - p < 4) return fail("short \\u escape");
                    char buf[5] = {p[0], p[1], p[2], p[3], 0};
                    *out += static_cast<char>(
                        std::strtoul(buf, nullptr, 16) & 0xFF);
                    p += 4;
                    break;
                }
                default:
                    return fail("unknown escape");
            }
        }
        if (p == end) return fail("unterminated string");
        ++p;  // closing quote
        return true;
    }

    bool parse_value(Jv* out) {
        skip_ws();
        if (p == end) return fail("unexpected end of input");
        const char c = *p;
        if (c == '{') {
            ++p;
            out->t = Jv::T::kObj;
            skip_ws();
            if (p != end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skip_ws();
                std::string key;
                if (!parse_string(&key)) return false;
                skip_ws();
                if (p == end || *p != ':') return fail("expected ':'");
                ++p;
                Jv v;
                if (!parse_value(&v)) return false;
                out->obj.emplace_back(std::move(key), std::move(v));
                skip_ws();
                if (p != end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p != end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++p;
            out->t = Jv::T::kArr;
            skip_ws();
            if (p != end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                Jv v;
                if (!parse_value(&v)) return false;
                out->arr.push_back(std::move(v));
                skip_ws();
                if (p != end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p != end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out->t = Jv::T::kStr;
            return parse_string(&out->str);
        }
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            out->t = Jv::T::kNum;
            std::uint64_t v = 0;
            while (p != end &&
                   std::isdigit(static_cast<unsigned char>(*p)) != 0) {
                v = v * 10 + static_cast<std::uint64_t>(*p - '0');
                ++p;
            }
            out->num = v;
            return true;
        }
        if (end - p >= 4 && std::string_view(p, 4) == "true") {
            out->t = Jv::T::kBool;
            out->b = true;
            p += 4;
            return true;
        }
        if (end - p >= 5 && std::string_view(p, 5) == "false") {
            out->t = Jv::T::kBool;
            out->b = false;
            p += 5;
            return true;
        }
        if (end - p >= 4 && std::string_view(p, 4) == "null") {
            out->t = Jv::T::kNull;
            p += 4;
            return true;
        }
        return fail("unexpected token");
    }
};

[[nodiscard]] bool get_u64(const Jv& obj, const char* key, std::uint64_t* out,
                           std::string* err) {
    const Jv* v = obj.find(key);
    if (v == nullptr || v->t != Jv::T::kNum) {
        *err = std::string("missing numeric field '") + key + "'";
        return false;
    }
    *out = v->num;
    return true;
}

[[nodiscard]] bool get_hex(const Jv& obj, const char* key, std::uint64_t* out,
                           std::string* err) {
    const Jv* v = obj.find(key);
    if (v == nullptr || v->t != Jv::T::kStr) {
        *err = std::string("missing hex-string field '") + key + "'";
        return false;
    }
    *out = std::strtoull(v->str.c_str(), nullptr, 16);
    return true;
}

[[nodiscard]] bool get_bool(const Jv& obj, const char* key, bool* out,
                            std::string* err) {
    const Jv* v = obj.find(key);
    if (v == nullptr || v->t != Jv::T::kBool) {
        *err = std::string("missing boolean field '") + key + "'";
        return false;
    }
    *out = v->b;
    return true;
}

[[nodiscard]] bool get_str(const Jv& obj, const char* key, std::string* out,
                           std::string* err) {
    const Jv* v = obj.find(key);
    if (v == nullptr || v->t != Jv::T::kStr) {
        *err = std::string("missing string field '") + key + "'";
        return false;
    }
    *out = v->str;
    return true;
}

}  // namespace

ReproBundle make_bundle(const scen::Scenario& minimal,
                        const DiffReport& report, DiffFault inject,
                        std::size_t original_words,
                        std::size_t minimal_words) {
    ReproBundle b;
    b.scenario = minimal;
    b.inject = inject;
    b.original_words = original_words;
    b.minimal_words = minimal_words;
    for (const Divergence& d : report.divergences) {
        if (d.genuine) {
            b.genuine.push_back(std::string(to_string(d.kind)) + " on " +
                                to_string(d.side) + ": " + d.detail);
        }
    }
    return b;
}

std::string repro_to_json(const ReproBundle& b) {
    std::string out;
    out += "{\n";
    out += "  \"version\": 1,\n";
    out += "  \"name\": \"" + json_escape(b.scenario.name) + "\",\n";
    out += "  \"seed\": \"" + hex64(b.scenario.seed) + "\",\n";
    out += "  \"kind\": \"stream\",\n";
    out += std::string("  \"inject\": \"") + to_string(b.inject) + "\",\n";
    out += "  \"original_words\": " + std::to_string(b.original_words) + ",\n";
    out += "  \"minimal_words\": " + std::to_string(b.minimal_words) + ",\n";
    out += "  \"sessions\": [\n";
    for (std::size_t i = 0; i < b.scenario.sessions.size(); ++i) {
        const StreamSession& ss = b.scenario.sessions[i];
        out += "    {\"rr_id\": " + std::to_string(ss.rr_id);
        out += ", \"module_id\": " + std::to_string(ss.module_id);
        out += ", \"payload_words\": " + std::to_string(ss.payload_words);
        out += ", \"filler_seed\": \"" + hex64(ss.filler_seed) + "\"";
        out += std::string(", \"type2_header\": ") +
               (ss.type2_header ? "true" : "false");
        out += std::string(", \"capture_first\": ") +
               (ss.capture_first ? "true" : "false");
        out += ", \"capture_module\": " + std::to_string(ss.capture_module);
        out += std::string(", \"restore_state\": ") +
               (ss.restore_state ? "true" : "false");
        out += std::string(", \"corrupt\": \"") + scen::to_string(ss.corrupt) +
               "\"";
        out += ", \"corrupt_pos\": " + std::to_string(ss.corrupt_pos);
        out += ", \"corrupt_bit\": " + std::to_string(ss.corrupt_bit);
        out += ", \"word_gap\": " + std::to_string(ss.word_gap);
        out += std::string(", \"dcr\": \"") + dcr_to_string(ss.dcr) + "\"}";
        out += i + 1 < b.scenario.sessions.size() ? ",\n" : "\n";
    }
    out += "  ],\n";
    out += "  \"genuine\": [\n";
    for (std::size_t i = 0; i < b.genuine.size(); ++i) {
        out += "    \"" + json_escape(b.genuine[i]) + "\"";
        out += i + 1 < b.genuine.size() ? ",\n" : "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

std::string simb_to_text(const scen::Scenario& s) {
    std::string out;
    out += "# SimB stream of diff reproducer '" + s.name + "'\n";
    for (std::size_t i = 0; i < s.sessions.size(); ++i) {
        const StreamSession& ss = s.sessions[i];
        const std::vector<rtlsim::Word> words = ss.words();
        char hdr[128];
        std::snprintf(hdr, sizeof hdr,
                      "# session %zu: module=%u corrupt=%s payload=%u "
                      "words=%zu\n",
                      i, static_cast<unsigned>(ss.module_id),
                      scen::to_string(ss.corrupt), ss.payload_words,
                      words.size());
        out += hdr;
        for (const rtlsim::Word& w : words) {
            if (!w.is_fully_defined()) {
                out += "XXXXXXXX\n";
            } else {
                char buf[16];
                std::snprintf(buf, sizeof buf, "%08X\n",
                              static_cast<unsigned>(w.to_u64()));
                out += buf;
            }
        }
    }
    return out;
}

bool repro_from_json(const std::string& text, ReproBundle* out,
                     std::string* err) {
    std::string local_err;
    if (err == nullptr) err = &local_err;
    Parser ps{text.data(), text.data() + text.size(), {}};
    Jv root;
    if (!ps.parse_value(&root)) {
        *err = "json: " + ps.err;
        return false;
    }
    if (root.t != Jv::T::kObj) {
        *err = "top level is not an object";
        return false;
    }
    std::uint64_t version = 0;
    if (!get_u64(root, "version", &version, err)) return false;
    if (version != 1) {
        *err = "unsupported repro version " + std::to_string(version);
        return false;
    }
    ReproBundle b;
    std::string kind, inject;
    if (!get_str(root, "name", &b.scenario.name, err)) return false;
    std::uint64_t seed = 0, ow = 0, mw = 0;
    if (!get_hex(root, "seed", &seed, err)) return false;
    b.scenario.seed = seed;
    if (!get_str(root, "kind", &kind, err)) return false;
    if (kind != "stream") {
        *err = "unsupported scenario kind '" + kind + "'";
        return false;
    }
    b.scenario.kind = scen::Kind::kStream;
    if (!get_str(root, "inject", &inject, err)) return false;
    bool ok = false;
    b.inject = fault_from_string(inject, &ok);
    if (!ok) {
        *err = "unknown inject '" + inject + "'";
        return false;
    }
    if (!get_u64(root, "original_words", &ow, err)) return false;
    if (!get_u64(root, "minimal_words", &mw, err)) return false;
    b.original_words = static_cast<std::size_t>(ow);
    b.minimal_words = static_cast<std::size_t>(mw);

    const Jv* sessions = root.find("sessions");
    if (sessions == nullptr || sessions->t != Jv::T::kArr) {
        *err = "missing sessions array";
        return false;
    }
    for (const Jv& sv : sessions->arr) {
        if (sv.t != Jv::T::kObj) {
            *err = "session entry is not an object";
            return false;
        }
        StreamSession ss;
        std::uint64_t u = 0;
        if (!get_u64(sv, "rr_id", &u, err)) return false;
        ss.rr_id = static_cast<std::uint8_t>(u);
        if (!get_u64(sv, "module_id", &u, err)) return false;
        ss.module_id = static_cast<std::uint8_t>(u);
        if (!get_u64(sv, "payload_words", &u, err)) return false;
        ss.payload_words = static_cast<std::uint32_t>(u);
        if (!get_hex(sv, "filler_seed", &ss.filler_seed, err)) return false;
        if (!get_bool(sv, "type2_header", &ss.type2_header, err)) return false;
        if (!get_bool(sv, "capture_first", &ss.capture_first, err)) {
            return false;
        }
        if (!get_u64(sv, "capture_module", &u, err)) return false;
        ss.capture_module = static_cast<std::uint8_t>(u);
        if (!get_bool(sv, "restore_state", &ss.restore_state, err)) {
            return false;
        }
        std::string corrupt, dcr;
        if (!get_str(sv, "corrupt", &corrupt, err)) return false;
        if (!corrupt_from_string(corrupt, &ss.corrupt)) {
            *err = "unknown corrupt kind '" + corrupt + "'";
            return false;
        }
        if (!get_u64(sv, "corrupt_pos", &u, err)) return false;
        ss.corrupt_pos = static_cast<std::uint32_t>(u);
        if (!get_u64(sv, "corrupt_bit", &u, err)) return false;
        ss.corrupt_bit = static_cast<std::uint32_t>(u);
        if (!get_u64(sv, "word_gap", &u, err)) return false;
        ss.word_gap = static_cast<unsigned>(u);
        if (!get_str(sv, "dcr", &dcr, err)) return false;
        if (!dcr_from_string(dcr, &ss.dcr)) {
            *err = "unknown dcr traffic '" + dcr + "'";
            return false;
        }
        b.scenario.sessions.push_back(ss);
    }

    const Jv* genuine = root.find("genuine");
    if (genuine != nullptr && genuine->t == Jv::T::kArr) {
        for (const Jv& g : genuine->arr) {
            if (g.t == Jv::T::kStr) b.genuine.push_back(g.str);
        }
    }
    *out = std::move(b);
    return true;
}

bool write_repro_files(const ReproBundle& b, const std::string& dir,
                       const std::string& stem, std::string* err) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        if (err != nullptr) *err = "create_directories: " + ec.message();
        return false;
    }
    const auto write = [&](const std::string& path,
                           const std::string& text) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f << text;
        f.flush();
        if (!f) {
            if (err != nullptr) *err = "write failed: " + path;
            return false;
        }
        return true;
    };
    const std::string base = dir + "/" + stem;
    return write(base + ".repro.json", repro_to_json(b)) &&
           write(base + ".simb", simb_to_text(b.scenario));
}

bool load_repro_file(const std::string& path, ReproBundle* out,
                     std::string* err) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        if (err != nullptr) *err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    return repro_from_json(ss.str(), out, err);
}

}  // namespace autovision::diff
