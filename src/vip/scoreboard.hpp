// Scoreboard VIP — end-to-end data checking against the golden models.
//
// For every video frame the scoreboard computes the expected census image
// (golden census transform), the expected motion field (golden block
// matcher against the previous census image, which starts as all zeros,
// mirroring the zero-initialised census buffers), and the expected drawn
// output (the firmware's motion-marker rule). The testbench compares the
// demonstrator's memory contents against these references as each pipeline
// stage completes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "bus/memory.hpp"
#include "video/census.hpp"
#include "video/flow.hpp"
#include "video/frame.hpp"

namespace autovision::vip {

class Scoreboard {
public:
    Scoreboard(video::MatchConfig mc, unsigned w, unsigned h,
               unsigned draw_threshold);

    /// Advance the reference pipeline by one input frame.
    void expect_frame(const video::Frame& input);

    [[nodiscard]] unsigned frames_expected() const { return frames_; }

    /// Mismatching pixels between memory at `addr` and the expected census
    /// image of the latest expected frame.
    [[nodiscard]] std::size_t check_census(const Memory& mem,
                                           std::uint32_t addr) const;

    /// Mismatching words between memory at `addr` and the expected motion
    /// field.
    [[nodiscard]] std::size_t check_field(const Memory& mem,
                                          std::uint32_t addr) const;

    /// Mismatching pixels between a fetched output frame and the expected
    /// marker image of frame `index`. The drawing of frame N overlaps the
    /// engines processing frame N+1 in the pipelined flow, so per-frame
    /// references are kept (not just the latest).
    [[nodiscard]] std::size_t check_output(const video::Frame& fetched,
                                           unsigned index) const;

    /// Same, but reading the output buffer straight from memory.
    [[nodiscard]] std::size_t check_output_mem(const Memory& mem,
                                               std::uint32_t addr,
                                               unsigned index) const;

    [[nodiscard]] const video::MotionField& expected_field() const {
        return field_ref_;
    }
    [[nodiscard]] const video::Frame& expected_census() const {
        return census_ref_;
    }

private:
    video::MatchConfig mc_;
    unsigned w_;
    unsigned h_;
    unsigned thresh_;
    unsigned frames_ = 0;
    video::Frame prev_census_;
    video::Frame census_ref_;
    video::MotionField field_ref_;
    std::vector<video::Frame> out_refs_;  ///< one marker image per frame
};

}  // namespace autovision::vip
