#include "video_vip.hpp"

namespace autovision::vip {

using rtlsim::Word;

VideoInVip::VideoInVip(rtlsim::Scheduler& sch, const std::string& name,
                       rtlsim::Signal<Logic>& clk, PlbMasterPort& port)
    : Module(sch, name),
      frame_irq(sch, full_name() + ".frame_irq", Logic::L0),
      dma_(port, 16) {
    sync_proc("stream", [this] { on_clock(); }, {rtlsim::posedge(clk)});
}

void VideoInVip::send_frame(const video::Frame& f, std::uint32_t addr,
                            std::function<void()> on_done) {
    if (busy_) {
        report("send_frame while busy; frame dropped");
        return;
    }
    busy_ = true;
    on_done_ = std::move(on_done);
    staging_.assign(f.pixels().begin(), f.pixels().end());
    // Pad to a word multiple (frames are byte-packed 4 per word).
    while (staging_.size() % 4 != 0) staging_.push_back(0);
    dma_.start_write(
        addr, static_cast<std::uint32_t>(staging_.size() / 4),
        [this](std::uint32_t i) {
            return Word{(static_cast<std::uint32_t>(staging_[4 * i]) << 24) |
                        (static_cast<std::uint32_t>(staging_[4 * i + 1]) << 16) |
                        (static_cast<std::uint32_t>(staging_[4 * i + 2]) << 8) |
                        static_cast<std::uint32_t>(staging_[4 * i + 3])};
        },
        [this] {
            busy_ = false;
            pulse_ = true;
            ++frames_;
            if (on_done_) {
                auto f2 = std::move(on_done_);
                on_done_ = {};
                f2();
            }
        });
}

void VideoInVip::on_clock() {
    dma_.step();
    frame_irq.write(pulse_ ? Logic::L1 : Logic::L0);
    pulse_ = false;
}

VideoOutVip::VideoOutVip(rtlsim::Scheduler& sch, const std::string& name,
                         rtlsim::Signal<Logic>& clk, PlbMasterPort& port)
    : Module(sch, name),
      frame_irq(sch, full_name() + ".frame_irq", Logic::L0),
      dma_(port, 16) {
    sync_proc("stream", [this] { on_clock(); }, {rtlsim::posedge(clk)});
}

void VideoOutVip::fetch_frame(std::uint32_t addr, unsigned w, unsigned h,
                              std::function<void(video::Frame)> sink) {
    if (busy_) {
        report("fetch_frame while busy; request dropped");
        return;
    }
    busy_ = true;
    sink_ = std::move(sink);
    staging_ = video::Frame(w, h);
    dma_.start_read(
        addr, (w * h + 3) / 4,
        [this](std::uint32_t i, Word word) {
            if (word.has_unknown() && x_reports_ < 5) {
                ++x_reports_;
                report("X in displayed frame data");
            }
            const auto v = static_cast<std::uint32_t>(word.to_u64());
            auto px = staging_.pixels();
            for (unsigned b = 0; b < 4; ++b) {
                const std::size_t idx = 4 * std::size_t{i} + b;
                if (idx < px.size()) {
                    px[idx] = static_cast<std::uint8_t>(v >> (8 * (3 - b)));
                }
            }
        },
        [this] {
            busy_ = false;
            pulse_ = true;
            ++frames_;
            if (sink_) {
                auto s = std::move(sink_);
                sink_ = {};
                s(std::move(staging_));
            }
        });
}

void VideoOutVip::on_clock() {
    dma_.step();
    frame_irq.write(pulse_ ? Logic::L1 : Logic::L0);
    pulse_ = false;
}

}  // namespace autovision::vip
