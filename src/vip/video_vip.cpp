#include "video_vip.hpp"

#include <algorithm>

namespace autovision::vip {

using rtlsim::Word;

VideoInVip::VideoInVip(rtlsim::Scheduler& sch, const std::string& name,
                       rtlsim::Signal<Logic>& clk, PlbMasterPort& port)
    : Module(sch, name),
      frame_irq(sch, full_name() + ".frame_irq", Logic::L0),
      dma_(port, 16) {
    sync_proc("stream", [this] { on_clock(); }, {rtlsim::posedge(clk)});
}

void VideoInVip::send_frame(const video::Frame& f, std::uint32_t addr,
                            std::function<void()> on_done) {
    if (busy_) {
        report("send_frame while busy; frame dropped");
        return;
    }
    busy_ = true;
    on_done_ = std::move(on_done);
    staging_.assign(f.pixels().begin(), f.pixels().end());
    // Pad to a word multiple (frames are byte-packed 4 per word).
    while (staging_.size() % 4 != 0) staging_.push_back(0);
    dma_.start_write(
        addr, static_cast<std::uint32_t>(staging_.size() / 4),
        [this](std::uint32_t i) {
            return Word{(static_cast<std::uint32_t>(staging_[4 * i]) << 24) |
                        (static_cast<std::uint32_t>(staging_[4 * i + 1]) << 16) |
                        (static_cast<std::uint32_t>(staging_[4 * i + 2]) << 8) |
                        static_cast<std::uint32_t>(staging_[4 * i + 3])};
        },
        [this] {
            busy_ = false;
            pulse_ = true;
            ++frames_;
            if (on_done_) {
                auto f2 = std::move(on_done_);
                on_done_ = {};
                f2();
            }
        });
}

void VideoInVip::on_clock() {
    dma_.step();
    frame_irq.write(pulse_ ? Logic::L1 : Logic::L0);
    pulse_ = false;
}

void VideoInVip::ckpt_save(rtlsim::SnapWriter& w) const {
    dma_.ckpt_save(w);
    w.bool8(busy_);
    w.bool8(pulse_);
    w.u64(frames_);
    w.bytes(staging_);
    w.bool8(static_cast<bool>(on_done_));
}

bool VideoInVip::ckpt_restore(rtlsim::SnapReader& r) {
    if (!dma_.ckpt_restore(r)) return false;
    busy_ = r.bool8();
    pulse_ = r.bool8();
    frames_ = r.u64();
    staging_ = r.bytes();
    had_on_done_ = r.bool8();
    on_done_ = {};
    if (!r.ok_so_far()) return false;
    if (busy_ != dma_.busy()) return false;
    if (busy_ && dma_.words_total() > staging_.size() / 4) return false;
    // Re-arm the streaming closures (identical to send_frame's); the
    // caller's on_done_ is external and re-installed by the harness.
    dma_.ckpt_rearm(
        {},
        [this](std::uint32_t i) {
            return Word{(static_cast<std::uint32_t>(staging_[4 * i]) << 24) |
                        (static_cast<std::uint32_t>(staging_[4 * i + 1]) << 16) |
                        (static_cast<std::uint32_t>(staging_[4 * i + 2]) << 8) |
                        static_cast<std::uint32_t>(staging_[4 * i + 3])};
        },
        [this] {
            busy_ = false;
            pulse_ = true;
            ++frames_;
            if (on_done_) {
                auto f2 = std::move(on_done_);
                on_done_ = {};
                f2();
            }
        });
    return true;
}

VideoOutVip::VideoOutVip(rtlsim::Scheduler& sch, const std::string& name,
                         rtlsim::Signal<Logic>& clk, PlbMasterPort& port)
    : Module(sch, name),
      frame_irq(sch, full_name() + ".frame_irq", Logic::L0),
      dma_(port, 16) {
    sync_proc("stream", [this] { on_clock(); }, {rtlsim::posedge(clk)});
}

void VideoOutVip::fetch_frame(std::uint32_t addr, unsigned w, unsigned h,
                              std::function<void(video::Frame)> sink) {
    if (busy_) {
        report("fetch_frame while busy; request dropped");
        return;
    }
    busy_ = true;
    sink_ = std::move(sink);
    staging_ = video::Frame(w, h);
    dma_.start_read(
        addr, (w * h + 3) / 4,
        [this](std::uint32_t i, Word word) {
            if (word.has_unknown() && x_reports_ < 5) {
                ++x_reports_;
                report("X in displayed frame data");
            }
            const auto v = static_cast<std::uint32_t>(word.to_u64());
            auto px = staging_.pixels();
            for (unsigned b = 0; b < 4; ++b) {
                const std::size_t idx = 4 * std::size_t{i} + b;
                if (idx < px.size()) {
                    px[idx] = static_cast<std::uint8_t>(v >> (8 * (3 - b)));
                }
            }
        },
        [this] {
            busy_ = false;
            pulse_ = true;
            ++frames_;
            if (sink_) {
                auto s = std::move(sink_);
                sink_ = {};
                s(std::move(staging_));
            }
        });
}

void VideoOutVip::on_clock() {
    dma_.step();
    frame_irq.write(pulse_ ? Logic::L1 : Logic::L0);
    pulse_ = false;
}

void VideoOutVip::ckpt_save(rtlsim::SnapWriter& w) const {
    dma_.ckpt_save(w);
    w.bool8(busy_);
    w.bool8(pulse_);
    w.u64(frames_);
    w.u32(x_reports_);
    w.u32(staging_.width());
    w.u32(staging_.height());
    w.bytes(staging_.pixels());
    w.bool8(static_cast<bool>(sink_));
}

bool VideoOutVip::ckpt_restore(rtlsim::SnapReader& r) {
    if (!dma_.ckpt_restore(r)) return false;
    busy_ = r.bool8();
    pulse_ = r.bool8();
    frames_ = r.u64();
    x_reports_ = r.u32();
    const std::uint32_t fw = r.u32();
    const std::uint32_t fh = r.u32();
    const std::vector<std::uint8_t> pix = r.bytes();
    if (pix.size() != std::size_t{fw} * fh) return false;
    staging_ = video::Frame(fw, fh);
    std::copy(pix.begin(), pix.end(), staging_.pixels().begin());
    had_sink_ = r.bool8();
    sink_ = {};
    if (!r.ok_so_far()) return false;
    if (busy_ != dma_.busy()) return false;
    // Re-arm the fetch closures (identical to fetch_frame's); the frame
    // sink is external and re-installed by the harness.
    dma_.ckpt_rearm(
        [this](std::uint32_t i, Word word) {
            if (word.has_unknown() && x_reports_ < 5) {
                ++x_reports_;
                report("X in displayed frame data");
            }
            const auto v = static_cast<std::uint32_t>(word.to_u64());
            auto px = staging_.pixels();
            for (unsigned b = 0; b < 4; ++b) {
                const std::size_t idx = 4 * std::size_t{i} + b;
                if (idx < px.size()) {
                    px[idx] = static_cast<std::uint8_t>(v >> (8 * (3 - b)));
                }
            }
        },
        {},
        [this] {
            busy_ = false;
            pulse_ = true;
            ++frames_;
            if (sink_) {
                auto s = std::move(sink_);
                sink_ = {};
                s(std::move(staging_));
            }
        });
    return true;
}

}  // namespace autovision::vip
