#include "ila.hpp"

namespace autovision::vip {

Ila::Ila(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
         Config cfg)
    : Module(sch, name), cfg_(cfg) {
    ring_.resize(cfg_.depth);
    sync_proc("sample", [this] { on_clock(); }, {rtlsim::posedge(clk)});
}

bool Ila::probe(SignalBase& s, const std::string& label) {
    if (probes_.size() >= cfg_.max_probes) {
        report("probe limit reached (" + std::to_string(cfg_.max_probes) +
               "); changing the probe set requires re-implementation");
        return false;
    }
    probes_.push_back(&s);
    labels_.push_back(label);
    return true;
}

void Ila::arm(std::function<bool(const std::vector<std::string>&)> trigger) {
    trigger_ = std::move(trigger);
    armed_ = true;
    triggered_ = false;
    frozen_ = false;
    seen_ = 0;
    head_ = 0;
    count_ = 0;
    seq_ = 0;
    first_seq_in_ring_ = 0;
}

void Ila::on_clock() {
    if (!armed_ || frozen_) return;
    ++seen_;

    Sample s;
    s.time = sch_.now();
    s.values.reserve(probes_.size());
    for (SignalBase* p : probes_) s.values.push_back(p->trace_value());

    // Write into the ring.
    if (count_ == ring_.size()) {
        // Overwriting the oldest sample.
        ++first_seq_in_ring_;
    } else {
        ++count_;
    }
    ring_[head_] = std::move(s);
    head_ = (head_ + 1) % ring_.size();
    const std::uint64_t this_seq = seq_++;

    if (!triggered_) {
        if (trigger_ && trigger_(ring_[(head_ + ring_.size() - 1) %
                                       ring_.size()]
                                     .values)) {
            triggered_ = true;
            trigger_seq_ = this_seq;
            post_left_ = cfg_.post_trigger;
        }
        return;
    }
    if (post_left_ > 0 && --post_left_ == 0) frozen_ = true;
}

std::vector<Ila::Sample> Ila::window() const {
    std::vector<Sample> out;
    if (!frozen_) return out;
    out.reserve(count_);
    const std::size_t start =
        (head_ + ring_.size() - count_) % ring_.size();
    for (std::size_t i = 0; i < count_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

int Ila::trigger_index() const {
    if (!frozen_ || !triggered_) return -1;
    if (trigger_seq_ < first_seq_in_ring_) return -1;  // rolled out
    return static_cast<int>(trigger_seq_ - first_seq_in_ring_);
}

}  // namespace autovision::vip
