#include "scoreboard.hpp"

#include <cstdlib>

namespace autovision::vip {

Scoreboard::Scoreboard(video::MatchConfig mc, unsigned w, unsigned h,
                       unsigned draw_threshold)
    : mc_(mc),
      w_(w),
      h_(h),
      thresh_(draw_threshold),
      prev_census_(w, h, 0),
      census_ref_(w, h, 0) {}

void Scoreboard::expect_frame(const video::Frame& input) {
    census_ref_ = video::census_transform(input);
    field_ref_ = video::match_census(prev_census_, census_ref_, mc_);
    // The firmware writes 0 or 255 at each grid point (everything else
    // stays at the zero-initialised memory background).
    video::Frame out_ref(w_, h_, 0);
    for (const video::MotionVector& v : field_ref_.vectors) {
        const unsigned mag = static_cast<unsigned>(std::abs(v.dx)) +
                             static_cast<unsigned>(std::abs(v.dy));
        out_ref.at(v.x, v.y) = (mag >= thresh_) ? 255 : 0;
    }
    out_refs_.push_back(std::move(out_ref));
    prev_census_ = census_ref_;
    ++frames_;
}

std::size_t Scoreboard::check_census(const Memory& mem,
                                     std::uint32_t addr) const {
    std::size_t mm = 0;
    for (unsigned i = 0; i < w_ * h_; ++i) {
        bool ok = true;
        const std::uint8_t got = mem.peek_u8(addr + i, &ok);
        if (!ok || got != census_ref_.pixels()[i]) ++mm;
    }
    return mm;
}

std::size_t Scoreboard::check_field(const Memory& mem,
                                    std::uint32_t addr) const {
    std::size_t mm = 0;
    for (std::size_t i = 0; i < field_ref_.vectors.size(); ++i) {
        bool ok = true;
        const std::uint32_t got =
            mem.peek_u32(addr + 4 * static_cast<std::uint32_t>(i), &ok);
        if (!ok || got != video::encode_motion_word(field_ref_.vectors[i])) {
            ++mm;
        }
    }
    return mm;
}

std::size_t Scoreboard::check_output(const video::Frame& fetched,
                                     unsigned index) const {
    if (index >= out_refs_.size()) return fetched.size();
    return fetched.count_mismatches(out_refs_[index]);
}

std::size_t Scoreboard::check_output_mem(const Memory& mem,
                                         std::uint32_t addr,
                                         unsigned index) const {
    if (index >= out_refs_.size()) return std::size_t{w_} * h_;
    const video::Frame& ref = out_refs_[index];
    std::size_t mm = 0;
    for (unsigned i = 0; i < w_ * h_; ++i) {
        bool ok = true;
        const std::uint8_t got = mem.peek_u8(addr + i, &ok);
        if (!ok || got != ref.pixels()[i]) ++mm;
    }
    return mm;
}

}  // namespace autovision::vip
