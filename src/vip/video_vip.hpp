// Video verification IPs.
//
// The simulation environment has no camera or display; as in the paper,
// SystemC-style VIPs replace the video input and output modules. Frames
// come from the synthetic scene (instead of video files on disk) and move
// to/from simulated main memory through *cycle-accurate PLB bus
// operations*, so the bus-level behaviour of the real video pipeline is
// preserved.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "bus/plb.hpp"
#include "kernel/kernel.hpp"
#include "video/frame.hpp"

namespace autovision::vip {

using rtlsim::Logic;

/// Camera-side VIP: a PLB master that DMA-writes frames into memory and
/// pulses a frame-done interrupt, like the demonstrator's video input IP.
class VideoInVip final : public rtlsim::Module {
public:
    VideoInVip(rtlsim::Scheduler& sch, const std::string& name,
               rtlsim::Signal<Logic>& clk, PlbMasterPort& port);

    /// One-cycle pulse when a frame has fully landed in memory.
    rtlsim::Signal<Logic> frame_irq;

    /// Begin streaming `f` to `addr`. Width must be a multiple of 4.
    void send_frame(const video::Frame& f, std::uint32_t addr,
                    std::function<void()> on_done = {});

    [[nodiscard]] bool busy() const { return busy_; }
    [[nodiscard]] std::uint64_t frames_sent() const { return frames_; }

    // --- checkpoint ------------------------------------------------------
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);
    /// True when the saved state had a caller completion callback pending;
    /// the owning harness must re-install it via ckpt_rearm_on_done.
    [[nodiscard]] bool ckpt_pending_callback() const { return had_on_done_; }
    void ckpt_rearm_on_done(std::function<void()> f) {
        on_done_ = std::move(f);
    }

private:
    void on_clock();

    DmaMaster dma_;
    std::vector<std::uint8_t> staging_;
    bool busy_ = false;
    bool pulse_ = false;
    bool had_on_done_ = false;  ///< restore-time flag, see ckpt_restore
    std::uint64_t frames_ = 0;
    std::function<void()> on_done_;
};

/// Display-side VIP: DMA-reads a frame from memory and hands it to a C++
/// consumer (the scoreboard / PPM writer).
class VideoOutVip final : public rtlsim::Module {
public:
    VideoOutVip(rtlsim::Scheduler& sch, const std::string& name,
                rtlsim::Signal<Logic>& clk, PlbMasterPort& port);

    rtlsim::Signal<Logic> frame_irq;

    /// Begin fetching a w x h frame from `addr`; `sink` receives it when
    /// complete. X bytes read from memory are reported and delivered as 0.
    void fetch_frame(std::uint32_t addr, unsigned w, unsigned h,
                     std::function<void(video::Frame)> sink);

    [[nodiscard]] bool busy() const { return busy_; }
    [[nodiscard]] std::uint64_t frames_fetched() const { return frames_; }

    // --- checkpoint ------------------------------------------------------
    void ckpt_save(rtlsim::SnapWriter& w) const;
    [[nodiscard]] bool ckpt_restore(rtlsim::SnapReader& r);
    /// True when the saved state had a frame sink pending; the owning
    /// harness must re-install it via ckpt_rearm_sink.
    [[nodiscard]] bool ckpt_pending_callback() const { return had_sink_; }
    void ckpt_rearm_sink(std::function<void(video::Frame)> f) {
        sink_ = std::move(f);
    }

private:
    void on_clock();

    DmaMaster dma_;
    video::Frame staging_;
    bool busy_ = false;
    bool pulse_ = false;
    bool had_sink_ = false;  ///< restore-time flag, see ckpt_restore
    std::uint64_t frames_ = 0;
    unsigned x_reports_ = 0;
    std::function<void(video::Frame)> sink_;
};

}  // namespace autovision::vip
