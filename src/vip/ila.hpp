// Integrated Logic Analyzer (ILA) — the on-chip debug model.
//
// The paper's Section II/V-B comparison point: on the real FPGA, bugs are
// chased with ChipScope-style probe cores that (a) see only the handful of
// signals wired to them at implementation time, (b) capture only a short
// window around a trigger, and (c) cost a full re-implementation (~52 min
// for AutoVision) every time the probe set changes. This module models
// exactly those constraints so the debug-turnaround comparison can be
// *executed* rather than argued: the same simulated design is observed
// through an ILA with K probes and an N-sample window.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"

namespace autovision::vip {

using rtlsim::Logic;
using rtlsim::Module;
using rtlsim::Scheduler;
using rtlsim::Signal;
using rtlsim::SignalBase;

class Ila final : public Module {
public:
    struct Config {
        unsigned max_probes = 8;     ///< wiring limit of the probe core
        unsigned depth = 1024;       ///< capture buffer, samples
        unsigned post_trigger = 256; ///< samples kept after the trigger
    };

    /// One captured sample: the probed values (as trace strings, matching
    /// what a waveform viewer would show) at one clock edge.
    struct Sample {
        rtlsim::Time time = 0;
        std::vector<std::string> values;
    };

    Ila(Scheduler& sch, const std::string& name, Signal<Logic>& clk,
        Config cfg);

    /// Wire a signal to the next probe input. Fails (reported + false) when
    /// the probe limit is exhausted — adding more means re-implementing.
    bool probe(SignalBase& s, const std::string& label);

    [[nodiscard]] const std::vector<std::string>& probe_labels() const {
        return labels_;
    }

    /// Arm with a trigger predicate over the current sample values (indexed
    /// like probe_labels()). Until armed the ILA discards everything.
    void arm(std::function<bool(const std::vector<std::string>&)> trigger);

    [[nodiscard]] bool triggered() const { return triggered_; }
    [[nodiscard]] bool capture_complete() const { return frozen_; }

    /// The captured window (pre-trigger history + post-trigger samples),
    /// oldest first. Empty until capture_complete().
    [[nodiscard]] std::vector<Sample> window() const;

    /// Index of the trigger sample within window(), or -1.
    [[nodiscard]] int trigger_index() const;

    /// Samples seen since arm (for utilisation stats).
    [[nodiscard]] std::uint64_t samples_seen() const { return seen_; }

private:
    void on_clock();

    Config cfg_;
    std::vector<SignalBase*> probes_;
    std::vector<std::string> labels_;
    std::function<bool(const std::vector<std::string>&)> trigger_;
    bool armed_ = false;
    bool triggered_ = false;
    bool frozen_ = false;
    std::uint64_t seen_ = 0;
    unsigned post_left_ = 0;

    // Circular buffer.
    std::vector<Sample> ring_;
    std::size_t head_ = 0;     ///< next write slot
    std::size_t count_ = 0;    ///< valid samples
    std::uint64_t trigger_seq_ = 0;
    std::uint64_t seq_ = 0;    ///< monotonically increasing sample number
    std::uint64_t first_seq_in_ring_ = 0;
};

}  // namespace autovision::vip
