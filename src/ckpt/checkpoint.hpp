// ckpt: versioned simulator checkpoints.
//
// A checkpoint is a compact, byte-deterministic binary blob:
//
//   magic "AVCKPT\0\1" (8 bytes)
//   u32  format version (kFormatVersion)
//   u64  config hash    (identity of the elaborated design; restore into a
//                        differently configured system is rejected)
//   u64  sim time       (informational copy of the scheduler's `now`)
//   u32  section count
//   per section: str name, u32 payload size, payload bytes
//
// Sections are written and restored in a fixed order chosen by the system
// (kernel core, clocks, per-module POD, signals last), so two checkpoints
// of identical simulator states are identical byte strings — the property
// the warm-start consumers (closure campaign, diff oracle, shrinker) and
// `tools/ckpt_inspect.py` rely on.
//
// Restore model: state is restored into a *freshly elaborated* system of
// the identical configuration (that is what the config hash pins). Pending
// closures are never serialized — the recurring event sources re-enter the
// wheel themselves and modules re-arm their DMA/DCR completion closures
// from restored descriptor fields.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "kernel/snapshot.hpp"

namespace autovision::ckpt {

inline constexpr char kMagic[8] = {'A', 'V', 'C', 'K', 'P', 'T', 0, 1};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Checkpoint identity + integrity header.
struct Manifest {
    std::uint32_t format_version = kFormatVersion;
    std::uint64_t config_hash = 0;
    std::uint64_t sim_time = 0;
};

/// Interface a module implements to participate in a checkpoint. The
/// system's save/restore walks its modules in elaboration order; each
/// serializes only non-signal state (signal values are captured wholesale
/// by the scheduler's signal registry).
class Checkpointable {
public:
    virtual ~Checkpointable() = default;
    virtual void ckpt_save(rtlsim::SnapWriter& w) const = 0;
    [[nodiscard]] virtual bool ckpt_restore(rtlsim::SnapReader& r) = 0;
};

/// Accumulates named sections and writes the final blob.
class Saver {
public:
    explicit Saver(Manifest m) : manifest_(m) {}

    /// Begin a section; returns the writer to serialize into. Finished by
    /// the next section() call or by write_to().
    rtlsim::SnapWriter& section(std::string name);

    /// Seal the blob and stream it out. Returns false on stream failure.
    bool write_to(std::ostream& os);

private:
    void seal_current();

    Manifest manifest_;
    std::string cur_name_;
    rtlsim::SnapWriter cur_;
    bool open_ = false;
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
};

/// Parses a blob, validates the manifest, and hands out per-section readers.
class Loader {
public:
    /// Read and parse the whole stream. `expected_config_hash` of 0 skips
    /// the config check (ckpt_inspect); any other value must match.
    [[nodiscard]] bool load(std::istream& is,
                            std::uint64_t expected_config_hash);

    [[nodiscard]] const Manifest& manifest() const noexcept { return manifest_; }
    [[nodiscard]] const std::string& error() const noexcept { return error_; }

    /// Section payload by name; nullptr when absent.
    [[nodiscard]] const std::vector<std::uint8_t>* find(
        const std::string& name) const;

    /// Reader over a named section; a missing section yields a reader that
    /// fails on first use (and is recorded in error()).
    [[nodiscard]] rtlsim::SnapReader reader(const std::string& name);

    struct SectionInfo {
        std::string name;
        std::size_t size = 0;
    };
    [[nodiscard]] std::vector<SectionInfo> sections() const;

private:
    Manifest manifest_;
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>> sections_;
    std::string error_;
};

/// Restore one named section into a Checkpointable-shaped target (anything
/// with a ckpt_restore(SnapReader&)); the common step of a restore walk.
template <typename T>
[[nodiscard]] bool restore_section(Loader& loader, const std::string& name,
                                   T& target) {
    rtlsim::SnapReader r = loader.reader(name);
    return target.ckpt_restore(r);
}

}  // namespace autovision::ckpt
