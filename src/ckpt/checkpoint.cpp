#include "checkpoint.hpp"

#include <cstring>

namespace autovision::ckpt {

// ------------------------------------------------------------------ Saver

rtlsim::SnapWriter& Saver::section(std::string name) {
    seal_current();
    cur_name_ = std::move(name);
    open_ = true;
    return cur_;
}

void Saver::seal_current() {
    if (!open_) return;
    sections_.emplace_back(std::move(cur_name_), cur_.take());
    open_ = false;
}

bool Saver::write_to(std::ostream& os) {
    seal_current();
    rtlsim::SnapWriter w;
    for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
    w.u32(manifest_.format_version);
    w.u64(manifest_.config_hash);
    w.u64(manifest_.sim_time);
    w.u32(static_cast<std::uint32_t>(sections_.size()));
    for (const auto& [name, payload] : sections_) {
        w.str(name);
        w.bytes(payload);
    }
    const std::vector<std::uint8_t> blob = w.take();
    os.write(reinterpret_cast<const char*>(blob.data()),
             static_cast<std::streamsize>(blob.size()));
    return static_cast<bool>(os);
}

// ----------------------------------------------------------------- Loader

bool Loader::load(std::istream& is, std::uint64_t expected_config_hash) {
    std::vector<std::uint8_t> blob{std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>()};
    rtlsim::SnapReader r(blob);
    char magic[8];
    for (char& c : magic) c = static_cast<char>(r.u8());
    if (!r.ok_so_far() || std::memcmp(magic, kMagic, sizeof magic) != 0) {
        error_ = "not a checkpoint (bad magic)";
        return false;
    }
    manifest_.format_version = r.u32();
    if (manifest_.format_version != kFormatVersion) {
        error_ = "unsupported format version " +
                 std::to_string(manifest_.format_version);
        return false;
    }
    manifest_.config_hash = r.u64();
    manifest_.sim_time = r.u64();
    if (expected_config_hash != 0 &&
        manifest_.config_hash != expected_config_hash) {
        error_ = "config hash mismatch (snapshot was taken from a "
                 "differently configured system)";
        return false;
    }
    const std::uint32_t n = r.u32();
    sections_.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name = r.str();
        std::vector<std::uint8_t> payload = r.bytes();
        if (!r.ok_so_far()) {
            error_ = "truncated section table";
            return false;
        }
        sections_.emplace_back(std::move(name), std::move(payload));
    }
    if (!r.ok()) {
        error_ = "trailing bytes after section table";
        return false;
    }
    return true;
}

const std::vector<std::uint8_t>* Loader::find(const std::string& name) const {
    for (const auto& [n, payload] : sections_) {
        if (n == name) return &payload;
    }
    return nullptr;
}

rtlsim::SnapReader Loader::reader(const std::string& name) {
    const std::vector<std::uint8_t>* payload = find(name);
    if (payload == nullptr) {
        if (error_.empty()) error_ = "missing section '" + name + "'";
        // A reader over the empty span fails on first read.
        return rtlsim::SnapReader({});
    }
    return rtlsim::SnapReader(*payload);
}

std::vector<Loader::SectionInfo> Loader::sections() const {
    std::vector<SectionInfo> out;
    out.reserve(sections_.size());
    for (const auto& [name, payload] : sections_) {
        out.push_back({name, payload.size()});
    }
    return out;
}

}  // namespace autovision::ckpt
