// E13 — checkpoint and warm-start cost model (src/ckpt).
//
// The warm-start argument: restoring a snapshot costs O(state) — parse a
// ~16-20 KB blob and re-arm closures — while re-simulating the prefix it
// replaces costs O(cycles). Both sides pay the same fresh elaboration
// (restore-by-reelaboration), so the benchmarks time only the part that
// differs: bm_ckpt_restore vs bm_ckpt_cold_prefix, with elaboration done
// under PauseTiming. bm_ckpt_save prices the producer side, and the blob
// size rides along as a counter so the gate also notices format bloat.
// Acceptance bar (EXPERIMENTS.md E13): restore >= 5x faster than
// re-simulating the prefix at the default save depth.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>

#include "sys/address_map.hpp"
#include "sys/system.hpp"
#include "video/synth.hpp"

namespace {

using autovision::sys::kFrameBuf;
using autovision::sys::OpticalFlowSystem;
using autovision::sys::SystemConfig;
namespace video = autovision::video;

SystemConfig bench_config() {
    SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.search = 2;
    cfg.simb_payload_words = 64;
    return cfg;
}

constexpr rtlsim::Time kQuantum = 32 * 10 * rtlsim::NS;
// Default save depth: past the first frame's census job and the first DPR
// session — the prefix a closure/diff job would actually fork over.
constexpr unsigned long long kPrefixCycles = 30000;

/// Boot, inject frame 0 and simulate to the save point — the prefix every
/// warm-started job skips.
void run_prefix(OpticalFlowSystem& sys, const SystemConfig& cfg) {
    sys.sch.run_until(8 * cfg.clk_period);
    video::SyntheticScene scene(
        video::SceneConfig::standard(cfg.width, cfg.height, 1));
    sys.video_in.send_frame(scene.frame(0), kFrameBuf);
    const rtlsim::Time t_end = kPrefixCycles * cfg.clk_period;
    while (sys.sch.now() < t_end && !sys.sch.stop_requested()) {
        sys.sch.run_until(sys.sch.now() + kQuantum);
    }
}

std::string prefix_blob(const SystemConfig& cfg) {
    OpticalFlowSystem sys(cfg);
    run_prefix(sys, cfg);
    std::ostringstream os;
    if (!sys.save(os)) return {};
    return os.str();
}

void bm_ckpt_save(benchmark::State& state) {
    const SystemConfig cfg = bench_config();
    OpticalFlowSystem sys(cfg);
    run_prefix(sys, cfg);
    std::size_t bytes = 0;
    for (auto _ : state) {
        std::ostringstream os;
        benchmark::DoNotOptimize(sys.save(os));
        bytes = os.str().size();
    }
    state.counters["blob_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(bm_ckpt_save)->Unit(benchmark::kMicrosecond);

void bm_ckpt_restore(benchmark::State& state) {
    const SystemConfig cfg = bench_config();
    const std::string blob = prefix_blob(cfg);
    if (blob.empty()) {
        state.SkipWithError("prefix snapshot failed");
        return;
    }
    for (auto _ : state) {
        state.PauseTiming();  // elaboration is common to both arms
        OpticalFlowSystem sys(cfg);
        std::istringstream is(blob);
        std::string err;
        state.ResumeTiming();
        if (!sys.restore(is, &err)) {
            state.SkipWithError(err.c_str());
            return;
        }
        benchmark::DoNotOptimize(sys.sch.now());
    }
}
BENCHMARK(bm_ckpt_restore)->Unit(benchmark::kMicrosecond);

void bm_ckpt_cold_prefix(benchmark::State& state) {
    const SystemConfig cfg = bench_config();
    for (auto _ : state) {
        state.PauseTiming();
        OpticalFlowSystem sys(cfg);
        state.ResumeTiming();
        run_prefix(sys, cfg);
        benchmark::DoNotOptimize(sys.sch.now());
    }
}
BENCHMARK(bm_ckpt_cold_prefix)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
