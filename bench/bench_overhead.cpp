// E3 — Section V: the simulation overhead of ReSim.
//
// The paper measured (with ModelSim's profiler) 1.4% of simulation time in
// the Engine_Wrapper multiplexer and 0.3% in the other simulation-only
// artifacts (Extended Portal, error injectors), 1.7% total. We reproduce
// the measurement with the kernel's per-process profiler: the region
// boundary's "mux" process is the wrapper multiplexer; the ICAP artifact's
// parse time (which includes the portal calls) is the artifact cost.
#include <chrono>
#include <cstdio>

#include "sys/address_map.hpp"
#include "sys/testbench.hpp"

using namespace autovision;
using namespace autovision::sys;

int main() {
    SystemConfig cfg;
    cfg.width = 160;
    cfg.height = 120;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 2;
    cfg.simb_payload_words = 2048;
    cfg.icap_clk_div = 2;
    cfg.profiling = true;

    Testbench tb(cfg);
    const RunResult r = tb.run(3);

    // Total profiled process time is the denominator: it approximates the
    // simulator's productive time the way a ModelSim profile does.
    std::chrono::nanoseconds total{0};
    std::chrono::nanoseconds mux{0};
    std::chrono::nanoseconds rsp{0};
    for (const rtlsim::Process* p : tb.sys.sch.processes()) {
        total += p->self_time();
        if (p->name().find("rr.mux") != std::string::npos) mux = p->self_time();
        if (p->name().find("rr.rsp") != std::string::npos) rsp = p->self_time();
    }
    const auto artifacts = tb.sys.icap_artifact->self_time();
    total += artifacts;

    const auto pct = [&](std::chrono::nanoseconds t) {
        return 100.0 * static_cast<double>(t.count()) /
               static_cast<double>(total.count());
    };

    std::printf("==== ReSim simulation overhead (paper: 1.4%% mux + 0.3%% "
                "artifacts = 1.7%%) ====\n");
    std::printf("(run verdict: %s; %llu mux invocations over %.2f sim-ms)\n\n",
                r.verdict().c_str(),
                static_cast<unsigned long long>(
                    tb.sys.rr.mux_process().invocations()),
                rtlsim::to_ms(r.sim_time));
    std::printf("  %-44s %8.3f %%\n",
                "Engine_Wrapper multiplexer (rr.mux process)", pct(mux));
    std::printf("  %-44s %8.3f %%\n",
                "boundary response broadcast (rr.rsp)", pct(rsp));
    std::printf("  %-44s %8.3f %%\n",
                "ICAP artifact + Extended Portal + injectors", pct(artifacts));
    std::printf("  %-44s %8.3f %%\n", "total simulation-only overhead",
                pct(mux) + pct(rsp) + pct(artifacts));
    std::printf("\npaper-shape checks:\n"
                "  total overhead is a few percent (< 10%%): %s\n"
                "  mux cost dominates artifact cost:        %s\n",
                pct(mux) + pct(rsp) + pct(artifacts) < 10.0 ? "yes" : "NO",
                mux > artifacts ? "yes" : "NO");

    // Top profiled processes, for context.
    std::printf("\ntop processes by self time:\n");
    std::vector<const rtlsim::Process*> procs(tb.sys.sch.processes().begin(),
                                              tb.sys.sch.processes().end());
    std::sort(procs.begin(), procs.end(), [](auto* a, auto* b) {
        return a->self_time() > b->self_time();
    });
    for (std::size_t i = 0; i < procs.size() && i < 8; ++i) {
        std::printf("  %-40s %8.3f %%  (%llu invocations)\n",
                    procs[i]->name().c_str(), pct(procs[i]->self_time()),
                    static_cast<unsigned long long>(procs[i]->invocations()));
    }
    return r.clean() ? 0 : 1;
}
