// E5 — Figure 5: development workload and bugs detected.
//
// Figure 5 tracks (a) lines of code under version control and (b) bugs
// detected, week by week, over the 11-week case study. Both series are
// regenerated from this repository:
//   * the LOC series is measured from the actual source tree, attributed to
//     the paper's milestones (weeks 1-3 assemble the design + baseline
//     testbench from legacy parts; week 4 adds the Virtual Multiplexing
//     hack; weeks 10-11 add the ReSim glue);
//   * the bugs series comes from actually running the fault-injection
//     harness with the simulation method in use during that phase — VM
//     finds the static bugs (and the bug.hw.2 false alarm) in weeks 4-9,
//     ReSim finds the software + DPR bugs in weeks 10-11.
//
// The paper's headline asymmetry is also printed directly: the VM hack
// costs ~350 LOC of design/software changes, the ReSim integration ~130 LOC
// of testbench-only glue.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sys/detection.hpp"

namespace fs = std::filesystem;
using namespace autovision::sys;

namespace {

std::size_t count_loc(const fs::path& dir) {
    std::size_t loc = 0;
    if (!fs::exists(dir)) return 0;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
        if (!e.is_regular_file()) continue;
        const auto ext = e.path().extension().string();
        if (ext != ".cpp" && ext != ".hpp" && ext != ".txt") continue;
        std::ifstream is(e.path());
        std::string line;
        while (std::getline(is, line)) ++loc;
    }
    return loc;
}

}  // namespace

int main() {
    const fs::path root = REPO_ROOT;
    const fs::path src = root / "src";

    // Component LOC, measured from the tree.
    std::map<std::string, std::size_t> loc;
    for (const char* c : {"kernel", "bus", "isa", "video", "engines", "recon",
                          "vip", "sys", "vm", "resim"}) {
        loc[c] = count_loc(src / c);
    }
    const std::size_t tests_loc = count_loc(root / "tests");
    const std::size_t baseline = loc["kernel"] + loc["bus"] + loc["isa"] +
                                 loc["video"] + loc["engines"] +
                                 loc["recon"] + loc["vip"] + loc["sys"];

    // User-side ReSim integration effort: the instantiation/staging lines
    // in the system top (the library itself is a reused IP, exactly as the
    // paper treats ReSim). Count the lines that mention the artifacts.
    std::size_t resim_glue = 0;
    {
        std::ifstream is(src / "sys" / "system.cpp");
        std::string line;
        while (std::getline(is, line)) {
            if (line.find("portal") != std::string::npos ||
                line.find("icap_artifact") != std::string::npos ||
                line.find("SimB") != std::string::npos ||
                line.find("simb") != std::string::npos) {
                ++resim_glue;
            }
        }
    }

    std::printf("==== Figure 5: development workload and bugs detected ====\n\n");
    std::printf("integration-effort asymmetry (paper: VM hack 250 HDL + 100 SW"
                " LOC; ReSim glue 80 Tcl + 50 HDL LOC):\n");
    std::printf("  Virtual Multiplexing layer (src/vm):   %5zu LOC"
                " (changes the *design*: wrapper + signature register +"
                " hacked driver)\n",
                loc["vm"]);
    std::printf("  ReSim glue in the system top:          %5zu LOC"
                " (testbench-only; the design is untouched)\n",
                resim_glue);
    std::printf("  ReSim library itself (src/resim):      %5zu LOC"
                " (reused IP, not per-project effort)\n\n",
                loc["resim"]);

    // Run the catalogue once; attribute detections to the milestone weeks.
    SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.search = 2;
    cfg.simb_payload_words = 100;
    const auto outcomes = run_catalog(cfg, 2);

    auto detected = [&](const char* id, bool by_resim) {
        for (const auto& o : outcomes) {
            if (std::string(fault_info(o.fault).id) == id) {
                return by_resim ? o.resim_detected() : o.vm_detected();
            }
        }
        return false;
    };

    struct Week {
        int week;
        const char* activity;
        std::size_t cumulative_loc;
        std::vector<std::string> bugs;
    };
    std::vector<Week> weeks;
    // Weeks 1-3: re-integration of legacy parts + baseline simulation
    // environment (the big initial LOC jump the paper describes).
    weeks.push_back({3, "design re-integration + baseline testbench",
                     baseline, {}});
    // Week 4: VM simulation starts.
    weeks.push_back({4, "Virtual Multiplexing simulation begins",
                     baseline + loc["vm"],
                     detected("bug.hw.2", false)
                         ? std::vector<std::string>{"bug.hw.2 (false alarm)"}
                         : std::vector<std::string>{}});
    // Weeks 5-9: static-design debugging under VM.
    std::vector<std::string> static_bugs;
    for (const char* id : {"bug.hw.1", "bug.hw.3", "bug.sw.2"}) {
        if (detected(id, false)) static_bugs.push_back(id);
    }
    weeks.push_back({6, "static bug fixing under VM",
                     baseline + loc["vm"] + tests_loc / 2,
                     {static_bugs.begin(),
                      static_bugs.begin() +
                          std::min<std::size_t>(2, static_bugs.size())}});
    weeks.push_back({9, "VM-based simulation passes",
                     baseline + loc["vm"] + tests_loc,
                     {static_bugs.begin() +
                          std::min<std::size_t>(2, static_bugs.size()),
                      static_bugs.end()}});
    // Weeks 10-11: ReSim-based DPR verification.
    std::vector<std::string> dpr_bugs;
    for (const char* id : {"bug.sw.1", "bug.dpr.1", "bug.dpr.2", "bug.dpr.3",
                           "bug.dpr.4", "bug.dpr.5", "bug.dpr.6b"}) {
        if (detected(id, true)) dpr_bugs.push_back(id);
    }
    weeks.push_back({10, "ReSim simulation of DPR",
                     baseline + loc["vm"] + tests_loc + loc["resim"],
                     {dpr_bugs.begin(),
                      dpr_bugs.begin() +
                          std::min<std::size_t>(4, dpr_bugs.size())}});
    weeks.push_back({11, "ReSim simulation passes",
                     baseline + loc["vm"] + tests_loc + loc["resim"],
                     {dpr_bugs.begin() +
                          std::min<std::size_t>(4, dpr_bugs.size()),
                      dpr_bugs.end()}});

    std::printf("%-5s %-46s %10s  %s\n", "week", "milestone",
                "cum. LOC", "bugs detected (replayed via the harness)");
    unsigned total_bugs = 0;
    for (const Week& w : weeks) {
        std::string bugs;
        for (const auto& b : w.bugs) {
            if (!bugs.empty()) bugs += ", ";
            bugs += b;
        }
        total_bugs += static_cast<unsigned>(w.bugs.size());
        std::printf("%-5d %-46s %10zu  %s\n", w.week, w.activity,
                    w.cumulative_loc, bugs.empty() ? "-" : bugs.c_str());
    }
    std::printf("\ntotal bugs replayed and detected: %u (paper: 3 static +"
                " 2 software + 6 DPR + 1 false alarm)\n",
                total_bugs);
    std::printf("paper-shape checks:\n"
                "  large initial LOC jump from legacy re-integration: %s\n"
                "  ReSim glue smaller than the VM hack:               %s\n"
                "  DPR bugs only appear after ReSim is adopted:       %s\n",
                baseline > loc["vm"] + loc["resim"] ? "yes" : "NO",
                resim_glue < loc["vm"] ? "yes" : "NO",
                dpr_bugs.size() >= 6 ? "yes" : "NO");
    return 0;
}
