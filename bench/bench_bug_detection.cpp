// E4 — Table III and the Section V-A bug counts.
//
// Runs the whole fault catalogue under both simulation methods and prints
// the detection matrix plus the per-method totals that the paper reports:
// Virtual Multiplexing finds the static bugs (and raises one false alarm);
// ReSim additionally finds every DPR bug and the DPR-driver software bugs.
//
// A third column reproduces the DESIGN.md ablation: ReSim with X injection
// disabled (a 2-state simulator's view) silently passes the isolation bug —
// the 4-state kernel is load-bearing.
//
// The batch itself runs on the campaign subsystem: one job per fault for
// the VM+ReSim pair, one per fault for the no-X ablation, fanned out over
// the worker pool (each job builds its own isolated Testbench).
#include <cstdio>
#include <map>
#include <string>

#include "campaign/campaigns.hpp"
#include "campaign/runner.hpp"
#include "sys/detection.hpp"

using namespace autovision;
using namespace autovision::campaign;

int main() {
    const sys::SystemConfig cfg = small_system_config();

    std::printf("==== Table III: detected bugs per simulation method ====\n");
    std::printf("(2 frames per run; a run 'detects' when any checker fires,"
                " data mismatches, or the watchdog trips)\n\n");

    std::vector<SimJob> jobs = fault_catalog_jobs(cfg, /*frames=*/2);
    auto nox = resim_no_x_jobs(cfg, /*frames=*/2);
    jobs.insert(jobs.end(), std::make_move_iterator(nox.begin()),
                std::make_move_iterator(nox.end()));

    CampaignRunner runner({});  // defaults: hardware concurrency, no watchdog
    const CampaignResult result = runner.run(jobs);

    std::map<std::string, const JobRecord*> by_name;
    for (const JobRecord& r : result.records) by_name[r.name] = &r;

    unsigned vm_static = 0;
    unsigned vm_false = 0;
    unsigned resim_sw = 0;
    unsigned resim_dpr = 0;
    unsigned mismatches = 0;

    std::printf("%-12s | %-10s | %-10s | %-22s | %s\n", "bug", "VM",
                "ReSim", "ReSim w/o X (2-state)", "description");
    std::printf("-------------+------------+------------+------------------"
                "------+------------\n");
    for (const sys::FaultInfo& fi : sys::kFaultCatalog) {
        const JobRecord* f = by_name[std::string("fault.") + fi.id];
        const JobRecord* nx = by_name[std::string("nox.") + fi.id];
        const bool vm_det = f->report.metrics.at("vm_detected") != 0.0;
        const bool rs_det = f->report.metrics.at("resim_detected") != 0.0;
        const bool nx_det = nx->report.metrics.at("nox_detected") != 0.0;
        std::printf("%-12s | %-10s | %-10s | %-22s | %s\n", fi.id,
                    vm_det ? "DETECTED" : "passed",
                    rs_det ? "DETECTED" : "passed",
                    nx_det ? "DETECTED" : "passed", fi.description);
        if (!f->passed()) {
            ++mismatches;
            std::printf("    !! expectation mismatch: %s\n",
                        f->report.verdict.c_str());
        }
        const std::string id = fi.id;
        if (vm_det) {
            if (fi.expected == sys::ExpectedDetection::kVmFalseAlarm) {
                ++vm_false;
            } else {
                ++vm_static;
            }
        }
        if (rs_det) {
            if (id.find("dpr") != std::string::npos) {
                ++resim_dpr;
            } else {
                ++resim_sw;
            }
        }
    }

    std::printf("\n==== Section V-A counts ====\n");
    std::printf("  VM-detected real bugs (static design):     %u  (paper: 3)\n",
                vm_static);
    std::printf("  VM false alarms (simulation artefact):     %u  (paper: 1, bug.hw.2)\n",
                vm_false);
    std::printf("  ReSim-detected software/static bugs:        %u\n", resim_sw);
    std::printf("  ReSim-detected DPR bugs:                    %u  (paper: 6)\n",
                resim_dpr);
    std::printf("  expectation mismatches:                     %u\n", mismatches);
    std::printf("\nablation: without X injection, bug.dpr.1 (isolation) "
                "escapes — see the third column.\n");
    std::printf("\ncampaign rollup:\n%s", result.summary.table().c_str());
    return mismatches == 0 ? 0 : 1;
}
