// E4 — Table III and the Section V-A bug counts.
//
// Runs the whole fault catalogue under both simulation methods and prints
// the detection matrix plus the per-method totals that the paper reports:
// Virtual Multiplexing finds the static bugs (and raises one false alarm);
// ReSim additionally finds every DPR bug and the DPR-driver software bugs.
//
// A third column reproduces the DESIGN.md ablation: ReSim with X injection
// disabled (a 2-state simulator's view) silently passes the isolation bug —
// the 4-state kernel is load-bearing.
#include <cstdio>

#include "recon/rr_boundary.hpp"
#include "sys/detection.hpp"

using namespace autovision;
using namespace autovision::sys;

namespace {

/// A do-nothing error source: models simulating DPR on a 2-state kernel
/// that cannot express erroneous outputs.
struct NoErrorInjector final : ErrorInjector {
    void inject(RrOutputs& o) override { o = RrOutputs::idle(); }
    const char* name() const override { return "no-x (2-state ablation)"; }
};

SystemConfig base_config() {
    SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 2;
    cfg.simb_payload_words = 100;
    return cfg;
}

/// ReSim run with the X injector replaced by the 2-state stand-in.
RunResult run_resim_no_x(Fault f) {
    SystemConfig cfg = config_for_fault(base_config(), f);
    cfg.method = FirmwareConfig::Method::kResim;
    Testbench tb(cfg);
    tb.sys.rr.set_error_injector(std::make_unique<NoErrorInjector>());
    return tb.run(2);
}

}  // namespace

int main() {
    const SystemConfig cfg = base_config();

    std::printf("==== Table III: detected bugs per simulation method ====\n");
    std::printf("(2 frames per run; a run 'detects' when any checker fires,"
                " data mismatches, or the watchdog trips)\n\n");

    const auto outcomes = run_catalog(cfg, /*frames=*/2);

    unsigned vm_static = 0;
    unsigned vm_false = 0;
    unsigned resim_sw = 0;
    unsigned resim_dpr = 0;
    unsigned mismatches = 0;

    std::printf("%-12s | %-10s | %-10s | %-22s | %s\n", "bug", "VM",
                "ReSim", "ReSim w/o X (2-state)", "description");
    std::printf("-------------+------------+------------+------------------"
                "------+------------\n");
    for (const DetectionOutcome& o : outcomes) {
        const FaultInfo& fi = fault_info(o.fault);
        const RunResult nx = run_resim_no_x(o.fault);
        std::printf("%-12s | %-10s | %-10s | %-22s | %s\n", fi.id,
                    o.vm_detected() ? "DETECTED" : "passed",
                    o.resim_detected() ? "DETECTED" : "passed",
                    !nx.clean() ? "DETECTED" : "passed", fi.description);
        if (!o.matches_expectation()) {
            ++mismatches;
            std::printf("    !! expectation mismatch: VM=%s  ReSim=%s\n",
                        o.vm.verdict().c_str(), o.resim.verdict().c_str());
        }
        const std::string id = fi.id;
        if (o.vm_detected()) {
            if (fi.expected == ExpectedDetection::kVmFalseAlarm) {
                ++vm_false;
            } else {
                ++vm_static;
            }
        }
        if (o.resim_detected()) {
            if (id.find("dpr") != std::string::npos) {
                ++resim_dpr;
            } else {
                ++resim_sw;
            }
        }
    }

    std::printf("\n==== Section V-A counts ====\n");
    std::printf("  VM-detected real bugs (static design):     %u  (paper: 3)\n",
                vm_static);
    std::printf("  VM false alarms (simulation artefact):     %u  (paper: 1, bug.hw.2)\n",
                vm_false);
    std::printf("  ReSim-detected software/static bugs:        %u\n", resim_sw);
    std::printf("  ReSim-detected DPR bugs:                    %u  (paper: 6)\n",
                resim_dpr);
    std::printf("  expectation mismatches:                     %u\n", mismatches);
    std::printf("\nablation: without X injection, bug.dpr.1 (isolation) "
                "escapes — see the third column.\n");
    return mismatches == 0 ? 0 : 1;
}
