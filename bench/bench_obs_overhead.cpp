// Observability overhead — the cost of the structured event recorder.
//
// The obs hot path is compiled into every emitting module (ICAP artifact,
// portal, RR boundary, DCR, INTC, testbench); the design contract is that a
// system built WITHOUT tracing pays only a null-pointer check per event
// site, i.e. the disabled path is within measurement noise of the PR-2
// frame-simulation baseline. This bench pins that contract:
//   * bm_frame_obs_off — the default small frame run, obs not wired
//     (identical workload to bench_frame_sim's bm_frame_sim_small);
//   * bm_frame_obs_on  — the same run with the recorder attached and
//     enabled, bounding the enabled-path cost as well.
// Both numbers feed the bench-regression gate (tools/bench_compare.py vs
// bench/baseline.json), so a change that makes tracing expensive — or,
// worse, makes *disabled* tracing expensive — fails CI.
//
// Two modes, like every bench here: no arguments prints a report; any
// --benchmark_* flag runs as a Google Benchmark binary.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "obs/recorder.hpp"
#include "sys/testbench.hpp"

using namespace autovision;
using namespace autovision::sys;

namespace {

SystemConfig small_config(bool trace) {
    SystemConfig cfg;  // defaults: 64x48 ReSim
    cfg.trace_events = trace;
    return cfg;
}

void run_one(benchmark::State& state, bool trace) {
    const SystemConfig cfg = small_config(trace);
    for (auto _ : state) {
        Testbench tb(cfg);
        const RunResult r = tb.run(1);
        if (!r.clean()) state.SkipWithError("frame run was not clean");
        if (trace && r.metrics.swaps == 0) {
            state.SkipWithError("traced run recorded no swaps");
        }
        benchmark::DoNotOptimize(r.stats.delta_cycles);
    }
    state.SetItemsProcessed(state.iterations());
}

void bm_frame_obs_off(benchmark::State& state) { run_one(state, false); }
BENCHMARK(bm_frame_obs_off)->Unit(benchmark::kMillisecond);

void bm_frame_obs_on(benchmark::State& state) { run_one(state, true); }
BENCHMARK(bm_frame_obs_on)->Unit(benchmark::kMillisecond);

/// Microbenchmark of the record() hot path itself, both gates.
void bm_record_disabled(benchmark::State& state) {
    obs::EventRecorder rec(1u << 12);  // enabled_ stays false
    std::uint64_t t = 0;
    for (auto _ : state) {
        rec.record(++t, obs::EventKind::kSwap, obs::Source::kPortal, 1, 2);
        benchmark::DoNotOptimize(rec.total());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_record_disabled);

void bm_record_enabled(benchmark::State& state) {
    obs::EventRecorder rec(1u << 12);
    rec.set_enabled(true);
    std::uint64_t t = 0;
    for (auto _ : state) {
        rec.record(++t, obs::EventKind::kSwap, obs::Source::kPortal, 1, 2);
        benchmark::DoNotOptimize(rec.total());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_record_enabled);

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
            benchmark::Initialize(&argc, argv);
            benchmark::RunSpecifiedBenchmarks();
            benchmark::Shutdown();
            return 0;
        }
    }

    // Report mode: run the frame once each way and print the delta.
    const auto frame_wall = [](bool trace) {
        Testbench tb(small_config(trace));
        const RunResult r = tb.run(1);
        return r.clean() ? static_cast<double>(r.wall_time.count()) / 1e6
                         : -1.0;
    };
    // Warm-up run so neither arm pays first-touch costs.
    (void)frame_wall(false);
    const double off_ms = frame_wall(false);
    const double on_ms = frame_wall(true);

    Testbench tb(small_config(true));
    const RunResult r = tb.run(1);

    std::printf("==== observability overhead (64x48 frame, ReSim) ====\n");
    std::printf("  tracing off: %8.2f ms/frame\n", off_ms);
    std::printf("  tracing on:  %8.2f ms/frame  (%+.1f %%)\n", on_ms,
                off_ms > 0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0);
    std::printf("  events recorded: %llu (%llu dropped)\n",
                static_cast<unsigned long long>(r.metrics.events),
                static_cast<unsigned long long>(r.metrics.events_dropped));
    std::printf("  swaps: %llu, swap latency mean %.1f cyc, "
                "x-window mean %.1f cyc\n",
                static_cast<unsigned long long>(r.metrics.swaps),
                r.metrics.swap_latency_cycles.mean(),
                r.metrics.x_window_cycles.mean());
    return r.clean() && off_ms > 0 && on_ms > 0 ? 0 : 1;
}
