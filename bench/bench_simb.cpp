// E1 — Table I: the SimB format.
//
// Prints the paper's example SimB (configuring module 0x02 into RR 0x01
// with a 4-word payload) decoded field by field, verifies that our builder
// regenerates it bit-exactly, then benchmarks SimB construction and ICAP
// artifact parsing across payload lengths (the designer-controlled knob:
// ~100 words for debug turnaround up to the 129K words of a real AutoVision
// bitstream).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "kernel/kernel.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"

namespace {

using namespace autovision;
using namespace autovision::resim;

void print_table1() {
    std::printf("==== Table I: An example of SimB for configuring a new module ====\n");
    const auto words = SimB::table1_example();
    std::printf("%s", SimB::describe(words).c_str());

    // Cross-check: our builder with the published parameters regenerates
    // the framing exactly (the payload seed reproduces word 0).
    SimB b;
    b.rr_id = 0x01;
    b.module_id = 0x02;
    b.payload_words = 4;
    b.seed = 0x5650EEA7;
    const auto built = b.build();
    bool framing_ok = built.size() == words.size();
    for (std::size_t i = 0; i < 8 && framing_ok; ++i) {
        framing_ok = built[i] == words[i];
    }
    framing_ok = framing_ok && built[8] == words[8] &&
                 built[built.size() - 1] == words.back() &&
                 built[built.size() - 2] == words[words.size() - 2];
    std::printf("builder regenerates Table I framing: %s\n\n",
                framing_ok ? "yes" : "NO — MISMATCH");
}

void bm_simb_build(benchmark::State& state) {
    SimB b;
    b.payload_words = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        auto w = b.build();
        benchmark::DoNotOptimize(w.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            SimB::length_for_payload(b.payload_words));
}
BENCHMARK(bm_simb_build)->Arg(4)->Arg(100)->Arg(4096)->Arg(129 * 1024);

void bm_icap_parse(benchmark::State& state) {
    SimB b;
    b.payload_words = static_cast<std::uint32_t>(state.range(0));
    const auto words = b.build();
    rtlsim::Scheduler sch;
    ExtendedPortal portal(sch, "portal");
    IcapArtifact icap(sch, "icap", portal);
    for (auto _ : state) {
        for (std::uint32_t w : words) icap.icap_write(rtlsim::Word{w});
    }
    state.SetItemsProcessed(state.iterations() * words.size());
}
BENCHMARK(bm_icap_parse)->Arg(4)->Arg(100)->Arg(4096)->Arg(129 * 1024);

}  // namespace

int main(int argc, char** argv) {
    print_table1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
