// E7 — Section IV-B: SimB length is a designer-controlled knob.
//
// "The designer can use a short (~100 words) SimB to reduce the
//  simulation-debug turnaround time, can adjust the length to test various
//  scenarios of the bitstream transfer mechanism (e.g., FIFO
//  overflow/underflow), and can set the length to be the same as a real
//  bitstream to achieve the maximum level of accuracy."
//
// The sweep measures, for SimB payloads from 4 words to the 129K words of a
// real AutoVision bitstream: the simulated reconfiguration delay (grows
// linearly with length), the host wall time, and transfer integrity. A
// second sweep crosses FIFO depth with the configuration-clock divider to
// exhibit the overflow/underflow corners. Both sweeps are campaign batches
// on the worker pool; the table is printed from the job records.
#include <cstdio>
#include <vector>

#include "campaign/campaigns.hpp"
#include "campaign/runner.hpp"

using namespace autovision::campaign;

int main() {
    const std::vector<std::uint32_t> payloads{4u,     100u,   1024u,
                                              4096u,  32768u, 129u * 1024u};
    CampaignRunner runner({});  // defaults: hardware concurrency, no watchdog

    std::printf("==== SimB length sweep (reconfiguration delay scales with"
                " bitstream length) ====\n");
    const CampaignResult sweep = runner.run(simb_sweep_jobs(payloads));
    std::printf("%-14s | %-12s | %16s | %12s | %s\n", "payload (words)",
                "total words", "sim DPR time (ms)", "wall (ms)", "swap");
    double prev_ms = 0;
    bool linear = true;
    for (const JobRecord& r : sweep.records) {
        const double ms = r.report.metrics.at("dpr_ms");
        std::printf("%-14.0f | %-12.0f | %16.4f | %12.0f | %s\n",
                    r.report.metrics.at("payload_words"),
                    r.report.metrics.at("total_words"), ms,
                    static_cast<double>(r.wall.count()) / 1e6,
                    r.report.metrics.at("swap") != 0.0 ? "yes" : "NO");
        if (prev_ms > 0 && ms < prev_ms) linear = false;
        prev_ms = ms;
    }
    std::printf("paper-shape check: DPR simulated time grows monotonically"
                " with SimB length: %s\n", linear ? "yes" : "NO");
    std::printf("(a 4K-word SimB — the paper's AutoVision choice — keeps DPR"
                " well under 0.1 ms)\n\n");

    std::printf("==== FIFO depth x configuration clock x bus corner sweep"
                " ====\n");
    const CampaignResult corners = runner.run(simb_corner_jobs());
    std::printf("%-6s | %-5s | %-12s | %-14s | %6s | %9s | %s\n", "fifo",
                "div", "IP mode", "bus", "swap", "overflows", "note");
    bool corners_ok = true;
    for (const JobRecord& r : corners.records) {
        std::printf("%-6s | %-5s | %-12s | %-14s | %6s | %9.0f | %s\n",
                    r.params.at("fifo").c_str(), r.params.at("clk_div").c_str(),
                    r.params.at("ip_mode").c_str(), r.params.at("bus").c_str(),
                    r.report.metrics.at("swap") != 0.0 ? "yes" : "NO",
                    r.report.metrics.at("overflows"),
                    r.params.at("note").c_str());
        corners_ok = corners_ok && r.passed();
    }
    std::printf("\n(the last row is the bug.dpr.4 scenario: the transfer"
                " silently truncates and the module is never swapped)\n");
    std::printf("corner expectations hold: %s\n", corners_ok ? "yes" : "NO");
    return (linear && corners_ok && sweep.summary.all_passed()) ? 0 : 1;
}
