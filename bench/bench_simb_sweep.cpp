// E7 — Section IV-B: SimB length is a designer-controlled knob.
//
// "The designer can use a short (~100 words) SimB to reduce the
//  simulation-debug turnaround time, can adjust the length to test various
//  scenarios of the bitstream transfer mechanism (e.g., FIFO
//  overflow/underflow), and can set the length to be the same as a real
//  bitstream to achieve the maximum level of accuracy."
//
// The sweep measures, for SimB payloads from 4 words to the 129K words of a
// real AutoVision bitstream: the simulated reconfiguration delay (grows
// linearly with length), the host wall time, and transfer integrity. A
// second sweep crosses FIFO depth with the configuration-clock divider to
// exhibit the overflow/underflow corners.
#include <chrono>
#include <cstdio>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/icap_ctrl.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"

using namespace autovision;
using namespace rtlsim;

namespace {

constexpr Time kClk = 10 * NS;

/// Minimal DPR testbench: IcapCTRL + ICAP artifact + portal + one RR with
/// the two engines; no CPU (the bench drives the DCR registers directly).
struct DprTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem{Memory::Config{0, 64u << 20, 4}};
    Plb plb;
    Signal<Logic> done_line{sch, "done_line", Logic::L0};
    EngineRegs cie_regs{sch, "cie_regs", clk.out, 0x60};
    EngineRegs me_regs{sch, "me_regs", clk.out, 0x68};
    autovision::CensusEngine cie{sch, "cie", clk.out, rst.out, cie_regs};
    autovision::MatchingEngine me{sch, "me", clk.out, rst.out, me_regs};
    RrBoundary rr{sch, "rr", plb.master(1), done_line};
    resim::ExtendedPortal portal{sch, "portal"};
    resim::IcapArtifact icap{sch, "icap", portal};
    IcapCtrl ctrl;

    explicit DprTb(IcapCtrl::Config cfg, unsigned bus_max_burst = 16)
        : plb(sch, "plb", clk.out, rst.out,
              Plb::Config{2, bus_max_burst, 1u << 30}),
          ctrl(sch, "icapctrl", clk.out, rst.out, plb.master(0), icap, cfg) {
        plb.attach_slave(mem);
        rr.add_module(cie);
        rr.add_module(me);
        portal.map_module(1, 1, rr, 0);
        portal.map_module(1, 2, rr, 1);
        portal.initial_configuration(1, 1);
    }

    /// One full reconfiguration to the ME; returns simulated duration, or 0
    /// on failure (no swap).
    Time reconfigure(std::uint32_t payload_words) {
        resim::SimB b;
        b.rr_id = 1;
        b.module_id = 2;
        b.payload_words = payload_words;
        const auto words = b.build();
        mem.load_words(0x100000, words);
        sch.run_until(sch.now() + 10 * kClk);
        const Time t0 = sch.now();
        ctrl.dcr_write(0x52, Word{0x100000});
        ctrl.dcr_write(0x53, Word{static_cast<std::uint32_t>(words.size() * 4)});
        ctrl.dcr_write(0x50, Word{1});
        const std::uint64_t swaps0 = portal.reconfigurations();
        // Generous budget: fetch + drain.
        const Time budget =
            (static_cast<Time>(words.size()) * (ctrl.config().clk_div + 4) +
             10000) * kClk;
        while (sch.now() - t0 < budget) {
            sch.run_until(sch.now() + 256 * kClk);
            if (!ctrl.busy() && portal.reconfigurations() > swaps0) break;
        }
        if (portal.reconfigurations() == swaps0) return 0;
        return sch.now() - t0;
    }
};

}  // namespace

int main() {
    std::printf("==== SimB length sweep (reconfiguration delay scales with"
                " bitstream length) ====\n");
    std::printf("%-14s | %-12s | %16s | %12s | %s\n", "payload (words)",
                "total words", "sim DPR time (ms)", "wall (ms)", "swap");
    double prev_ms = 0;
    bool linear = true;
    for (std::uint32_t payload :
         {4u, 100u, 1024u, 4096u, 32768u, 129u * 1024u}) {
        IcapCtrl::Config cfg;
        cfg.clk_div = 1;
        cfg.fifo_depth = 32;
        DprTb tb(cfg);
        const auto w0 = std::chrono::steady_clock::now();
        const Time dpr = tb.reconfigure(payload);
        const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - w0);
        const double ms = to_ms(dpr);
        std::printf("%-14u | %-12u | %16.4f | %12lld | %s\n", payload,
                    resim::SimB::length_for_payload(payload), ms,
                    static_cast<long long>(wall.count()),
                    dpr != 0 ? "yes" : "NO");
        if (prev_ms > 0 && ms < prev_ms) linear = false;
        prev_ms = ms;
    }
    std::printf("paper-shape check: DPR simulated time grows monotonically"
                " with SimB length: %s\n", linear ? "yes" : "NO");
    std::printf("(a 4K-word SimB — the paper's AutoVision choice — keeps DPR"
                " well under 0.1 ms)\n\n");

    std::printf("==== FIFO depth x configuration clock x bus corner sweep"
                " ====\n");
    std::printf("%-6s | %-5s | %-12s | %-14s | %6s | %9s | %s\n", "fifo",
                "div", "IP mode", "bus", "swap", "overflows", "note");
    struct Corner {
        unsigned fifo;
        unsigned div;
        bool p2p;
        unsigned bus_max;  // 0 = unbounded point-to-point link
        const char* note;
    };
    const Corner corners[] = {
        {32, 1, false, 16, "shared, balanced (reference)"},
        {32, 4, false, 16, "shared, slow config clock (backpressure holds)"},
        {8, 1, false, 16, "shared, shallow FIFO (burst-sized backpressure)"},
        {8, 8, false, 16, "shared, shallow + very slow drain"},
        {32, 1, true, 0, "original design: p2p IP on its dedicated link"},
        {8, 4, true, 0, "p2p link but slow drain: FIFO overflow corner"},
        {32, 1, true, 16, "bug.dpr.4: p2p IP on the shared bus (truncates)"},
    };
    for (const Corner& c : corners) {
        IcapCtrl::Config cfg;
        cfg.fifo_depth = c.fifo;
        cfg.clk_div = c.div;
        cfg.p2p_mode = c.p2p;
        cfg.burst_words = std::min(16u, c.fifo);
        DprTb tb(cfg, c.bus_max);
        const Time dpr = tb.reconfigure(1024);
        std::printf("%-6u | %-5u | %-12s | %-14s | %6s | %9llu | %s\n",
                    c.fifo, c.div, c.p2p ? "p2p" : "shared",
                    c.bus_max == 0 ? "dedicated" : "shared 16-beat",
                    dpr != 0 ? "yes" : "NO",
                    static_cast<unsigned long long>(tb.ctrl.fifo_overflows()),
                    c.note);
    }
    std::printf("\n(the last row is the bug.dpr.4 scenario: the transfer"
                " silently truncates and the module is never swapped)\n");
    return 0;
}
