// E6b — executing the on-chip debugging comparison (Sections II & V-B).
//
// The paper argues that on-chip debugging of a DPR bug is slow because (a)
// each probe-set change costs a full implementation + bitstream generation
// (52 minutes measured for AutoVision), and (b) the ChipScope window shows
// few signals for a short time, so several iterations are needed to corner
// a bug. Instead of citing that, this bench *replays* the loop: the buggy
// design (bug.dpr.6b) runs with a ChipScope-style ILA attached, each
// iteration choosing a new probe set — paying the modelled 52-minute
// re-implementation — triggering, and drawing the conclusion a designer
// would from the captured window, until the bug is cornered. The same bug
// falls out of one full-visibility simulation run for comparison.
#include <cstdio>

#include "sys/address_map.hpp"
#include "sys/detection.hpp"
#include "vip/ila.hpp"

using namespace autovision;
using namespace autovision::sys;

namespace {

SystemConfig buggy_config() {
    SystemConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.search = 2;
    cfg.simb_payload_words = 400;  // a realistically long transfer
    cfg = config_for_fault(cfg, Fault::kDpr6bShortWait);
    cfg.method = FirmwareConfig::Method::kResim;
    return cfg;
}

/// Did any sample in the post-trigger region show `value` on probe `idx`?
bool seen_after_trigger(const vip::Ila& ila, std::size_t idx,
                        const std::string& value) {
    const auto win = ila.window();
    const int ti = ila.trigger_index();
    if (ti < 0) return false;
    for (std::size_t i = static_cast<std::size_t>(ti); i < win.size(); ++i) {
        if (win[i].values[idx] == value) return true;
    }
    return false;
}

}  // namespace

int main() {
    constexpr double kImplMinutes = 52.0;
    double onchip_minutes = 0.0;
    int iterations = 0;

    std::printf("==== On-chip debugging of bug.dpr.6b, replayed with a"
                " ChipScope-style ILA ====\n");
    std::printf("(probe core: 4 probes, 512-sample window; every probe-set"
                " change costs one\n implementation + bitgen = %.0f min, the"
                " paper's measured figure)\n\n",
                kImplMinutes);

    // ---- Iteration 1: "the system hangs — is the ME ever started?" ------
    {
        ++iterations;
        onchip_minutes += kImplMinutes;  // wire probes, re-implement
        Testbench tb(buggy_config());
        vip::Ila ila(tb.sys.sch, "ila", tb.sys.clk.out,
                     vip::Ila::Config{4, 512, 400});
        ila.probe(tb.sys.me_regs.start_pulse, "me_start");
        ila.probe(tb.sys.rr_done, "engine_done");
        ila.probe(tb.sys.rr.stream_tap, "rr_stream");
        ila.arm([](const std::vector<std::string>& v) { return v[0] == "1"; });
        (void)tb.run(2);

        std::printf("iteration %d: probes {me_start, engine_done,"
                    " rr_stream}, trigger on me_start\n",
                    iterations);
        if (ila.capture_complete()) {
            const bool done_after =
                seen_after_trigger(ila, 1, "1");
            std::printf("  window: start pulse seen; engine done within the"
                        " window afterwards: %s\n",
                        done_after ? "yes" : "NO");
            std::printf("  conclusion: the ME is started but never raises"
                        " done — engine dead or start lost?\n");
        } else {
            std::printf("  trigger never fired — wrong probe guess\n");
        }
    }

    // ---- Iteration 2: "what is the reconfiguration doing at that time?" --
    // The 512-sample window of iteration 1 could not even contain the
    // bitstream transfer; this iteration also re-sizes the capture BRAM to
    // 4K samples — in real life yet another reason the implementation is
    // re-run.
    bool cornered = false;
    {
        ++iterations;
        onchip_minutes += kImplMinutes;  // new probe set, re-implement again
        Testbench tb(buggy_config());
        vip::Ila ila(tb.sys.sch, "ila", tb.sys.clk.out,
                     vip::Ila::Config{4, 4096, 2048});
        ila.probe(tb.sys.me_regs.start_pulse, "me_start");
        ila.probe(tb.sys.icapctrl.done_irq, "icap_done");
        ila.probe(tb.sys.iso.isolate, "isolate");
        ila.arm([](const std::vector<std::string>& v) { return v[0] == "1"; });
        (void)tb.run(2);

        std::printf("\niteration %d: probes {me_start, icap_done, isolate},"
                    " trigger on me_start\n",
                    iterations);
        if (ila.capture_complete()) {
            const auto win = ila.window();
            const int ti = ila.trigger_index();
            bool done_before = false;
            for (int i = 0; i <= ti; ++i) {
                if (win[static_cast<std::size_t>(i)].values[1] == "1") {
                    done_before = true;
                }
            }
            const bool done_after = seen_after_trigger(ila, 1, "1");
            std::printf("  window: bitstream-transfer done before the start"
                        " pulse: %s; after it: %s\n",
                        done_before ? "yes" : "NO",
                        done_after ? "yes" : "no");
            if (!done_before && done_after) {
                cornered = true;
                std::printf("  conclusion: the engine is reset/started"
                            " BEFORE the transfer completes —\n"
                            "  bug.dpr.6b cornered after %d on-chip"
                            " iterations (~%.0f min of implementation"
                            " alone).\n",
                            iterations, onchip_minutes);
            }
        }
    }

    // ---- The simulation side: one run, full visibility -------------------
    Testbench sim_tb(buggy_config());
    const RunResult sim = sim_tb.run(2);
    const double sim_s = static_cast<double>(sim.wall_time.count()) / 1e9;
    std::printf("\nsimulation: one ReSim run, %.2f s wall, verdict: %s\n",
                sim_s, sim.verdict().c_str());
    std::printf("  first checker diagnostic: %s\n",
                sim.diagnostics.empty()
                    ? "(none)"
                    : (sim.diagnostics.front().source + ": " +
                       sim.diagnostics.front().message)
                          .c_str());

    std::printf("\n==== Comparison ====\n");
    std::printf("  on-chip: %d iterations x %.0f min implementation = %.0f"
                " min (plus lab time)\n",
                iterations, kImplMinutes, onchip_minutes);
    std::printf("  simulation: %.2f s, bug flagged automatically\n", sim_s);
    std::printf("  paper-shape checks: bug cornered on-chip only after"
                " multiple iterations: %s;\n"
                "  simulation detects it in one run: %s\n",
                cornered && iterations >= 2 ? "yes" : "NO",
                !sim.clean() ? "yes" : "NO");
    return (cornered && !sim.clean()) ? 0 : 1;
}
