// E15 — ISS execution rate: interpreter vs basic-block decode cache.
//
// Measures instructions per host second for the three CPU execution modes
// on a bus-free compute kernel (the workload shape where the ISS hot path
// dominates — every data access would serialize on the cycle-accurate PLB
// in all three modes and mask the decode-path difference):
//   * bm_iss_interp        — the retained reference interpreter
//                            (fetch + decode + execute every posedge);
//   * bm_iss_cached_cold   — the decode-cache engine, fresh cache every
//                            iteration (decode cost included);
//   * bm_iss_cached_warm   — the decode-cache engine with sleep windows
//                            enabled: long bus-free stretches execute as
//                            batched micro-op runs under a parked clock.
// The tentpole acceptance bar is warm >= 3x interp in insns/sec; CI gates
// the committed baseline rows through tools/bench_report.py.
#include <benchmark/benchmark.h>

#include "bus/dcr.hpp"
#include "bus/intc.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "isa/assembler.hpp"
#include "isa/cpu.hpp"
#include "kernel/kernel.hpp"

namespace {

using namespace autovision;
using namespace autovision::isa;
using rtlsim::NS;

constexpr rtlsim::Time kClk = 10 * NS;

/// ~850k dynamic instructions of register-only compute: a doubly nested
/// loop over adds, shifts, rotates and compares. No loads/stores inside the
/// loop, so the warm engine can open full-length sleep windows. Long enough
/// that execution dominates testbench elaboration (the 8 MiB four-state
/// memory image alone costs milliseconds to construct in a debug build).
const char* kWorkload = R"(
    .org 0x100
    _start: li r10, 0
            li r4, 512
            mtctr r4
    outer:  li r5, 0
            li r6, 200
    inner:  addi r5, r5, 3
            xor r7, r5, r6
            rlwinm r8, r7, 3, 0, 28
            add r9, r8, r5
            subf r9, r6, r9
            addic r6, r6, -1
            cmpwi r6, 0
            bne inner
            add r10, r10, r5
            bdnz outer
    done:   b done
)";

/// Minimal CPU-only testbench (clock/reset, PLB + memory, DCR + INTC).
struct IssTb {
    rtlsim::Scheduler sch;
    rtlsim::Clock clk{sch, "clk", kClk};
    rtlsim::ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 5000}};
    DcrChain dcr{sch, "dcr", clk.out, rst.out};
    Intc intc{sch, "intc", clk.out, rst.out, 0x40};
    PpcCpu cpu;

    IssTb(const Program& prog, PpcCpu::Config::Engine engine, bool sleep)
        : cpu(sch, "cpu", clk.out, rst.out, plb.master(0), dcr, mem, intc.irq,
              PpcCpu::Config{prog.entry(), 5, engine}) {
        plb.attach_slave(mem);
        dcr.attach(intc);
        mem.load_words(prog.origin, prog.words);
        if (sleep) cpu.enable_sleep(clk);
    }

    std::uint64_t run_to_halt() {
        while (!cpu.halted() && !sch.stop_requested()) {
            sch.run_until(sch.now() + 4096 * kClk);
        }
        cpu.wake_now();
        return cpu.instructions();
    }
};

void run_engine(benchmark::State& state, PpcCpu::Config::Engine engine,
                bool sleep) {
    const Program prog = assemble(kWorkload);
    std::uint64_t insns = 0;
    for (auto _ : state) {
        IssTb tb(prog, engine, sleep);
        insns = tb.run_to_halt();
        if (tb.sch.stop_requested()) state.SkipWithError("run was not clean");
        benchmark::DoNotOptimize(insns);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(insns));
    state.counters["insns"] = static_cast<double>(insns);
}

void bm_iss_interp(benchmark::State& state) {
    run_engine(state, PpcCpu::Config::Engine::kInterp, false);
}
BENCHMARK(bm_iss_interp)->Unit(benchmark::kMillisecond);

void bm_iss_cached_cold(benchmark::State& state) {
    run_engine(state, PpcCpu::Config::Engine::kCached, false);
}
BENCHMARK(bm_iss_cached_cold)->Unit(benchmark::kMillisecond);

void bm_iss_cached_warm(benchmark::State& state) {
    run_engine(state, PpcCpu::Config::Engine::kCached, true);
}
BENCHMARK(bm_iss_cached_warm)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
