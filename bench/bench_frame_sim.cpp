// E2 — Table II: time to simulate one video frame.
//
// Runs the full demonstrator (ReSim method) at paper-scale parameters and
// reports, per pipeline stage, the simulated time and the host elapsed
// time, in the same rows as Table II. Absolute numbers differ from the
// paper (our kernel and host are not ModelSim 6.5g on a 2.53 GHz Core 2);
// the qualitative shape is what reproduces:
//   * the CIE needs less simulated time than the ME but *more* elapsed
//     time per simulated millisecond (more signal activity);
//   * DPR simulated time is negligible (short SimBs);
//   * the CPU/ISR stage is a small serial residue because drawing overlaps
//     the engines in the pipelined flow.
// Two modes:
//   * no arguments — print the Table II report below (the default, so
//     `for b in build/bench/*; do $b; done` regenerates the evaluation);
//   * any --benchmark_* flag — run as a Google Benchmark binary exposing
//     `bm_frame_sim` (whole-frame wall time at Table II parameters), the
//     number tools/bench_report.py records and CI gates on.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sys/address_map.hpp"
#include "sys/testbench.hpp"

using namespace autovision;
using namespace autovision::sys;

namespace {

SystemConfig table2_config() {
    SystemConfig cfg;
    cfg.width = 320;
    cfg.height = 200;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 2;
    // A short SimB, as the paper recommends for debug turnaround (their 4K
    // AutoVision SimB also kept DPR under 0.1 ms; our PLB fetch adds ~1.6
    // cycles/word of burst overhead, so 2K words lands in the same regime).
    cfg.simb_payload_words = 2048;
    cfg.icap_clk_div = 1;
    return cfg;
}

/// One full video frame through the demonstrator (fresh testbench per
/// iteration, so elaboration cost is included the way Table II counts it).
void bm_frame_sim(benchmark::State& state) {
    const SystemConfig cfg = table2_config();
    for (auto _ : state) {
        Testbench tb(cfg);
        const RunResult r = tb.run(1);
        if (!r.clean()) state.SkipWithError("frame run was not clean");
        benchmark::DoNotOptimize(r.stats.delta_cycles);
        state.counters["sim_ms"] = rtlsim::to_ms(r.sim_time);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_frame_sim)->Unit(benchmark::kMillisecond);

/// The default-geometry frame (64x48) — the configuration the
/// kernel-invariance goldens pin, for a quick CI smoke signal.
void bm_frame_sim_small(benchmark::State& state) {
    SystemConfig cfg;  // defaults: 64x48 ReSim
    for (auto _ : state) {
        Testbench tb(cfg);
        const RunResult r = tb.run(1);
        if (!r.clean()) state.SkipWithError("frame run was not clean");
        benchmark::DoNotOptimize(r.stats.delta_cycles);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_frame_sim_small)->Unit(benchmark::kMillisecond);

/// The small frame at an explicit event-lane count — the scaling row for
/// the parallel evaluate phase (DESIGN.md §13). lanes=1 is the sequential
/// kernel path; on a single-core host the extra lanes measure pure
/// coordination overhead (the honest number recorded in BENCH_kernel.json),
/// while on multi-core runners wide deltas spread across the pool.
void bm_frame_sim_lanes(benchmark::State& state) {
    SystemConfig cfg;  // 64x48, the invariance geometry
    cfg.lanes = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Testbench tb(cfg);
        const RunResult r = tb.run(1);
        if (!r.clean()) state.SkipWithError("frame run was not clean");
        benchmark::DoNotOptimize(r.stats.delta_cycles);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_frame_sim_lanes)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void report(const char* name, rtlsim::Time sim, std::chrono::nanoseconds wall) {
    const double sim_ms = rtlsim::to_ms(sim);
    const double wall_s = static_cast<double>(wall.count()) / 1e9;
    std::printf("  %-34s %10.3f %14.3f %18s\n", name, sim_ms, wall_s,
                sim_ms > 0 ? (std::to_string(wall_s / sim_ms).substr(0, 6) +
                              " s per sim-ms")
                                 .c_str()
                           : "-");
}

}  // namespace

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark", 11) == 0) {
            benchmark::Initialize(&argc, argv);
            benchmark::RunSpecifiedBenchmarks();
            benchmark::Shutdown();
            return 0;
        }
    }

    SystemConfig cfg = table2_config();
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0) {
            cfg.trace_events = true;
        } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
            cfg.trace_events = true;
            cfg.trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
            cfg.lanes = static_cast<unsigned>(std::atoi(argv[++i]));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace] [--trace-out FILE.json]"
                         " [--lanes N] | --benchmark_*\n",
                         argv[0]);
            return 2;
        }
    }
    constexpr unsigned kFrames = 3;
    Testbench tb(cfg);
    const RunResult r = tb.run(kFrames);

    std::printf("==== Table II: time to simulate one video frame ====\n");
    std::printf("(full system, ReSim method, %ux%u @ 100 MHz, %u frames"
                " averaged; run verdict: %s)\n\n",
                cfg.width, cfg.height, kFrames, r.verdict().c_str());
    std::printf("  %-34s %10s %14s\n", "", "Simulated", "Elapsed");
    std::printf("  %-34s %10s %14s\n", "Stage (per frame)", "Time (ms)",
                "Time (s)");

    const auto per_frame = [&](rtlsim::Time t) { return t / kFrames; };
    const auto per_frame_w = [&](std::chrono::nanoseconds t) {
        return std::chrono::nanoseconds{t.count() / kFrames};
    };
    report("CensusImg Engine", per_frame(r.stages.cie_sim),
           per_frame_w(r.stages.cie_wall));
    report("Matching Engine", per_frame(r.stages.me_sim),
           per_frame_w(r.stages.me_wall));
    report("PowerPC Interrupt Handler", per_frame(r.stages.cpu_sim),
           per_frame_w(r.stages.cpu_wall));
    report("Dynamic Partial Reconfiguration", per_frame(r.stages.dpr_sim),
           per_frame_w(r.stages.dpr_wall));
    report("Overall", per_frame(r.stages.total_sim()),
           per_frame_w(r.stages.total_wall()));

    const double cie_rate = static_cast<double>(r.stages.cie_wall.count()) /
                            std::max<double>(1.0, rtlsim::to_ms(r.stages.cie_sim));
    const double me_rate = static_cast<double>(r.stages.me_wall.count()) /
                           std::max<double>(1.0, rtlsim::to_ms(r.stages.me_sim));
    std::printf(
        "\npaper-shape checks:\n"
        "  CIE simulated < ME simulated:                 %s\n"
        "  CIE elapsed per sim-ms > ME elapsed per sim-ms"
        " (signal activity): %s\n"
        "  DPR simulated time < 0.1 ms:                  %s\n",
        r.stages.cie_sim < r.stages.me_sim ? "yes" : "NO",
        cie_rate > me_rate ? "yes" : "NO",
        rtlsim::to_ms(r.stages.dpr_sim) / kFrames < 0.1 ? "yes" : "NO");

    std::printf(
        "\nkernel activity: %llu delta cycles, %llu process invocations, "
        "%llu signal updates over %.3f sim-ms\n",
        static_cast<unsigned long long>(r.stats.delta_cycles),
        static_cast<unsigned long long>(r.stats.proc_invocations),
        static_cast<unsigned long long>(r.stats.signal_updates),
        rtlsim::to_ms(r.sim_time));

    // Bus utilisation: who moved the video data (cycle-accurate PLB ops,
    // as in the paper's VIP-based environment).
    static const char* kMasterNames[] = {"CPU", "IcapCTRL", "RR engines",
                                         "VideoIn", "VideoOut"};
    std::printf("\nPLB utilisation %.1f %%; per-master beats (r/w):\n",
                100.0 * tb.sys.plb.utilisation());
    for (unsigned m = 0; m < tb.sys.plb.num_masters(); ++m) {
        const auto& mc = tb.sys.plb.master_counters(m);
        std::printf("  %-12s %8llu transactions, %9llu / %-9llu\n",
                    kMasterNames[m],
                    static_cast<unsigned long long>(mc.transactions),
                    static_cast<unsigned long long>(mc.read_beats),
                    static_cast<unsigned long long>(mc.write_beats));
    }

    if (r.traced) {
        std::printf(
            "\nobs metrics: %llu events, %llu syncs / %llu swaps, "
            "swap latency mean %.1f cyc, x-window mean %.1f cyc, "
            "irq-to-service mean %.1f cyc\n",
            static_cast<unsigned long long>(r.metrics.events),
            static_cast<unsigned long long>(r.metrics.syncs),
            static_cast<unsigned long long>(r.metrics.swaps),
            r.metrics.swap_latency_cycles.mean(),
            r.metrics.x_window_cycles.mean(),
            r.metrics.irq_to_service_cycles.mean());
        if (!cfg.trace_path.empty()) {
            std::printf("perfetto trace: %s\n", cfg.trace_path.c_str());
        }
    }
    return r.clean() ? 0 : 1;
}
