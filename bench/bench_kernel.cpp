// Microbenchmarks of the rtlsim kernel primitives: 4-state vector algebra,
// signal commit, edge fan-out and delta-cycle propagation. These bound the
// full-system simulation rate (the denominator of every Table II number).
#include <benchmark/benchmark.h>

#include "kernel/kernel.hpp"

namespace {

using namespace rtlsim;

void bm_lvec_and(benchmark::State& state) {
    Word a{0xDEADBEEF};
    Word b = Word::from_planes(0x12345678, 0x0000FF00);
    for (auto _ : state) {
        Word c = a & b;
        benchmark::DoNotOptimize(c);
        a = c | b;
    }
}
BENCHMARK(bm_lvec_and);

void bm_lvec_add(benchmark::State& state) {
    Word a{1};
    Word b{0x9E3779B9};
    for (auto _ : state) {
        a = a + b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(bm_lvec_add);

void bm_signal_commit(benchmark::State& state) {
    Scheduler sch;
    Signal<Word> s(sch, "s", Word{0});
    std::uint32_t v = 0;
    for (auto _ : state) {
        sch.schedule_at(sch.now() + NS, [&] { s.write(Word{++v}); });
        sch.advance();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_signal_commit);

/// One clock edge fanning out to N sequential processes — the inner loop of
/// the full-system simulation.
void bm_clock_fanout(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Scheduler sch;
    Clock clk(sch, "clk", 10 * NS);
    std::vector<std::unique_ptr<Process>> procs;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
        procs.push_back(
            std::make_unique<Process>(sch, "p", [&sink] { ++sink; }));
        clk.out.add_listener(*procs.back(), Edge::Pos);
    }
    for (auto _ : state) {
        sch.advance();  // half period; alternating edges
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * n / 2);
}
BENCHMARK(bm_clock_fanout)->Arg(1)->Arg(16)->Arg(64);

/// The allocation-free event path: an intrusive node rescheduling itself,
/// as a Clock does — the single hottest loop in any full-system run.
void bm_event_reschedule(benchmark::State& state) {
    Scheduler sch;
    struct Tick final : TimedEvent {
        explicit Tick(Scheduler& s) : sch(s) {}
        void fire() override {
            ++count;
            sch.schedule_event(sch.now() + 5 * NS, *this);
        }
        Scheduler& sch;
        std::uint64_t count = 0;
    } tick(sch);
    sch.schedule_event(5 * NS, tick);
    for (auto _ : state) {
        sch.advance();
    }
    benchmark::DoNotOptimize(tick.count);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_event_reschedule);

/// Far-future scheduling through the calendar queue's overflow path
/// (watchdog-style events beyond the ring horizon).
void bm_far_future_events(benchmark::State& state) {
    Scheduler sch;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sch.schedule_in(5 * US, [&sink] { ++sink; });
        sch.advance();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_far_future_events);

/// Delta-cycle propagation through a combinational chain of length N.
void bm_delta_chain(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Scheduler sch;
    std::vector<std::unique_ptr<Signal<int>>> sigs;
    for (std::size_t i = 0; i <= n; ++i) {
        sigs.push_back(std::make_unique<Signal<int>>(
            sch, "s" + std::to_string(i), 0));
    }
    std::vector<std::unique_ptr<Process>> procs;
    for (std::size_t i = 0; i < n; ++i) {
        Signal<int>& in = *sigs[i];
        Signal<int>& out = *sigs[i + 1];
        procs.push_back(std::make_unique<Process>(
            sch, "p", [&in, &out] { out.write(in.read() + 1); }));
        in.add_listener(*procs.back(), Edge::Any);
    }
    int v = 0;
    for (auto _ : state) {
        sch.schedule_at(sch.now() + NS, [&] { sigs[0]->write(++v); });
        sch.advance();  // settles the whole chain
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_delta_chain)->Arg(4)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
