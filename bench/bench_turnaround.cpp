// E6 — Section V-B: debug turnaround, simulation vs on-chip.
//
// The paper's argument: every bug in the study reproduced within the first
// 2-4 simulated frames, so one simulation iteration costs at most the time
// to simulate 4 frames (<= 44 min on their host), while one on-chip debug
// iteration costs at least a full implementation + bitstream generation
// (52 min measured), and typically several iterations because probe sets
// must be re-chosen. We measure our simulation side per bug (wall time of
// the run that detects it, and the time of the first failure indication)
// and keep the paper's on-chip constant for the comparison.
#include <cstdio>

#include "sys/detection.hpp"

using namespace autovision;
using namespace autovision::sys;

int main() {
    SystemConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 2;
    cfg.simb_payload_words = 100;

    constexpr double kOnChipMinutes = 52.0;  // paper: implementation+bitgen
    constexpr unsigned kFrames = 4;          // paper: bugs show in 2-4 frames

    std::printf("==== Debug turnaround per iteration: simulation vs on-chip"
                " ====\n");
    std::printf("(ReSim simulation of %u frames per bug; on-chip reference ="
                " %.0f min per iteration, from the paper)\n\n",
                kFrames, kOnChipMinutes);
    std::printf("%-12s | %-10s | %12s | %16s\n", "bug", "detected",
                "sim wall (s)", "first failure (sim ms)");

    double worst_wall_s = 0.0;
    for (const FaultInfo& fi : kFaultCatalog) {
        if (fi.expected == ExpectedDetection::kVmFalseAlarm) continue;
        SystemConfig fc = config_for_fault(cfg, fi.fault);
        fc.method = FirmwareConfig::Method::kResim;
        Testbench tb(fc);
        const RunResult r = tb.run(kFrames);
        const double wall_s = static_cast<double>(r.wall_time.count()) / 1e9;
        worst_wall_s = std::max(worst_wall_s, wall_s);
        double first_ms = -1.0;
        if (!r.diagnostics.empty()) {
            first_ms = rtlsim::to_ms(r.diagnostics.front().time);
        }
        std::printf("%-12s | %-10s | %12.2f | %16.3f\n", fi.id,
                    r.clean() ? "MISSED" : "yes", wall_s, first_ms);
    }

    // A clean (bug-free) full run bounds the iteration cost from above.
    Testbench clean_tb(cfg);
    const RunResult clean = clean_tb.run(kFrames);
    const double clean_wall_s =
        static_cast<double>(clean.wall_time.count()) / 1e9;

    std::printf("\nclean %u-frame simulation: %.2f s wall (%s)\n", kFrames,
                clean_wall_s, clean.verdict().c_str());
    std::printf("worst-case simulation iteration here: %.2f s;"
                " on-chip iteration (paper): %.0f min\n",
                worst_wall_s, kOnChipMinutes);
    std::printf("paper-shape check: simulation turnaround < on-chip"
                " turnaround: %s (x%.0f faster on this host)\n",
                worst_wall_s < kOnChipMinutes * 60 ? "yes" : "NO",
                kOnChipMinutes * 60 / std::max(worst_wall_s, 1e-9));
    return 0;
}
