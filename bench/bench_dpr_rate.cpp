// E8 — Sections I/III: intra-frame reconfiguration sustains real-time.
//
// The demonstrator reconfigures twice per frame; the paper's premise is
// that this is cheap enough to sustain the video rate. The sweep runs the
// full system across frame sizes and SimB lengths and reports the achieved
// frame period and rate, exposing the crossover where reconfiguration
// (growing with bitstream length) starts to dominate the engines.
#include <cstdio>

#include "sys/address_map.hpp"
#include "sys/testbench.hpp"

using namespace autovision;
using namespace autovision::sys;

int main() {
    std::printf("==== DPR rate / throughput sweep (2 reconfigurations per"
                " frame) ====\n");
    std::printf("%-10s | %-14s | %12s | %10s | %12s | %s\n", "frame",
                "SimB payload", "ms/frame", "fps", "DPR share", "verdict");

    struct Point {
        unsigned w;
        unsigned h;
        std::uint32_t payload;
    };
    const Point points[] = {
        {64, 48, 100},     {64, 48, 4096},   {64, 48, 65536},
        {160, 120, 100},   {160, 120, 4096}, {160, 120, 65536},
        {320, 200, 100},   {320, 200, 4096}, {320, 200, 65536},
    };

    bool crossover_seen = false;
    for (const Point& p : points) {
        SystemConfig cfg;
        cfg.width = p.w;
        cfg.height = p.h;
        cfg.step = 4;
        cfg.margin = 8;
        cfg.search = 2;
        cfg.simb_payload_words = p.payload;
        cfg.icap_clk_div = 2;

        constexpr unsigned kFrames = 2;
        Testbench tb(cfg);
        const RunResult r = tb.run(kFrames);
        const double ms_per_frame =
            rtlsim::to_ms(r.stages.total_sim()) / kFrames;
        const double fps = ms_per_frame > 0 ? 1000.0 / ms_per_frame : 0;
        const double dpr_share =
            100.0 * static_cast<double>(r.stages.dpr_sim) /
            static_cast<double>(std::max<rtlsim::Time>(1, r.stages.total_sim()));
        if (dpr_share > 50.0) crossover_seen = true;

        char frame[16];
        std::snprintf(frame, sizeof frame, "%ux%u", p.w, p.h);
        std::printf("%-10s | %-14u | %12.3f | %10.1f | %10.1f %% | %s\n",
                    frame, p.payload, ms_per_frame, fps, dpr_share,
                    r.verdict().c_str());
    }

    std::printf("\npaper-shape checks:\n"
                "  short SimBs keep DPR a negligible share of the frame"
                " budget: see payload=100 rows\n"
                "  long bitstreams eventually dominate small frames"
                " (crossover seen): %s\n"
                "  every configuration still completes correctly (all rows"
                " clean)\n",
                crossover_seen ? "yes" : "NO");
    return 0;
}
