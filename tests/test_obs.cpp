// Unit tests for the observability subsystem (src/obs): the event
// recorder's ring semantics, the metrics registry's single-pass
// derivations, both exporters, and the end-to-end wiring through the
// full-system testbench and the campaign job bodies.
//
// Every suite name starts with "Obs" so the CI TSan job's gtest filter
// picks the whole file up.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaigns.hpp"
#include "campaign/runner.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "sys/testbench.hpp"

namespace autovision {
namespace {

using obs::Event;
using obs::EventKind;
using obs::EventRecorder;
using obs::Hist;
using obs::Metrics;
using obs::Source;

Event ev(rtlsim::Time t, EventKind k, Source s = Source::kIcap,
         std::uint32_t a = 0, std::uint64_t b = 0) {
    Event e;
    e.time = t;
    e.kind = k;
    e.src = s;
    e.a = a;
    e.b = b;
    return e;
}

// ------------------------------------------------------------- recorder

TEST(ObsRecorder, DisabledRecordIsNoOp) {
    EventRecorder rec(8);
    EXPECT_FALSE(rec.enabled());
    rec.record(100, EventKind::kSync, Source::kIcap);
    EXPECT_EQ(rec.total(), 0u);
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_TRUE(rec.snapshot().empty());
}

TEST(ObsRecorder, ZeroCapacityStaysDisabled) {
    EventRecorder rec(0);
    rec.set_enabled(true);
    EXPECT_FALSE(rec.enabled()) << "zero-capacity ring must refuse to enable";
    rec.record(1, EventKind::kSync, Source::kIcap);  // must not divide by 0
    EXPECT_EQ(rec.total(), 0u);
}

TEST(ObsRecorder, RecordsInOrderWithPayloads) {
    EventRecorder rec(8);
    rec.set_enabled(true);
    rec.record(10, EventKind::kSync, Source::kIcap);
    rec.record(20, EventKind::kSwap, Source::kPortal, 1, 2);
    const auto snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].time, 10u);
    EXPECT_EQ(snap[0].kind, EventKind::kSync);
    EXPECT_EQ(snap[1].src, Source::kPortal);
    EXPECT_EQ(snap[1].a, 1u);
    EXPECT_EQ(snap[1].b, 2u);
    EXPECT_EQ(rec.dropped(), 0u);
}

TEST(ObsRecorder, WrapAroundKeepsNewestAndCountsDropped) {
    EventRecorder rec(4);
    rec.set_enabled(true);
    for (rtlsim::Time t = 1; t <= 6; ++t) {
        rec.record(t, EventKind::kSync, Source::kIcap,
                   static_cast<std::uint32_t>(t));
    }
    EXPECT_EQ(rec.total(), 6u);
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.dropped(), 2u);
    const auto snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(snap[i].time, i + 3) << "oldest survivor first";
    }
}

TEST(ObsRecorder, ClearResets) {
    EventRecorder rec(4);
    rec.set_enabled(true);
    rec.record(1, EventKind::kSync, Source::kIcap);
    rec.clear();
    EXPECT_EQ(rec.total(), 0u);
    EXPECT_TRUE(rec.snapshot().empty());
    rec.record(2, EventKind::kSync, Source::kIcap);
    EXPECT_EQ(rec.size(), 1u);
}

// -------------------------------------------------------------- metrics

TEST(ObsMetrics, HistMoments) {
    Hist h;
    EXPECT_EQ(h.mean(), 0.0);
    h.add(4.0);
    h.add(8.0);
    h.add(3.0);
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.min, 3.0);
    EXPECT_EQ(h.max, 8.0);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);

    Hist o;
    o.add(100.0);
    h += o;
    EXPECT_EQ(h.count, 4u);
    EXPECT_EQ(h.max, 100.0);
}

TEST(ObsMetrics, FromEventsDerivesTheRegistry) {
    // One full reconfiguration, one IRQ service, one frame; 10 ns clock.
    const std::vector<Event> events = {
        ev(1000, EventKind::kSync),
        ev(1200, EventKind::kXWindowBegin, Source::kRrBoundary),
        ev(1700, EventKind::kPayloadEnd, Source::kIcap, 8),
        ev(1700, EventKind::kXWindowEnd, Source::kRrBoundary),
        ev(1700, EventKind::kSwap, Source::kPortal, 1, 2),
        ev(1900, EventKind::kDesync),
        ev(2000, EventKind::kIrqRaise, Source::kIntc, 1),
        ev(2500, EventKind::kIrqAck, Source::kIntc, 1),
        ev(3000, EventKind::kFrameDone, Source::kTestbench, 1),
    };
    const Metrics m = Metrics::from_events(events, /*clk_period=*/100);
    EXPECT_EQ(m.events, events.size());
    EXPECT_EQ(m.syncs, 1u);
    EXPECT_EQ(m.desyncs, 1u);
    EXPECT_EQ(m.swaps, 1u);
    EXPECT_EQ(m.irqs, 1u);
    EXPECT_EQ(m.frames, 1u);
    ASSERT_EQ(m.simb_words.count, 1u);
    EXPECT_DOUBLE_EQ(m.simb_words.mean(), 8.0);
    ASSERT_EQ(m.x_window_cycles.count, 1u);
    EXPECT_DOUBLE_EQ(m.x_window_cycles.mean(), 5.0);
    ASSERT_EQ(m.swap_latency_cycles.count, 1u);
    EXPECT_DOUBLE_EQ(m.swap_latency_cycles.mean(), 7.0);
    ASSERT_EQ(m.irq_to_service_cycles.count, 1u);
    EXPECT_DOUBLE_EQ(m.irq_to_service_cycles.mean(), 5.0);
    EXPECT_TRUE(m.any());
}

TEST(ObsMetrics, SwapOutsideSessionHasNoLatencySample) {
    const std::vector<Event> events = {
        ev(500, EventKind::kSwap, Source::kPortal),
    };
    const Metrics m = Metrics::from_events(events, 100);
    EXPECT_EQ(m.swaps, 1u);
    EXPECT_EQ(m.swap_latency_cycles.count, 0u);
}

TEST(ObsMetrics, ZeroClockPeriodFallsBackToPicoseconds) {
    const std::vector<Event> events = {
        ev(100, EventKind::kXWindowBegin, Source::kRrBoundary),
        ev(350, EventKind::kXWindowEnd, Source::kRrBoundary),
    };
    const Metrics m = Metrics::from_events(events, 0);
    ASSERT_EQ(m.x_window_cycles.count, 1u);
    EXPECT_DOUBLE_EQ(m.x_window_cycles.mean(), 250.0);
}

TEST(ObsMetrics, MergeAndMetricMap) {
    Metrics a;
    a.swaps = 2;
    a.events = 10;
    a.swap_latency_cycles.add(10.0);
    Metrics b;
    b.swaps = 1;
    b.events = 5;
    b.aborts = 1;
    b.swap_latency_cycles.add(30.0);
    a += b;
    EXPECT_EQ(a.swaps, 3u);
    EXPECT_EQ(a.events, 15u);
    EXPECT_EQ(a.aborts, 1u);
    EXPECT_DOUBLE_EQ(a.swap_latency_cycles.mean(), 20.0);

    std::map<std::string, double> map;
    a.to_metric_map(map);
    EXPECT_DOUBLE_EQ(map.at("obs.swaps"), 3.0);
    EXPECT_DOUBLE_EQ(map.at("obs.swap_latency_cycles_mean"), 20.0);
    EXPECT_DOUBLE_EQ(map.at("obs.swap_latency_cycles_max"), 30.0);
    EXPECT_DOUBLE_EQ(map.at("obs.aborts"), 1.0);
    // Empty histograms and zero optional counters stay out of the map.
    EXPECT_EQ(map.count("obs.x_window_cycles_mean"), 0u);
    EXPECT_EQ(map.count("obs.events_dropped"), 0u);
}

// ------------------------------------------------------------ exporters

TEST(ObsExport, ChromeTraceIsWellFormedJson) {
    const std::vector<Event> events = {
        ev(1000, EventKind::kSync),
        ev(1200, EventKind::kXWindowBegin, Source::kRrBoundary),
        ev(1700, EventKind::kXWindowEnd, Source::kRrBoundary),
        ev(1700, EventKind::kSwap, Source::kPortal, 1, 2),
        ev(1900, EventKind::kDesync),
    };
    std::ostringstream os;
    obs::write_chrome_trace(os, events);
    const std::string out = os.str();
    EXPECT_EQ(out.front(), '{');
    ASSERT_GE(out.size(), 3u);
    EXPECT_EQ(out.substr(out.size() - 3), "]}\n");
    // The trailing comma before ']' must be stripped (strict parsers).
    EXPECT_EQ(out.find(",\n]"), std::string::npos);
    // Track metadata + spans the viewer groups by.
    EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(out.find("dpr-session"), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"reconfiguration\""), std::string::npos);
    EXPECT_NE(out.find("\"name\":\"x-window\",\"ph\":\"X\""),
              std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    // ts is microseconds with six ps-exact decimals: 1700 ps = 0.001700 us.
    EXPECT_NE(out.find("\"ts\":0.001700"), std::string::npos);
}

TEST(ObsExport, TruncatedSessionIsRenderedAsItsOwnSpan) {
    const std::vector<Event> events = {
        ev(100, EventKind::kSync),
        ev(200, EventKind::kSync),  // SYNC inside an open session
        ev(300, EventKind::kDesync),
    };
    std::ostringstream os;
    obs::write_chrome_trace(os, events);
    EXPECT_NE(os.str().find("reconfiguration (truncated)"),
              std::string::npos);
}

TEST(ObsExport, DanglingIntervalsAreClosedOpen) {
    const std::vector<Event> events = {
        ev(100, EventKind::kSync),
        ev(400, EventKind::kXWindowBegin, Source::kRrBoundary),
    };
    std::ostringstream os;
    obs::write_chrome_trace(os, events);
    const std::string out = os.str();
    EXPECT_NE(out.find("reconfiguration (open)"), std::string::npos);
    EXPECT_NE(out.find("x-window (open)"), std::string::npos);
}

TEST(ObsExport, JsonlEmitsOneLinePerEvent) {
    const std::vector<Event> events = {
        ev(10, EventKind::kSync),
        ev(20, EventKind::kSwap, Source::kPortal, 1, 2),
    };
    std::ostringstream os;
    obs::write_events_jsonl(os, events);
    const std::string out = os.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
    EXPECT_NE(out.find(R"({"t_ps":10,"kind":"sync","src":"icap")"),
              std::string::npos);
    EXPECT_NE(out.find(R"("kind":"swap","src":"portal","a":1,"b":2})"),
              std::string::npos);
}

// ---------------------------------------------------------- full system

sys::SystemConfig traced_config() {
    sys::SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 2;
    cfg.trace_events = true;
    return cfg;
}

TEST(ObsSystem, UntracedRunStaysUntraced) {
    sys::SystemConfig cfg = traced_config();
    cfg.trace_events = false;
    sys::Testbench tb(cfg);
    EXPECT_EQ(tb.recorder(), nullptr);
    const sys::RunResult r = tb.run(1);
    EXPECT_TRUE(r.clean()) << r.verdict();
    EXPECT_FALSE(r.traced);
    EXPECT_EQ(r.metrics.events, 0u);
}

TEST(ObsSystem, TracedFrameShowsBothReconfigurations) {
    sys::Testbench tb(traced_config());
    ASSERT_NE(tb.recorder(), nullptr);
    const sys::RunResult r = tb.run(1);
    EXPECT_TRUE(r.clean()) << r.verdict();
    ASSERT_TRUE(r.traced);
    // One frame reconfigures the region twice (CIE in, then ME in), each
    // a full SYNC .. FDRI .. swap .. DESYNC session.
    EXPECT_GE(r.metrics.syncs, 2u);
    EXPECT_GE(r.metrics.desyncs, 2u);
    EXPECT_GE(r.metrics.swaps, 2u);
    EXPECT_EQ(r.metrics.swap_latency_cycles.count, r.metrics.swaps);
    EXPECT_GE(r.metrics.x_window_cycles.count, 2u);
    EXPECT_GT(r.metrics.x_window_cycles.mean(), 0.0);
    EXPECT_GT(r.metrics.irqs, 0u);
    EXPECT_GT(r.metrics.dcr_ops, 0u);
    EXPECT_EQ(r.metrics.frames, 1u);
    EXPECT_EQ(r.metrics.events_dropped, 0u);
    EXPECT_EQ(r.metrics.aborts, 0u);
    EXPECT_EQ(r.metrics.malformed, 0u);
    // Every payload is a full staged SimB.
    ASSERT_GE(r.metrics.simb_words.count, 2u);
    EXPECT_DOUBLE_EQ(r.metrics.simb_words.mean(),
                     static_cast<double>(traced_config().simb_payload_words));
}

TEST(ObsSystem, TraceFileIsPerfettoLoadableJson) {
    sys::SystemConfig cfg = traced_config();
    cfg.trace_path = testing::TempDir() + "obs_trace_test.json";
    {
        sys::Testbench tb(cfg);
        const sys::RunResult r = tb.run(1);
        ASSERT_TRUE(r.clean()) << r.verdict();
    }
    std::ifstream is(cfg.trace_path);
    ASSERT_TRUE(is.good()) << "trace file missing: " << cfg.trace_path;
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string out = ss.str();
    std::remove(cfg.trace_path.c_str());

    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.substr(out.size() - 3), "]}\n");
    EXPECT_EQ(out.find(",\n]"), std::string::npos) << "trailing comma";
    // Both reconfiguration sessions of the frame appear as spans.
    std::size_t spans = 0;
    for (std::size_t p = out.find("\"name\":\"reconfiguration\"");
         p != std::string::npos;
         p = out.find("\"name\":\"reconfiguration\"", p + 1)) {
        ++spans;
    }
    EXPECT_GE(spans, 2u);
    EXPECT_NE(out.find("\"name\":\"x-window\",\"ph\":\"X\""),
              std::string::npos);
    EXPECT_NE(out.find("\"name\":\"stage-enter\""), std::string::npos);
}

// ------------------------------------------------------------- campaign

TEST(ObsCampaign, TracedWorkloadJobReportsObsMetrics) {
    sys::SystemConfig base = campaign::small_system_config();
    base.trace_events = true;
    auto jobs = campaign::workload_grid_jobs({{32, 24, 1}}, base);
    ASSERT_EQ(jobs.size(), 1u);
    campaign::JobContext ctx;
    const campaign::JobReport rep = jobs[0].body(ctx);
    EXPECT_TRUE(rep.pass) << rep.verdict;
    EXPECT_GE(rep.metrics.at("obs.swaps"), 2.0);
    EXPECT_GT(rep.metrics.at("obs.swap_latency_cycles_mean"), 0.0);
    EXPECT_GT(rep.metrics.at("obs.x_window_cycles_mean"), 0.0);
    EXPECT_GT(rep.metrics.at("obs.events"), 0.0);
}

TEST(ObsCampaign, TracedSimbSweepReportsWordsPerSimb) {
    auto jobs = campaign::simb_sweep_jobs({64u}, /*trace=*/true);
    ASSERT_EQ(jobs.size(), 1u);
    campaign::JobContext ctx;
    const campaign::JobReport rep = jobs[0].body(ctx);
    EXPECT_TRUE(rep.pass) << rep.verdict;
    EXPECT_DOUBLE_EQ(rep.metrics.at("obs.simb_words_mean"), 64.0);
    EXPECT_GE(rep.metrics.at("obs.swaps"), 1.0);
}

TEST(ObsCampaign, AggregateRollsUpObsMetrics) {
    campaign::JobRecord a;
    a.status = campaign::JobStatus::kPass;
    a.report.metrics = {{"obs.swaps", 2.0},
                        {"obs.swap_latency_cycles_mean", 10.0},
                        {"obs.x_window_cycles_max", 5.0}};
    campaign::JobRecord b;
    b.status = campaign::JobStatus::kPass;
    b.report.metrics = {{"obs.swaps", 3.0},
                        {"obs.swap_latency_cycles_mean", 20.0},
                        {"obs.x_window_cycles_max", 9.0}};
    const auto summary = campaign::CampaignSummary::from({a, b});
    EXPECT_DOUBLE_EQ(summary.metrics.at("obs.swaps"), 5.0);  // summed
    EXPECT_DOUBLE_EQ(summary.metrics.at("obs.swap_latency_cycles_mean"),
                     15.0);  // mean of means
    EXPECT_DOUBLE_EQ(summary.metrics.at("obs.x_window_cycles_max"),
                     9.0);  // max
}

}  // namespace
}  // namespace autovision
