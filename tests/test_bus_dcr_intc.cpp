// Unit tests for the DCR daisy chain and the interrupt controller.
#include <gtest/gtest.h>

#include "bus/dcr.hpp"
#include "bus/intc.hpp"
#include "kernel/kernel.hpp"

namespace autovision {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;

constexpr rtlsim::Time kClkPeriod = 10 * NS;

/// A simple register-file node for chain testing.
struct RegNode : DcrSlaveIf {
    std::uint32_t base;
    std::string nm;
    std::array<Word, 4> regs{Word{0}, Word{0}, Word{0}, Word{0}};
    bool corrupted = false;

    RegNode(std::uint32_t b, std::string n) : base(b), nm(std::move(n)) {}

    bool dcr_claims(std::uint32_t r) const override {
        return r >= base && r < base + 4;
    }
    Word dcr_read(std::uint32_t r) override { return regs[r - base]; }
    void dcr_write(std::uint32_t r, Word w) override { regs[r - base] = w; }
    std::string dcr_name() const override { return nm; }
    bool dcr_corrupted() const override { return corrupted; }
};

struct DcrTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClkPeriod};
    ResetGen rst{sch, "rst", 3 * kClkPeriod};
    DcrChain chain{sch, "dcr", clk.out, rst.out};
    RegNode a{0x10, "nodeA"};
    RegNode b{0x20, "nodeB"};
    RegNode c{0x30, "nodeC"};

    DcrTb() {
        chain.attach(a);
        chain.attach(b);
        chain.attach(c);
    }

    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClkPeriod); }
};

TEST(DcrChain, WriteThenReadBack) {
    DcrTb tb;
    bool wrote = false;
    tb.sch.schedule_at(5 * kClkPeriod, [&] {
        tb.chain.start_write(0x21, Word{0xABCD}, [&] { wrote = true; });
    });
    tb.run_cycles(20);
    ASSERT_TRUE(wrote);
    EXPECT_EQ(tb.b.regs[1].to_u64(), 0xABCDu);

    Word got{0};
    tb.chain.start_read(0x21, [&](Word w) { got = w; });
    tb.run_cycles(20);
    EXPECT_EQ(got.to_u64(), 0xABCDu);
}

TEST(DcrChain, LatencyIsRingLength) {
    DcrTb tb;
    EXPECT_EQ(tb.chain.latency(), 5u);  // 3 nodes + 2
    // A transaction issued at cycle k completes after traversing the ring.
    bool done = false;
    rtlsim::Time done_at = 0;
    tb.sch.schedule_at(10 * kClkPeriod, [&] {
        tb.chain.start_write(0x10, Word{1}, [&] {
            done = true;
            done_at = tb.sch.now();
        });
    });
    tb.run_cycles(30);
    ASSERT_TRUE(done);
    // Issue at 100ns (between edges); hops at the 105/115/125ns edges and
    // retire at 135ns.
    EXPECT_EQ(done_at, 10 * kClkPeriod + 3 * kClkPeriod + 5 * NS);
}

TEST(DcrChain, UnclaimedReadReturnsXAndReports) {
    DcrTb tb;
    Word got{0};
    bool done = false;
    tb.sch.schedule_at(5 * kClkPeriod, [&] {
        tb.chain.start_read(0x3FF, [&](Word w) {
            got = w;
            done = true;
        });
    });
    tb.run_cycles(20);
    ASSERT_TRUE(done);
    EXPECT_TRUE(got.has_unknown());
    EXPECT_TRUE(tb.sch.has_diag_from("dcr"));
}

// The bug.dpr.2 mechanism: a corrupted node (registers inside the RR during
// reconfiguration) poisons the token for all downstream nodes.
TEST(DcrChain, CorruptedNodeBreaksChainDownstream) {
    DcrTb tb;
    tb.b.corrupted = true;  // node B is mid-reconfiguration
    Word got{0};
    bool done = false;
    tb.sch.schedule_at(5 * kClkPeriod, [&] {
        tb.c.regs[0] = Word{0x77};
        tb.chain.start_read(0x30, [&](Word w) {  // target: node C, after B
            got = w;
            done = true;
        });
    });
    tb.run_cycles(20);
    ASSERT_TRUE(done);
    EXPECT_TRUE(got.has_unknown()) << "token destroyed before reaching C";
    EXPECT_TRUE(tb.sch.has_diag_from("dcr"));
}

// Ring-faithful behaviour: even when the *target* node claims the read
// upstream, the returning token still traverses the corrupted node and is
// destroyed. A single corrupted node poisons the whole ring — exactly why
// the designers moved the DCR registers out of the RR.
TEST(DcrChain, CorruptionDownstreamDestroysReturningToken) {
    DcrTb tb;
    tb.c.corrupted = true;  // corruption after the target node
    tb.a.regs[2] = Word{0x55};
    Word got{0};
    tb.sch.schedule_at(5 * kClkPeriod, [&] {
        tb.chain.start_read(0x12, [&](Word w) { got = w; });
    });
    tb.run_cycles(20);
    EXPECT_TRUE(got.has_unknown());
    // The *write* upstream of the corruption still landed in earlier tests;
    // here verify the claimed data never survives the ring.
    EXPECT_NE(got.to_u64(), 0x55u);
}

TEST(DcrChain, BackToBackTransactions) {
    DcrTb tb;
    int completions = 0;
    std::function<void(int)> issue = [&](int k) {
        if (k == 8) return;
        tb.chain.start_write(0x10 + static_cast<std::uint32_t>(k % 4),
                             Word{static_cast<std::uint32_t>(k)}, [&, k] {
                                 ++completions;
                                 issue(k + 1);
                             });
    };
    tb.sch.schedule_at(5 * kClkPeriod, [&] { issue(0); });
    tb.run_cycles(100);
    EXPECT_EQ(completions, 8);
    EXPECT_EQ(tb.a.regs[3].to_u64(), 7u);
}

// ------------------------------------------------------------------- INTC

struct IntcTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClkPeriod};
    ResetGen rst{sch, "rst", 3 * kClkPeriod};
    Signal<Logic> line0{sch, "line0", Logic::L0};
    Signal<Logic> line1{sch, "line1", Logic::L0};
    Intc intc{sch, "intc", clk.out, rst.out, 0x40};

    IntcTb() {
        intc.attach(line0);
        intc.attach(line1);
    }

    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClkPeriod); }
    void pulse(Signal<Logic>& l) {
        sch.schedule_in(0, [&] { l.write(Logic::L1); });
        sch.schedule_in(kClkPeriod, [&] { l.write(Logic::L0); });
    }
};

TEST(Intc, EdgeCaptureLatchesOneCyclePulse) {
    IntcTb tb;
    tb.intc.dcr_write(0x41, Word{0x3});  // IER: enable both lines
    tb.run_cycles(5);
    tb.pulse(tb.line0);
    tb.run_cycles(5);
    EXPECT_EQ(tb.intc.irq.read(), Logic::L1) << "pulse latched in edge mode";
    EXPECT_EQ(tb.intc.dcr_read(0x40).to_u64(), 0x1u);

    tb.intc.dcr_write(0x42, Word{0x1});  // IAR: ack line 0
    tb.run_cycles(3);
    EXPECT_EQ(tb.intc.irq.read(), Logic::L0);
    EXPECT_EQ(tb.intc.dcr_read(0x40).to_u64(), 0x0u);
}

TEST(Intc, DisabledLineDoesNotRaiseIrq) {
    IntcTb tb;
    tb.intc.dcr_write(0x41, Word{0x1});  // only line 0 enabled
    tb.run_cycles(5);
    tb.pulse(tb.line1);
    tb.run_cycles(5);
    EXPECT_EQ(tb.intc.irq.read(), Logic::L0);
    EXPECT_EQ(tb.intc.dcr_read(0x40).to_u64(), 0x2u)
        << "status still latches; only the request is masked";
}

// The bug.hw.3 mechanism: level capture loses one-cycle pulses.
TEST(Intc, LevelCaptureLosesPulse) {
    IntcTb tb;
    tb.intc.dcr_write(0x41, Word{0x3});
    tb.intc.dcr_write(0x43, Word{0x0});  // CTRL: level capture (bug)
    tb.run_cycles(5);
    tb.pulse(tb.line0);
    tb.run_cycles(5);
    EXPECT_EQ(tb.intc.irq.read(), Logic::L0) << "pulse evaporated";
    EXPECT_EQ(tb.intc.dcr_read(0x40).to_u64(), 0x0u);
}

TEST(Intc, LevelCaptureTracksSustainedLevel) {
    IntcTb tb;
    tb.intc.dcr_write(0x41, Word{0x3});
    tb.intc.dcr_write(0x43, Word{0x0});
    tb.run_cycles(5);
    tb.sch.schedule_in(0, [&] { tb.line0.write(Logic::L1); });
    tb.run_cycles(5);
    EXPECT_EQ(tb.intc.irq.read(), Logic::L1);
}

TEST(Intc, XOnInputPoisonsStatusAndReports) {
    IntcTb tb;
    tb.intc.dcr_write(0x41, Word{0x3});
    tb.run_cycles(5);
    tb.sch.schedule_in(0, [&] { tb.line0.write(Logic::X); });
    tb.run_cycles(5);
    EXPECT_EQ(tb.intc.irq.read(), Logic::X) << "corruption reaches the CPU";
    EXPECT_TRUE(tb.intc.dcr_read(0x40).has_unknown());
    EXPECT_TRUE(tb.sch.has_diag_from("intc"));
}

TEST(Intc, ResetClearsStatus) {
    IntcTb tb;
    tb.intc.dcr_write(0x41, Word{0x3});
    tb.run_cycles(5);
    tb.pulse(tb.line0);
    tb.run_cycles(3);
    ASSERT_EQ(tb.intc.irq.read(), Logic::L1);
    // Pulse reset again.
    tb.sch.schedule_in(0, [&] { tb.rst.out.write(Logic::L1); });
    tb.sch.schedule_in(2 * kClkPeriod, [&] { tb.rst.out.write(Logic::L0); });
    tb.run_cycles(5);
    EXPECT_EQ(tb.intc.irq.read(), Logic::L0);
}

TEST(Intc, CtrlRegisterReadsBack) {
    IntcTb tb;
    EXPECT_EQ(tb.intc.dcr_read(0x43).to_u64(), 1u) << "edge capture default";
    tb.intc.dcr_write(0x43, Word{0x0});
    EXPECT_EQ(tb.intc.dcr_read(0x43).to_u64(), 0u);
    EXPECT_TRUE(tb.intc.dcr_claims(0x40));
    EXPECT_TRUE(tb.intc.dcr_claims(0x43));
    EXPECT_FALSE(tb.intc.dcr_claims(0x44));
}

}  // namespace
}  // namespace autovision
