// Unit tests for the Sobel golden model and the Edge Detection Engine,
// including its participation in the three-way reconfigurable region.
#include <gtest/gtest.h>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/edge_engine.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"
#include "video/sobel.hpp"
#include "video/synth.hpp"

namespace autovision {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;
using rtlsim::Word;

constexpr rtlsim::Time kClk = 10 * NS;
constexpr std::uint32_t kIn = 0x1'0000;
constexpr std::uint32_t kOut = 0x2'0000;

TEST(Sobel, FlatImageIsZero) {
    video::Frame f(8, 8, 123);
    const video::Frame e = video::sobel_transform(f);
    for (auto p : e.pixels()) EXPECT_EQ(p, 0);
}

TEST(Sobel, VerticalStepHasStrongHorizontalGradient) {
    video::Frame f(8, 8, 0);
    for (unsigned y = 0; y < 8; ++y) {
        for (unsigned x = 4; x < 8; ++x) f.at(x, y) = 200;
    }
    const video::Frame e = video::sobel_transform(f);
    EXPECT_EQ(e.at(1, 4), 0) << "far from the edge";
    EXPECT_EQ(e.at(4, 4), 255) << "saturated at the step";
    // Gradient magnitude is symmetric around the step.
    EXPECT_EQ(e.at(3, 4), e.at(4, 4));
}

TEST(Sobel, SaturatesAt255) {
    video::Frame f(4, 4, 0);
    f.at(2, 2) = 255;
    const video::Frame e = video::sobel_transform(f);
    for (auto p : e.pixels()) EXPECT_LE(p, 255);
    EXPECT_GT(e.at(1, 2), 0);
}

struct EdgeTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 100000}};
    rtlsim::Signal<Logic> done_line{sch, "done", Logic::L0};
    EngineRegs regs{sch, "edge_regs", clk.out, 0x60};
    EdgeEngine edge{sch, "edge", clk.out, rst.out, regs};
    RrBoundary rr{sch, "rr", plb.master(0), done_line};

    EdgeTb() {
        plb.attach_slave(mem);
        rr.add_module(edge);
        rr.select(0);
    }
    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }

    bool run_job(unsigned w, unsigned h, unsigned budget) {
        regs.dcr_write(0x62, Word{kIn});
        regs.dcr_write(0x63, Word{kOut});
        regs.dcr_write(0x65, Word{(w << 16) | h});
        run_cycles(5);
        regs.dcr_write(0x60, Word{1});
        for (unsigned i = 0; i < budget / 128; ++i) {
            run_cycles(128);
            if (regs.done()) return true;
        }
        return regs.done();
    }
};

TEST(EdgeEngine, BitExactAgainstReferenceModel) {
    EdgeTb tb;
    const unsigned w = 32;
    const unsigned h = 24;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h, 17));
    const video::Frame in = scene.frame(0);
    tb.mem.load_bytes(kIn, in.pixels());
    ASSERT_TRUE(tb.run_job(w, h, 60000));
    const video::Frame want = video::sobel_transform(in);
    for (unsigned i = 0; i < want.size(); ++i) {
        ASSERT_EQ(tb.mem.peek_u8(kOut + i), want.pixels()[i])
            << "pixel " << i;
    }
}

TEST(EdgeEngine, RejectsBadGeometry) {
    EdgeTb tb;
    tb.regs.dcr_write(0x65, Word{(30u << 16) | 24u});
    tb.run_cycles(5);
    tb.regs.dcr_write(0x60, Word{1});
    tb.run_cycles(50);
    EXPECT_FALSE(tb.regs.busy());
    EXPECT_TRUE(tb.sch.has_diag_from("edge"));
}

// The driving-conditions scenario: three modules mapped to one region and
// swapped by SimBs; each engine works after every swap.
TEST(EdgeEngine, ThreeWayRegionSwapsViaSimB) {
    Scheduler sch;
    Clock clk(sch, "clk", kClk);
    ResetGen rst(sch, "rst", 3 * kClk);
    Memory mem;
    Plb plb(sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 100000});
    plb.attach_slave(mem);
    rtlsim::Signal<Logic> done_line(sch, "done", Logic::L0);
    EngineRegs cie_regs(sch, "cie_regs", clk.out, 0x60);
    EngineRegs me_regs(sch, "me_regs", clk.out, 0x68);
    EngineRegs edge_regs(sch, "edge_regs", clk.out, 0x78);
    CensusEngine cie(sch, "cie", clk.out, rst.out, cie_regs);
    MatchingEngine me(sch, "me", clk.out, rst.out, me_regs);
    EdgeEngine edge(sch, "edge", clk.out, rst.out, edge_regs);
    RrBoundary rr(sch, "rr", plb.master(0), done_line);
    rr.add_module(cie);
    rr.add_module(me);
    rr.add_module(edge);
    resim::ExtendedPortal portal(sch, "portal");
    resim::IcapArtifact icap(sch, "icap", portal);
    portal.map_module(1, 1, rr, 0);
    portal.map_module(1, 2, rr, 1);
    portal.map_module(1, 3, rr, 2);
    portal.initial_configuration(1, 1);

    auto swap_to = [&](std::uint8_t module) {
        resim::SimB b;
        b.rr_id = 1;
        b.module_id = module;
        for (std::uint32_t w : b.build()) icap.icap_write(Word{w});
    };
    sch.run_until(sch.now() + 10 * kClk);

    swap_to(3);
    EXPECT_TRUE(edge.rm_active());
    EXPECT_FALSE(cie.rm_active());

    // Run an edge job while resident.
    video::SyntheticScene scene(video::SceneConfig::standard(16, 8, 3));
    mem.load_bytes(kIn, scene.frame(0).pixels());
    edge_regs.dcr_write(0x7A, Word{kIn});
    edge_regs.dcr_write(0x7B, Word{kOut});
    edge_regs.dcr_write(0x7D, Word{(16u << 16) | 8u});
    sch.run_until(sch.now() + 5 * kClk);
    edge_regs.dcr_write(0x78, Word{1});
    for (int i = 0; i < 100 && !edge_regs.done(); ++i) {
        sch.run_until(sch.now() + 64 * kClk);
    }
    ASSERT_TRUE(edge_regs.done());
    const video::Frame want = video::sobel_transform(scene.frame(0));
    EXPECT_EQ(mem.peek_u8(kOut + 20), want.pixels()[20]);

    swap_to(2);
    EXPECT_TRUE(me.rm_active());
    swap_to(1);
    EXPECT_TRUE(cie.rm_active());
    EXPECT_EQ(portal.reconfigurations(), 3u);
    EXPECT_TRUE(sch.diagnostics().empty());
}

TEST(EdgeEngine, StateSaveRestoreRoundTrip) {
    EdgeTb tb;
    const unsigned w = 32;
    const unsigned h = 24;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h, 21));
    tb.mem.load_bytes(kIn, scene.frame(0).pixels());
    tb.regs.dcr_write(0x62, Word{kIn});
    tb.regs.dcr_write(0x63, Word{kOut});
    tb.regs.dcr_write(0x65, Word{(w << 16) | h});
    tb.run_cycles(5);
    tb.regs.dcr_write(0x60, Word{1});
    tb.run_cycles(300);
    ASSERT_TRUE(tb.edge.busy());

    std::vector<std::uint8_t> st;
    for (int i = 0; i < 30 && st.empty(); ++i) {
        tb.run_cycles(1);
        st = tb.edge.rm_save_state();
    }
    ASSERT_FALSE(st.empty());
    tb.rr.select(-1);  // swap out: job gone
    tb.run_cycles(20);
    tb.rr.select(0);   // back in, fresh
    EXPECT_FALSE(tb.edge.busy());
    ASSERT_TRUE(tb.edge.rm_restore_state(st));
    EXPECT_TRUE(tb.edge.busy()) << "resumed mid-job";
    for (int i = 0; i < 400 && !tb.regs.done(); ++i) tb.run_cycles(64);
    ASSERT_TRUE(tb.regs.done());
    const video::Frame want = video::sobel_transform(scene.frame(0));
    for (unsigned i = 0; i < want.size(); ++i) {
        ASSERT_EQ(tb.mem.peek_u8(kOut + i), want.pixels()[i]);
    }
}

// Geometry sweep, as for the CIE.
class EdgeGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(EdgeGeometry, BitExact) {
    const auto [w, h] = GetParam();
    EdgeTb tb;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h, w * h));
    const video::Frame in = scene.frame(0);
    tb.mem.load_bytes(kIn, in.pixels());
    ASSERT_TRUE(tb.run_job(w, h, 40 * w * h + 20000));
    const video::Frame want = video::sobel_transform(in);
    std::size_t mm = 0;
    for (unsigned i = 0; i < want.size(); ++i) {
        if (tb.mem.peek_u8(kOut + i) != want.pixels()[i]) ++mm;
    }
    EXPECT_EQ(mm, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EdgeGeometry,
    ::testing::Values(std::pair{4u, 4u}, std::pair{8u, 2u},
                      std::pair{16u, 16u}, std::pair{36u, 20u}));

}  // namespace
}  // namespace autovision
