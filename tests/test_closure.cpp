// The coverage-closure loop: determinism across worker interleavings,
// saturation/stop conditions, and the acceptance property — with the same
// seed and the same scenario budget, the coverage-biased arm hits strictly
// more goal bins than the pure-random control arm.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "campaign/closure.hpp"

namespace {

using namespace autovision;
using campaign::CampaignConfig;
using campaign::ClosureConfig;
using campaign::ClosureResult;

scen::ScenarioConstraints streams_only() {
    scen::ScenarioConstraints c;
    c.w_system = 0;
    c.w_fault = 0;
    return c;
}

std::string json_of(const cover::Coverage& cov) {
    std::ostringstream os;
    cov.write_json(os);
    return os.str();
}

TEST(Closure, MergedCoverageIsDeterministicAcrossWorkerCounts) {
    // Same closure run on one worker and on four: per-job shards complete
    // in different orders, but the merge is elementwise addition over a
    // fixed shape, so the merged coverage must be byte-identical.
    ClosureConfig cc;
    cc.base = streams_only();
    cc.seed = 11;
    cc.batch_size = 6;
    cc.max_batches = 2;
    cc.target_percent = 101.0;  // never early-stop on target
    cc.saturation_batches = 99;

    CampaignConfig serial;
    serial.jobs = 1;
    CampaignConfig pooled;
    pooled.jobs = 4;

    const ClosureResult a = campaign::run_closure(cc, serial);
    const ClosureResult b = campaign::run_closure(cc, pooled);
    EXPECT_EQ(a.scenarios_run, b.scenarios_run);
    EXPECT_TRUE(a.merged == b.merged);
    EXPECT_EQ(json_of(a.merged), json_of(b.merged));
}

TEST(Closure, StopsWhenTheLoopSaturates) {
    // A generator that can only emit one shape (clean single-session
    // streams of one fixed bucket) stops finding new bins immediately.
    scen::ScenarioConstraints c = streams_only();
    c.w_corrupt.fill(0);
    c.w_corrupt[0] = 1;  // clean sessions only
    c.min_sessions = 1;
    c.max_sessions = 1;
    c.w_payload = {1, 0, 0};
    c.w_gap = {1, 0, 0};
    c.w_type1_header = 0;
    c.w_capture = 0;
    c.w_restore = 0;
    c.w_dcr = {1, 0, 0};
    c.w_toggle_module = 1;
    c.w_repeat_module = 0;

    ClosureConfig cc;
    cc.base = c;
    cc.bias = false;
    cc.seed = 5;
    cc.batch_size = 4;
    cc.max_batches = 6;
    cc.target_percent = 101.0;
    cc.saturation_batches = 2;

    CampaignConfig rc;
    rc.jobs = 2;
    const ClosureResult r = campaign::run_closure(cc, rc);
    EXPECT_TRUE(r.saturated);
    EXPECT_FALSE(r.reached_target);
    EXPECT_LT(r.batches.size(), cc.max_batches)
        << "saturation must stop the loop before the batch budget";
}

TEST(Closure, RecordsCarryMergeableCoverageShards) {
    ClosureConfig cc;
    cc.base = streams_only();
    cc.seed = 3;
    cc.batch_size = 4;
    cc.max_batches = 1;
    cc.target_percent = 101.0;

    CampaignConfig rc;
    rc.jobs = 2;
    const ClosureResult r = campaign::run_closure(cc, rc);
    ASSERT_EQ(r.records.size(), 4u);

    cover::Coverage manual = cover::make_model();
    for (const campaign::JobRecord& rec : r.records) {
        ASSERT_TRUE(rec.report.coverage.same_shape(manual));
        manual += rec.report.coverage;
    }
    EXPECT_TRUE(manual == r.merged)
        << "the merged model must equal the sum of the per-job shards";
}

TEST(Closure, RegionScenariosCloseTheRrmCrossBins) {
    // A regions-only campaign must execute through the rrm harness and
    // land hits in the region x engine x policy cross — the bins no other
    // scenario kind can reach.
    scen::ScenarioConstraints c;
    c.w_stream = 0;
    c.w_system = 0;
    c.w_fault = 0;
    c.w_regions = 1;

    ClosureConfig cc;
    cc.base = c;
    cc.seed = 21;
    cc.batch_size = 4;
    cc.max_batches = 1;
    cc.target_percent = 101.0;

    CampaignConfig rc;
    rc.jobs = 2;
    const ClosureResult r = campaign::run_closure(cc, rc);
    ASSERT_EQ(r.records.size(), 4u);
    for (const campaign::JobRecord& rec : r.records) {
        EXPECT_TRUE(rec.passed())
            << rec.name << ": " << rec.report.verdict;
    }

    const cover::Covergroup* cross = r.merged.find("rrm.cross");
    ASSERT_NE(cross, nullptr);
    std::size_t hit = 0;
    for (const cover::Bin& b : cross->bins()) {
        if (b.hits > 0) ++hit;
    }
    EXPECT_GT(hit, 0u) << "no region/engine/policy cell was reached";
    const cover::Covergroup* arb = r.merged.find("rrm.arb");
    ASSERT_NE(arb, nullptr);
    EXPECT_GT(arb->goal_hit(), 0u);
}

TEST(Closure, BiasedArmBeatsEqualBudgetPureRandom) {
    // The acceptance property. Both arms share the campaign seed, so batch
    // b / index i runs from the same scenario seed in both; only the
    // weight tables differ from batch 1 on. Stream-only keeps the runtime
    // in seconds.
    ClosureConfig biased;
    biased.base = streams_only();
    biased.seed = 7;
    biased.batch_size = 8;
    biased.max_batches = 3;
    biased.target_percent = 101.0;  // run the full budget on both arms
    biased.saturation_batches = 99;
    biased.bias = true;

    ClosureConfig control = biased;
    control.bias = false;

    CampaignConfig rc;
    rc.jobs = 4;

    const ClosureResult b = campaign::run_closure(biased, rc);
    const ClosureResult r = campaign::run_closure(control, rc);
    ASSERT_EQ(b.scenarios_run, r.scenarios_run) << "arms must spend the "
                                                   "same scenario budget";
    EXPECT_GT(b.merged.goal_hit(), r.merged.goal_hit())
        << "coverage feedback must hit strictly more goal bins than "
           "pure random at equal budget (biased "
        << b.merged.percent() << "% vs random " << r.merged.percent()
        << "%)";
}

}  // namespace
