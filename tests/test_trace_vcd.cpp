// VCD tracer format tests.
//
// Pins the header a waveform viewer actually parses — in particular that
// multi-bit $var declarations carry an explicit [W-1:0] bit range (several
// viewers treat a rangeless $var as one bit regardless of the declared
// width) while single-bit declarations stay rangeless.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "kernel/kernel.hpp"
#include "kernel/trace.hpp"

namespace rtlsim {
namespace {

TEST(TraceVcd, GoldenHeader) {
    Scheduler sch;
    std::ostringstream os;
    Signal<Logic> clk{sch, "clk"};
    Signal<LVec<8>> data{sch, "data"};
    Signal<Word> addr{sch, "cpu.addr"};
    Tracer tr(os);
    tr.add(clk);
    tr.add(data);
    tr.add(addr);
    tr.write_header();

    const std::string out = os.str();
    const std::size_t defs_end = out.find("$enddefinitions $end\n");
    ASSERT_NE(defs_end, std::string::npos) << out;
    const std::string header = out.substr(0, defs_end);
    EXPECT_EQ(header,
              "$timescale 1ps $end\n"
              "$scope module top $end\n"
              "$var wire 1 ! clk $end\n"
              "$var wire 8 \" data [7:0] $end\n"
              "$var wire 32 # cpu_addr [31:0] $end\n"
              "$upscope $end\n");
}

// Regression: $var declarations for buses used to omit the bit range, so
// viewers rendered every bus as a single bit.
TEST(TraceVcd, MultiBitVarsDeclareBitRange) {
    Scheduler sch;
    std::ostringstream os;
    Signal<Logic> bit{sch, "bit"};
    Signal<LVec<16>> bus{sch, "bus"};
    Tracer tr(os);
    tr.add(bit);
    tr.add(bus);
    tr.write_header();

    const std::string out = os.str();
    EXPECT_NE(out.find("bus [15:0] $end"), std::string::npos) << out;
    // Single-bit signals must stay rangeless.
    EXPECT_NE(out.find("1 ! bit $end"), std::string::npos) << out;
    EXPECT_EQ(out.find("bit ["), std::string::npos) << out;
}

TEST(TraceVcd, InitialDumpAndValueFormats) {
    Scheduler sch;
    std::ostringstream os;
    Signal<Logic> bit{sch, "bit"};
    Signal<LVec<4>> nib{sch, "nib"};
    Tracer tr(os);
    tr.add(bit);
    tr.add(nib);
    tr.write_header();

    const std::string out = os.str();
    // Initial values appear under #0 $dumpvars; scalars are bare, vectors
    // use the 'b<bits> <id>' form.
    const std::size_t dump = out.find("#0\n$dumpvars\n");
    ASSERT_NE(dump, std::string::npos) << out;
    EXPECT_NE(out.find("x!\n", dump), std::string::npos) << out;
    EXPECT_NE(out.find("bxxxx \"\n", dump), std::string::npos) << out;
}

}  // namespace
}  // namespace rtlsim
