#include <cstdio>
#include "sys/detection.hpp"
using namespace autovision::sys;
int main(int argc, char** argv) {
    SystemConfig base;
    base.width = 32; base.height = 24; base.search = 2; base.step = 4;
    base.simb_payload_words = 100;
    unsigned threads = argc > 1 ? std::stoul(argv[1]) : 0;
    auto outcomes = run_catalog(base, 2, threads);
    for (const auto& o : outcomes) {
        std::printf("%s\n", o.row().c_str());
        if (!o.matches_expectation()) {
            std::printf("    VM:    %s\n    ReSim: %s\n", o.vm.verdict().c_str(), o.resim.verdict().c_str());
        }
    }
    return 0;
}
