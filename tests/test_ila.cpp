// Unit tests for the ChipScope-style ILA model.
#include <gtest/gtest.h>

#include "kernel/kernel.hpp"
#include "vip/ila.hpp"

namespace autovision::vip {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::LVec;
using rtlsim::NS;
using rtlsim::Scheduler;
using rtlsim::Signal;

constexpr rtlsim::Time kClk = 10 * NS;

struct IlaTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    Signal<LVec<8>> counter{sch, "counter", LVec<8>{0}};
    Signal<Logic> flag{sch, "flag", Logic::L0};
    Ila ila;

    explicit IlaTb(Ila::Config cfg = {4, 32, 8})
        : ila(sch, "ila", clk.out, cfg) {
        // A free-running counter as the observed design.
        cnt_proc_ = std::make_unique<rtlsim::Process>(sch, "cnt", [this] {
            const auto v = static_cast<std::uint32_t>(counter.read().to_u64());
            counter.write(LVec<8>{v + 1});
        });
        clk.out.add_listener(*cnt_proc_, rtlsim::Edge::Pos);
    }
    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }

    std::unique_ptr<rtlsim::Process> cnt_proc_;
};

TEST(Ila, ProbeLimitIsEnforced) {
    IlaTb tb;
    EXPECT_TRUE(tb.ila.probe(tb.counter, "counter"));
    EXPECT_TRUE(tb.ila.probe(tb.flag, "flag"));
    EXPECT_TRUE(tb.ila.probe(tb.clk.out, "clk"));
    EXPECT_TRUE(tb.ila.probe(tb.counter, "counter2"));
    EXPECT_FALSE(tb.ila.probe(tb.flag, "one too many"));
    EXPECT_TRUE(tb.sch.has_diag_from("ila"));
    EXPECT_EQ(tb.ila.probe_labels().size(), 4u);
}

TEST(Ila, TriggersAndFreezesWithPostWindow) {
    IlaTb tb;
    tb.ila.probe(tb.counter, "counter");
    tb.ila.arm([](const std::vector<std::string>& v) {
        return v[0] == "00010100";  // counter == 20
    });
    tb.run_cycles(200);
    ASSERT_TRUE(tb.ila.triggered());
    ASSERT_TRUE(tb.ila.capture_complete());

    const auto win = tb.ila.window();
    // 21 pre-trigger samples existed when counter hit 20, plus 8 post.
    ASSERT_EQ(win.size(), 29u);
    const int ti = tb.ila.trigger_index();
    ASSERT_GE(ti, 0);
    EXPECT_EQ(win[static_cast<std::size_t>(ti)].values[0], "00010100");
    // Exactly 8 post-trigger samples follow the trigger sample.
    EXPECT_EQ(static_cast<std::size_t>(ti), win.size() - 8 - 1);
    // History is contiguous and ordered.
    for (std::size_t i = 1; i < win.size(); ++i) {
        EXPECT_EQ(win[i].time, win[i - 1].time + kClk);
    }
}

TEST(Ila, LimitedWindowMissesEarlierEvents) {
    // The on-chip constraint the paper leans on: events before the capture
    // window are simply not visible.
    IlaTb tb(Ila::Config{4, 16, 4});
    tb.ila.probe(tb.counter, "counter");
    tb.ila.arm([](const std::vector<std::string>& v) {
        return v[0] == "01100100";  // counter == 100
    });
    tb.run_cycles(400);
    ASSERT_TRUE(tb.ila.capture_complete());
    const auto win = tb.ila.window();
    ASSERT_EQ(win.size(), 16u);
    // Counter value 20 happened long before the window: absent.
    for (const auto& s : win) {
        EXPECT_NE(s.values[0], "00010100");
    }
}

TEST(Ila, NotArmedCapturesNothing) {
    IlaTb tb;
    tb.ila.probe(tb.counter, "counter");
    tb.run_cycles(50);
    EXPECT_EQ(tb.ila.samples_seen(), 0u);
    EXPECT_FALSE(tb.ila.capture_complete());
    EXPECT_TRUE(tb.ila.window().empty());
}

TEST(Ila, ReArmRestartsCapture) {
    IlaTb tb;
    tb.ila.probe(tb.counter, "counter");
    tb.ila.arm([](const std::vector<std::string>& v) {
        return v[0] == "00000101";  // 5
    });
    tb.run_cycles(100);
    ASSERT_TRUE(tb.ila.capture_complete());
    tb.ila.arm([](const std::vector<std::string>& v) {
        return v[0] == "00101000";  // 40
    });
    EXPECT_FALSE(tb.ila.capture_complete());
    tb.run_cycles(300);
    ASSERT_TRUE(tb.ila.capture_complete());
    const auto win = tb.ila.window();
    const int ti = tb.ila.trigger_index();
    ASSERT_GE(ti, 0);
    EXPECT_EQ(win[static_cast<std::size_t>(ti)].values[0], "00101000");
}

TEST(Ila, CapturesXValues) {
    IlaTb tb;
    tb.ila.probe(tb.flag, "flag");
    tb.ila.arm([](const std::vector<std::string>& v) { return v[0] == "x"; });
    tb.sch.schedule_at(20 * kClk, [&] { tb.flag.write(Logic::X); });
    tb.run_cycles(100);
    EXPECT_TRUE(tb.ila.triggered()) << "waveforms show X like a simulator";
}

}  // namespace
}  // namespace autovision::vip
