// Tests for the differential VM-vs-ReSim oracle (src/diff): side drivers
// and classification, the delta-debugging shrinker, the reproducer
// artifacts, and the diff campaign (including its watchdog behaviour).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaigns.hpp"
#include "campaign/runner.hpp"
#include "diff/classify.hpp"
#include "diff/repro.hpp"
#include "diff/shrink.hpp"
#include "scen/scenario.hpp"

using namespace autovision;
using campaign::CampaignConfig;
using campaign::CampaignResult;
using campaign::CampaignRunner;
using campaign::DiffCampaignConfig;
using campaign::JobRecord;
using campaign::JobStatus;
using campaign::SimJob;

namespace fs = std::filesystem;

namespace {

/// Stream-only constrained-random scenario (what the diff campaign runs).
scen::Scenario stream_scenario(std::uint64_t seed, unsigned max_sessions = 3) {
    scen::ScenarioConstraints c;
    c.w_stream = 1;
    c.w_system = 0;
    c.w_fault = 0;
    c.max_sessions = max_sessions;
    return scen::generate(c, seed);
}

/// A hand-built clean session targeting `module_id`.
scen::StreamSession clean_session(std::uint8_t module_id,
                                  std::uint32_t payload = 8) {
    scen::StreamSession ss;
    ss.module_id = module_id;
    ss.payload_words = payload;
    ss.filler_seed = 0xBEEF0000u + module_id;
    return ss;
}

scen::Scenario hand_scenario(std::vector<scen::StreamSession> sessions) {
    scen::Scenario s;
    s.kind = scen::Kind::kStream;
    s.seed = 0xD1FF;
    s.name = "hand";
    s.sessions = std::move(sessions);
    return s;
}

bool has_divergence(const diff::DiffReport& r, diff::DivergenceKind k,
                    bool genuine) {
    for (const diff::Divergence& d : r.divergences) {
        if (d.kind == k && d.genuine == genuine) return true;
    }
    return false;
}

double metric(const JobRecord& r, const std::string& key) {
    const auto it = r.report.metrics.find(key);
    return it == r.report.metrics.end() ? -1.0 : it->second;
}

fs::path fresh_dir(const std::string& leaf) {
    const fs::path d = fs::path(::testing::TempDir()) / leaf;
    fs::remove_all(d);
    fs::create_directories(d);
    return d;
}

std::string slurp(const fs::path& p) {
    std::ifstream is(p, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Oracle: pure helpers

TEST(DiffOracle, ExpectedSelectsFollowSwapSchedule) {
    scen::StreamSession dead = clean_session(1);
    dead.corrupt = scen::Corrupt::kHeaderOnly;  // no FDRI => no swap
    const scen::Scenario s = hand_scenario(
        {clean_session(2), dead, clean_session(1)});
    // Initial configuration (CIE, slot 0), then ME (slot 1), the header-only
    // session swaps nothing, then CIE again.
    EXPECT_EQ(diff::expected_selects(s), (std::vector<int>{0, 1, 0}));

    std::size_t words = 0;
    for (const scen::StreamSession& ss : s.sessions) words += ss.words().size();
    EXPECT_EQ(diff::simb_word_count(s), words);
}

TEST(DiffOracle, FaultNamesRoundTrip) {
    for (unsigned i = 0; i < static_cast<unsigned>(diff::DiffFault::kCount);
         ++i) {
        const auto f = static_cast<diff::DiffFault>(i);
        bool ok = false;
        EXPECT_EQ(diff::fault_from_string(diff::to_string(f), &ok), f);
        EXPECT_TRUE(ok);
    }
    bool ok = true;
    (void)diff::fault_from_string("no-such-fault", &ok);
    EXPECT_FALSE(ok);
}

// ---------------------------------------------------------------------------
// Oracle: clean design

TEST(DiffOracle, CleanScenarioNoGenuineDivergence) {
    const diff::DiffOutcome out = diff::run_diff(stream_scenario(42));
    EXPECT_EQ(out.report.genuine(), 0u) << out.report.first_genuine();
    // Both sides ran the same probe schedule and agree on every outcome.
    ASSERT_EQ(out.vm.probes.size(), out.resim.probes.size());
    for (std::size_t i = 0; i < out.vm.probes.size(); ++i) {
        EXPECT_TRUE(out.vm.probes[i].done) << "probe " << i;
        EXPECT_EQ(out.vm.probes[i], out.resim.probes[i]) << "probe " << i;
    }
}

TEST(DiffOracle, MaskedDivergencesAreReported) {
    // The VM blind spots must be *visible* in the report (as expected), not
    // silently dropped: ReSim-only SimB machinery and the X window, and the
    // VM-only signature writes.
    const scen::Scenario s = hand_scenario({clean_session(2)});
    const diff::DiffOutcome out = diff::run_diff(s);
    EXPECT_EQ(out.report.genuine(), 0u) << out.report.first_genuine();
    EXPECT_GE(out.report.expected(), 3u);
    EXPECT_TRUE(has_divergence(out.report, diff::DivergenceKind::kMechanism,
                               /*genuine=*/false));
    for (const diff::Divergence& d : out.report.divergences) {
        EXPECT_FALSE(d.genuine) << d.detail;
        EXPECT_EQ(d.kind, diff::DivergenceKind::kMechanism) << d.detail;
    }
}

// ---------------------------------------------------------------------------
// Oracle: injected faults (satellite: bug.hw.2 through the oracle)

TEST(DiffOracle, Hw2NoSigInitIsGenuineOnVm) {
    // bug.hw.2: the engine_signature register is never initialised. The VM
    // region starts empty (silent hang); ReSim's power-on configuration is
    // real, so only the VM side diverges — and the classifier must say so.
    diff::DiffOptions opt;
    opt.inject = diff::DiffFault::kVmNoSigInit;
    const scen::Scenario s = hand_scenario({clean_session(2)});
    const diff::DiffOutcome out = diff::run_diff(s, opt);

    ASSERT_GT(out.report.genuine(), 0u);
    EXPECT_EQ(out.report.genuine_on(diff::Side::kVm), out.report.genuine());
    EXPECT_EQ(out.report.genuine_on(diff::Side::kResim), 0u);
    // The initial probe is the observable: lost start pulse under VM.
    ASSERT_FALSE(out.vm.probes.empty());
    ASSERT_FALSE(out.resim.probes.empty());
    EXPECT_FALSE(out.vm.probes[0].done);
    EXPECT_TRUE(out.resim.probes[0].done);
    EXPECT_TRUE(has_divergence(out.report, diff::DivergenceKind::kProbe,
                               /*genuine=*/true));
}

TEST(DiffOracle, IsolationMissingGenuineOnResim) {
    // bug.dpr.1: no isolation across the bitstream transfer, so the X
    // window escapes onto the PLB — a divergence only ReSim can show.
    diff::DiffOptions opt;
    opt.inject = diff::DiffFault::kIsolationMissing;
    const scen::Scenario s = hand_scenario({clean_session(2)});
    const diff::DiffOutcome out = diff::run_diff(s, opt);

    ASSERT_GT(out.report.genuine(), 0u);
    EXPECT_EQ(out.report.genuine_on(diff::Side::kResim), out.report.genuine());
    EXPECT_EQ(out.report.genuine_on(diff::Side::kVm), 0u);
    bool x_escape = false;
    for (const diff::Divergence& d : out.report.divergences) {
        if (d.genuine && d.kind == diff::DivergenceKind::kDiagnostic &&
            d.detail.find("X/Z") != std::string::npos) {
            x_escape = true;
        }
    }
    EXPECT_TRUE(x_escape);
}

TEST(DiffOracle, WrongModuleMapGenuineOnResim) {
    // bug.dpr.3-class: the portal maps module ids to swapped slots, so the
    // SimB swap lands the wrong engine and the select sequence deviates.
    diff::DiffOptions opt;
    opt.inject = diff::DiffFault::kWrongModuleMap;
    const scen::Scenario s = hand_scenario({clean_session(2)});
    const diff::DiffOutcome out = diff::run_diff(s, opt);

    ASSERT_GT(out.report.genuine(), 0u);
    EXPECT_GE(out.report.genuine_on(diff::Side::kResim), 1u);
    EXPECT_TRUE(has_divergence(out.report,
                               diff::DivergenceKind::kSelectSequence,
                               /*genuine=*/true));
}

// ---------------------------------------------------------------------------
// Shrinker

TEST(DiffShrink, NormalizeRepairsInvariants) {
    scen::StreamSession ss = clean_session(2, /*payload=*/0);
    ss.corrupt = scen::Corrupt::kTruncate;  // needs payload >= 4
    ss.restore_state = true;                // needs a prior capture
    scen::Scenario s = hand_scenario({ss});
    const scen::Scenario n = diff::normalize(s);
    ASSERT_EQ(n.sessions.size(), 1u);
    EXPECT_GE(n.sessions[0].payload_words, 4u);
    EXPECT_FALSE(n.sessions[0].restore_state);
}

TEST(DiffShrink, CleanScenarioDoesNotShrink) {
    const diff::ShrinkResult r = diff::shrink(stream_scenario(42));
    EXPECT_FALSE(r.diverged);
    EXPECT_EQ(r.runs, 1u);  // just the baseline
}

TEST(DiffShrink, MinimalReproUnderQuarter) {
    // Acceptance criterion: for an injected fault, the minimal reproducer
    // is <= 25% of the original scenario's SimB word count.
    diff::ShrinkOptions opt;
    opt.diff.inject = diff::DiffFault::kIsolationMissing;
    const scen::Scenario s = hand_scenario({clean_session(2, 120),
                                            clean_session(1, 150),
                                            clean_session(2, 200)});
    const diff::ShrinkResult r = diff::shrink(s, opt);
    ASSERT_TRUE(r.diverged);
    EXPECT_GT(r.original_words, 0u);
    EXPECT_LE(r.minimal_words * 4, r.original_words)
        << r.minimal_words << " of " << r.original_words << " words";

    // The minimal scenario still reproduces the same class of divergence.
    const diff::DiffOutcome replay = diff::run_diff(r.minimal, opt.diff);
    EXPECT_GT(replay.report.genuine(), 0u);
    EXPECT_GE(replay.report.genuine_on(diff::Side::kResim), 1u);
}

TEST(DiffShrink, DeterministicForFixedSeed) {
    diff::ShrinkOptions opt;
    opt.diff.inject = diff::DiffFault::kVmNoSigInit;
    const scen::Scenario s = stream_scenario(1234);
    const diff::ShrinkResult a = diff::shrink(s, opt);
    const diff::ShrinkResult b = diff::shrink(s, opt);
    ASSERT_TRUE(a.diverged);
    ASSERT_TRUE(b.diverged);
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.minimal_words, b.minimal_words);
    const diff::ReproBundle ba = diff::make_bundle(
        a.minimal, a.outcome.report, opt.diff.inject, a.original_words,
        a.minimal_words);
    const diff::ReproBundle bb = diff::make_bundle(
        b.minimal, b.outcome.report, opt.diff.inject, b.original_words,
        b.minimal_words);
    EXPECT_EQ(diff::repro_to_json(ba), diff::repro_to_json(bb));
}

// ---------------------------------------------------------------------------
// Reproducer artifacts

TEST(DiffRepro, JsonRoundTrip) {
    scen::StreamSession a = clean_session(2, 17);
    a.capture_first = true;
    a.capture_module = 1;
    a.dcr = scen::DcrTraffic::kWrite;
    scen::StreamSession b = clean_session(1, 9);
    b.corrupt = scen::Corrupt::kBitFlip;
    b.corrupt_pos = 3;
    b.corrupt_bit = 17;
    b.word_gap = 4;
    b.type2_header = false;
    scen::Scenario s = hand_scenario({a, b});
    s.name = "roundtrip";
    s.seed = 0xABCDEF0123456789ull;

    diff::ReproBundle in;
    in.scenario = s;
    in.inject = diff::DiffFault::kWrongModuleMap;
    in.original_words = 123;
    in.minimal_words = 31;
    in.genuine = {"probe on both: probe 1 mismatch"};

    const std::string j = diff::repro_to_json(in);
    diff::ReproBundle out;
    std::string err;
    ASSERT_TRUE(diff::repro_from_json(j, &out, &err)) << err;
    EXPECT_EQ(diff::repro_to_json(out), j);
    EXPECT_EQ(out.scenario.seed, s.seed);
    EXPECT_EQ(out.inject, in.inject);
    ASSERT_EQ(out.scenario.sessions.size(), 2u);
    EXPECT_EQ(out.scenario.sessions[1].corrupt, scen::Corrupt::kBitFlip);
    EXPECT_EQ(out.scenario.sessions[1].corrupt_bit, 17u);
    EXPECT_FALSE(out.scenario.sessions[1].type2_header);
    EXPECT_EQ(out.scenario.sessions[0].dcr, scen::DcrTraffic::kWrite);
}

TEST(DiffRepro, LoaderRejectsGarbage) {
    diff::ReproBundle out;
    std::string err;
    EXPECT_FALSE(diff::repro_from_json("not json at all", &out, &err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(diff::repro_from_json("{\"version\": 1}", &out, &err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(diff::repro_from_json(
        "{\"version\": 99, \"name\": \"x\", \"seed\": \"0x1\", \"kind\": "
        "\"stream\", \"inject\": \"none\", \"original_words\": 1, "
        "\"minimal_words\": 1, \"sessions\": [], \"genuine\": []}",
        &out, &err));
    EXPECT_FALSE(err.empty());
}

TEST(DiffRepro, SimbTextMatchesWordStream) {
    scen::StreamSession ss = clean_session(2, 2);
    ss.corrupt = scen::Corrupt::kXWord;  // exercises the all-X rendering
    ss.corrupt_pos = 0;
    const scen::Scenario s = hand_scenario({ss});
    const std::string text = diff::simb_to_text(s);
    EXPECT_NE(text.find("AA995566"), std::string::npos);  // SYNC
    EXPECT_NE(text.find("XXXXXXXX"), std::string::npos);  // the X word
    // One non-comment line per word.
    std::size_t lines = 0;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);) {
        if (!line.empty() && line[0] != '#') ++lines;
    }
    EXPECT_EQ(lines, diff::simb_word_count(s));
}

// ---------------------------------------------------------------------------
// Diff campaign

TEST(DiffCampaign, CleanSeedBatchZeroGenuine) {
    // Acceptance criterion: a 20-seed clean batch reports zero genuine
    // divergences.
    DiffCampaignConfig dc;
    dc.seed = 7;
    dc.count = 20;
    CampaignConfig cc;
    cc.jobs = 4;
    const CampaignResult res =
        CampaignRunner(cc).run(campaign::diff_batch_jobs(dc));
    ASSERT_EQ(res.records.size(), 20u);
    double genuine = 0.0;
    for (const JobRecord& r : res.records) {
        EXPECT_EQ(r.status, JobStatus::kPass)
            << r.name << ": " << r.report.verdict;
        genuine += metric(r, "genuine");
        EXPECT_GE(metric(r, "expected"), 0.0) << r.name;
    }
    EXPECT_EQ(genuine, 0.0);
}

TEST(DiffCampaign, InjectedFaultFlaggedAndShrunk) {
    const fs::path dir = fresh_dir("diff_campaign_repro");
    DiffCampaignConfig dc;
    dc.seed = 5;
    dc.count = 6;
    dc.inject = diff::DiffFault::kIsolationMissing;
    dc.repro_dir = dir.string();
    CampaignConfig cc;
    cc.jobs = 4;
    const CampaignResult res =
        CampaignRunner(cc).run(campaign::diff_batch_jobs(dc));

    double genuine = 0.0;
    unsigned shrunk = 0;
    std::string diverged_name;
    for (const JobRecord& r : res.records) {
        EXPECT_EQ(r.status, JobStatus::kPass)
            << r.name << ": " << r.report.verdict;
        genuine += metric(r, "genuine");
        if (metric(r, "shrunk_words") >= 0.0) {
            ++shrunk;
            diverged_name = r.name;
        }
    }
    ASSERT_GT(genuine, 0.0);
    ASSERT_GT(shrunk, 0u);

    // The reproducer pair exists and the JSON replays the divergence.
    const fs::path json = dir / (diverged_name + ".repro.json");
    const fs::path simb = dir / (diverged_name + ".simb");
    ASSERT_TRUE(fs::exists(json));
    ASSERT_TRUE(fs::exists(simb));
    diff::ReproBundle b;
    std::string err;
    ASSERT_TRUE(diff::load_repro_file(json.string(), &b, &err)) << err;
    EXPECT_EQ(b.inject, diff::DiffFault::kIsolationMissing);
    ASSERT_FALSE(b.scenario.sessions.empty());
    diff::DiffOptions opt;
    opt.inject = b.inject;
    const diff::DiffOutcome replay = diff::run_diff(b.scenario, opt);
    EXPECT_GT(replay.report.genuine(), 0u);
}

TEST(DiffCampaign, ShrunkReproIdenticalAcrossWorkerCounts) {
    // Satellite: same seed + divergence shrinks to a byte-identical minimal
    // reproducer no matter the worker count.
    const fs::path dir1 = fresh_dir("diff_det_w1");
    const fs::path dir4 = fresh_dir("diff_det_w4");
    for (const auto& [dir, workers] :
         {std::pair<fs::path, unsigned>{dir1, 1u}, {dir4, 4u}}) {
        DiffCampaignConfig dc;
        dc.seed = 5;
        dc.count = 4;
        dc.inject = diff::DiffFault::kVmNoSigInit;
        dc.repro_dir = dir.string();
        CampaignConfig cc;
        cc.jobs = workers;
        const CampaignResult res =
            CampaignRunner(cc).run(campaign::diff_batch_jobs(dc));
        for (const JobRecord& r : res.records) {
            EXPECT_EQ(r.status, JobStatus::kPass)
                << r.name << ": " << r.report.verdict;
        }
    }
    std::vector<fs::path> files1;
    for (const auto& e : fs::directory_iterator(dir1)) {
        files1.push_back(e.path().filename());
    }
    ASSERT_FALSE(files1.empty());
    std::size_t files4 = 0;
    for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir4)) {
        ++files4;
    }
    EXPECT_EQ(files1.size(), files4);
    for (const fs::path& f : files1) {
        ASSERT_TRUE(fs::exists(dir4 / f)) << f;
        EXPECT_EQ(slurp(dir1 / f), slurp(dir4 / f)) << f;
    }
}

TEST(DiffCampaign, WatchdogKillsHangingDiffJobAndRetries) {
    // Satellite: a deliberately hanging diff job is killed by the watchdog,
    // retried exactly the configured number of times, then recorded failed.
    SimJob job;
    job.name = "diff.hang";
    job.body = [](const campaign::JobContext& ctx) {
        const scen::Scenario sc = stream_scenario(3, /*max_sessions=*/1);
        diff::DiffOptions opt;
        opt.cancel = ctx.cancel_flag();
        // Loop forever unless cancelled; the wall-clock cap keeps a broken
        // watchdog from hanging the whole test run.
        const auto give_up =
            std::chrono::steady_clock::now() + std::chrono::seconds{20};
        while (!ctx.cancelled() &&
               std::chrono::steady_clock::now() < give_up) {
            (void)diff::run_diff(sc, opt);
        }
        campaign::JobReport rep;
        rep.pass = false;
        rep.verdict = "hung";
        return rep;
    };

    CampaignConfig cc;
    cc.jobs = 1;
    cc.timeout = std::chrono::milliseconds{20};
    cc.retries = 2;
    const CampaignResult res = CampaignRunner(cc).run({job});
    ASSERT_EQ(res.records.size(), 1u);
    const JobRecord& r = res.records[0];
    EXPECT_EQ(r.status, JobStatus::kTimeout);
    EXPECT_EQ(r.attempts, 3u);  // 1 initial + 2 retries
    EXPECT_FALSE(r.passed());
}
