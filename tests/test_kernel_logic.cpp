// Unit tests for the 4-state logic scalar and vector types.
#include <gtest/gtest.h>

#include <tuple>

#include "kernel/logic.hpp"
#include "kernel/lvec.hpp"

namespace rtlsim {
namespace {

TEST(Logic, CharacterRoundTrip) {
    EXPECT_EQ(to_char(Logic::L0), '0');
    EXPECT_EQ(to_char(Logic::L1), '1');
    EXPECT_EQ(to_char(Logic::X), 'x');
    EXPECT_EQ(to_char(Logic::Z), 'z');
    for (Logic v : {Logic::L0, Logic::L1, Logic::X, Logic::Z}) {
        EXPECT_EQ(logic_from_char(to_char(v)), v);
    }
    EXPECT_EQ(logic_from_char('?'), Logic::X);
}

TEST(Logic, Predicates) {
    EXPECT_TRUE(is01(Logic::L0));
    EXPECT_TRUE(is01(Logic::L1));
    EXPECT_FALSE(is01(Logic::X));
    EXPECT_FALSE(is01(Logic::Z));
    EXPECT_TRUE(is_unknown(Logic::Z));
    EXPECT_TRUE(is1(Logic::L1));
    EXPECT_FALSE(is1(Logic::X));
    EXPECT_TRUE(is0(Logic::L0));
    EXPECT_FALSE(is0(Logic::Z));
}

// Exhaustive truth tables for the 4-state gates: the Verilog-1364 tables.
using Triple = std::tuple<Logic, Logic, Logic>;

class LogicAnd : public ::testing::TestWithParam<Triple> {};
TEST_P(LogicAnd, Table) {
    auto [a, b, want] = GetParam();
    EXPECT_EQ(a & b, want);
    EXPECT_EQ(b & a, want) << "AND must be commutative";
}
INSTANTIATE_TEST_SUITE_P(
    Truth, LogicAnd,
    ::testing::Values(
        Triple{Logic::L0, Logic::L0, Logic::L0},
        Triple{Logic::L0, Logic::L1, Logic::L0},
        Triple{Logic::L0, Logic::X, Logic::L0},
        Triple{Logic::L0, Logic::Z, Logic::L0},
        Triple{Logic::L1, Logic::L1, Logic::L1},
        Triple{Logic::L1, Logic::X, Logic::X},
        Triple{Logic::L1, Logic::Z, Logic::X},
        Triple{Logic::X, Logic::X, Logic::X},
        Triple{Logic::X, Logic::Z, Logic::X},
        Triple{Logic::Z, Logic::Z, Logic::X}));

class LogicOr : public ::testing::TestWithParam<Triple> {};
TEST_P(LogicOr, Table) {
    auto [a, b, want] = GetParam();
    EXPECT_EQ(a | b, want);
    EXPECT_EQ(b | a, want) << "OR must be commutative";
}
INSTANTIATE_TEST_SUITE_P(
    Truth, LogicOr,
    ::testing::Values(
        Triple{Logic::L0, Logic::L0, Logic::L0},
        Triple{Logic::L0, Logic::L1, Logic::L1},
        Triple{Logic::L0, Logic::X, Logic::X},
        Triple{Logic::L0, Logic::Z, Logic::X},
        Triple{Logic::L1, Logic::L1, Logic::L1},
        Triple{Logic::L1, Logic::X, Logic::L1},
        Triple{Logic::L1, Logic::Z, Logic::L1},
        Triple{Logic::X, Logic::X, Logic::X},
        Triple{Logic::X, Logic::Z, Logic::X},
        Triple{Logic::Z, Logic::Z, Logic::X}));

class LogicXor : public ::testing::TestWithParam<Triple> {};
TEST_P(LogicXor, Table) {
    auto [a, b, want] = GetParam();
    EXPECT_EQ(a ^ b, want);
    EXPECT_EQ(b ^ a, want) << "XOR must be commutative";
}
INSTANTIATE_TEST_SUITE_P(
    Truth, LogicXor,
    ::testing::Values(
        Triple{Logic::L0, Logic::L0, Logic::L0},
        Triple{Logic::L0, Logic::L1, Logic::L1},
        Triple{Logic::L1, Logic::L1, Logic::L0},
        Triple{Logic::L0, Logic::X, Logic::X},
        Triple{Logic::L1, Logic::Z, Logic::X},
        Triple{Logic::X, Logic::Z, Logic::X}));

TEST(Logic, Not) {
    EXPECT_EQ(~Logic::L0, Logic::L1);
    EXPECT_EQ(~Logic::L1, Logic::L0);
    EXPECT_EQ(~Logic::X, Logic::X);
    EXPECT_EQ(~Logic::Z, Logic::X) << "inverting an undriven net yields X";
}

TEST(Logic, Resolution) {
    EXPECT_EQ(resolve(Logic::Z, Logic::L1), Logic::L1);
    EXPECT_EQ(resolve(Logic::L0, Logic::Z), Logic::L0);
    EXPECT_EQ(resolve(Logic::Z, Logic::Z), Logic::Z);
    EXPECT_EQ(resolve(Logic::L0, Logic::L1), Logic::X) << "driver conflict";
    EXPECT_EQ(resolve(Logic::L1, Logic::L1), Logic::L1);
    EXPECT_EQ(resolve(Logic::X, Logic::Z), Logic::X);
}

// ----------------------------------------------------------------- LVec

TEST(LVec, DefaultIsAllX) {
    LVec<8> v;
    EXPECT_TRUE(v.has_unknown());
    for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(v.bit(i), Logic::X);
    EXPECT_EQ(v.to_string(), "xxxxxxxx");
}

TEST(LVec, IntegerConstructionTruncates) {
    LVec<4> v{0xAB};
    EXPECT_TRUE(v.is_fully_defined());
    EXPECT_EQ(v.to_u64(), 0xBu);
}

TEST(LVec, BitSetGetRoundTrip) {
    LVec<4> v{0};
    v.set_bit(0, Logic::L1);
    v.set_bit(1, Logic::X);
    v.set_bit(2, Logic::Z);
    EXPECT_EQ(v.bit(0), Logic::L1);
    EXPECT_EQ(v.bit(1), Logic::X);
    EXPECT_EQ(v.bit(2), Logic::Z);
    EXPECT_EQ(v.bit(3), Logic::L0);
    EXPECT_EQ(v.to_string(), "0zx1");
}

TEST(LVec, BitwiseAndDominance) {
    // A defined 0 forces the result bit to 0 even against X.
    auto x = LVec<4>::all_x();
    LVec<4> zeros{0x0};
    EXPECT_EQ((x & zeros).to_string(), "0000");
    LVec<4> ones{0xF};
    EXPECT_EQ((x & ones).to_string(), "xxxx");
    EXPECT_EQ((LVec<4>{0b1100} & LVec<4>{0b1010}).to_u64(), 0b1000u);
}

TEST(LVec, BitwiseOrDominance) {
    auto x = LVec<4>::all_x();
    LVec<4> ones{0xF};
    EXPECT_EQ((x | ones).to_string(), "1111");
    LVec<4> zeros{0x0};
    EXPECT_EQ((x | zeros).to_string(), "xxxx");
    EXPECT_EQ((LVec<4>{0b1100} | LVec<4>{0b1010}).to_u64(), 0b1110u);
}

TEST(LVec, BitwiseXorPoisonsPerBit) {
    LVec<4> v{0b0011};
    LVec<4> m{0b0101};
    auto r = v ^ m;
    EXPECT_EQ(r.to_u64(), 0b0110u);
    v.set_bit(3, Logic::X);
    r = v ^ m;
    EXPECT_EQ(r.bit(3), Logic::X);
    EXPECT_EQ(r.bit(0), Logic::L0);
}

TEST(LVec, NotMapsZToX) {
    LVec<4> v{0};
    v.set_bit(1, Logic::Z);
    auto r = ~v;
    EXPECT_EQ(r.bit(0), Logic::L1);
    EXPECT_EQ(r.bit(1), Logic::X);
}

TEST(LVec, ArithmeticWholeResultX) {
    LVec<8> a{200};
    LVec<8> b{100};
    EXPECT_EQ((a + b).to_u64(), 44u) << "modular wrap at 8 bits";
    EXPECT_EQ((a - b).to_u64(), 100u);
    a.set_bit(0, Logic::X);
    EXPECT_TRUE((a + b) == LVec<8>::all_x());
    EXPECT_TRUE((a - b) == LVec<8>::all_x());
    EXPECT_TRUE((a * b) == LVec<8>::all_x());
}

TEST(LVec, Shifts) {
    LVec<8> v{0b1001};
    EXPECT_EQ((v << 2).to_u64(), 0b100100u);
    EXPECT_EQ((v >> 1).to_u64(), 0b100u);
    EXPECT_EQ((v << 8).to_u64(), 0u);
    v.set_bit(0, Logic::X);
    EXPECT_EQ((v << 1).bit(1), Logic::X) << "shifts move unknown bits";
}

TEST(LVec, LogicEquality) {
    LVec<8> a{42};
    LVec<8> b{42};
    EXPECT_EQ(logic_eq(a, b), Logic::L1);
    EXPECT_EQ(logic_eq(a, LVec<8>{41}), Logic::L0);
    b.set_bit(7, Logic::X);
    EXPECT_EQ(logic_eq(a, b), Logic::X);
}

TEST(LVec, Reductions) {
    EXPECT_EQ(LVec<4>{0}.reduce_or(), Logic::L0);
    EXPECT_EQ(LVec<4>{2}.reduce_or(), Logic::L1);
    EXPECT_EQ(LVec<4>::all_x().reduce_or(), Logic::X);
    LVec<4> half_x{0b0010};
    half_x.set_bit(3, Logic::X);
    EXPECT_EQ(half_x.reduce_or(), Logic::L1) << "a defined 1 dominates X";

    EXPECT_EQ(LVec<4>{0xF}.reduce_and(), Logic::L1);
    EXPECT_EQ(LVec<4>{0xE}.reduce_and(), Logic::L0);
    LVec<4> and_x{0xF};
    and_x.set_bit(2, Logic::X);
    EXPECT_EQ(and_x.reduce_and(), Logic::X);
    and_x.set_bit(0, Logic::L0);
    EXPECT_EQ(and_x.reduce_and(), Logic::L0) << "a defined 0 dominates X";
}

TEST(LVec, Width64Mask) {
    LVec<64> v{~std::uint64_t{0}};
    EXPECT_TRUE(v.is_fully_defined());
    EXPECT_EQ(v.to_u64(), ~std::uint64_t{0});
    EXPECT_EQ((v + LVec<64>{1}).to_u64(), 0u);
}

TEST(LVec, AllZIsDistinctFromAllX) {
    auto z = LVec<4>::all_z();
    auto x = LVec<4>::all_x();
    EXPECT_FALSE(z == x);
    EXPECT_EQ(z.to_string(), "zzzz");
    EXPECT_TRUE(z.has_unknown());
}

}  // namespace
}  // namespace rtlsim
