// Functional-coverage machinery: model shape, deterministic merge
// (associative + shard-order independent), ignore-bin semantics, and the
// event observer that fills the model from an obs event stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cover/coverage.hpp"
#include "cover/model.hpp"
#include "obs/event.hpp"
#include "rrm/rrm_harness.hpp"

namespace {

using namespace autovision;
using cover::Coverage;
using cover::Covergroup;
using obs::Event;
using obs::EventKind;
using obs::Source;

constexpr rtlsim::Time kPeriod = 10 * rtlsim::NS;

Event ev(EventKind k, rtlsim::Time t = 0, std::uint32_t a = 0,
         std::uint64_t b = 0) {
    Event e;
    e.time = t;
    e.kind = k;
    e.src = Source::kIcap;
    e.a = a;
    e.b = b;
    return e;
}

std::string json_of(const Coverage& cov) {
    std::ostringstream os;
    cov.write_json(os);
    return os.str();
}

// --------------------------------------------------------------- shape

TEST(CoverShape, ModelHasTheAdvertisedGroups) {
    Coverage cov = cover::make_model();
    for (const char* g :
         {"simb.seq", "xwin.len", "xwin.cross", "swap.trans", "fault.det",
          "irq.lat", "rrm.cross", "rrm.arb", "sw.iss"}) {
        EXPECT_NE(cov.find(g), nullptr) << g;
    }
    EXPECT_GT(cov.goal_bins(), 0u);
    EXPECT_EQ(cov.goal_hit(), 0u);
    EXPECT_EQ(cov.percent(), 0.0);
    // Every goal bin starts unhit.
    EXPECT_EQ(cov.unhit().size(), cov.goal_bins());
}

TEST(CoverShape, FaultCrossHasOneBinPerCatalogCell) {
    Coverage cov = cover::make_model();
    const Covergroup* det = cov.find("fault.det");
    ASSERT_NE(det, nullptr);
    // fault x {vm,resim} x {detected,passed}; exactly one outcome per
    // (fault, method) is the expected one, the other is an ignore bin.
    EXPECT_EQ(det->bins().size(), sys::kFaultCatalog.size() * 4);
    EXPECT_EQ(det->goal_bins(), sys::kFaultCatalog.size() * 2);
}

TEST(CoverShape, RrmCrossSpansRegionEnginePolicy) {
    Coverage cov = cover::make_model();
    const Covergroup* cross = cov.find("rrm.cross");
    ASSERT_NE(cross, nullptr);
    // 3 region-axis slots (r0, r1, r2p) x 4 engines x 3 policies.
    EXPECT_EQ(cross->bins().size(), 3u * 4u * 3u);
    EXPECT_NE(cross->find("r0.census.rr"), nullptr);
    EXPECT_NE(cross->find("r2p.flow.demand"), nullptr);
    const Covergroup* arb = cov.find("rrm.arb");
    ASSERT_NE(arb, nullptr);
    EXPECT_EQ(arb->bins().size(), 5u);
}

TEST(CoverShape, SyscallGroupSeparatesGoalsFromSurprises) {
    Coverage cov = cover::make_model();
    const Covergroup* sw = cov.find("sw.iss");
    ASSERT_NE(sw, nullptr);
    // One goal bin per host-IO service; in-ISR and unknown-number traps
    // are surprise (ignore) bins.
    EXPECT_EQ(sw->bins().size(), 6u);
    EXPECT_EQ(sw->goal_bins(), 4u);
    EXPECT_NE(sw->find("syscall.exit"), nullptr);
    ASSERT_NE(sw->find("syscall.in_isr"), nullptr);
    EXPECT_TRUE(sw->find("syscall.in_isr")->ignore);
    ASSERT_NE(sw->find("syscall.unknown"), nullptr);
    EXPECT_TRUE(sw->find("syscall.unknown")->ignore);
}

TEST(CoverObserve, SyscallEventsFillTheIssGroup) {
    Coverage cov = cover::make_model();
    std::vector<obs::Event> ev;
    const auto sc = [&ev](std::uint32_t num, std::uint8_t in_isr) {
        obs::Event e;
        e.time = 100 * (ev.size() + 1);
        e.kind = obs::EventKind::kSyscall;
        e.src = obs::Source::kCpu;
        e.a = num;
        e.region = in_isr;
        ev.push_back(e);
    };
    sc(1, 0);  // putchar
    sc(2, 0);  // clock
    sc(3, 0);  // yield
    sc(0, 0);  // exit
    sc(1, 1);  // putchar from an ISR (bug.sw.5's symptom)
    sc(42, 0); // unknown number (ENOSYS)
    cover::observe_events(cov, ev, 10 * rtlsim::NS);
    EXPECT_EQ(cov.hits("sw.iss", "syscall.putchar"), 2u);
    EXPECT_EQ(cov.hits("sw.iss", "syscall.clock"), 1u);
    EXPECT_EQ(cov.hits("sw.iss", "syscall.yield"), 1u);
    EXPECT_EQ(cov.hits("sw.iss", "syscall.exit"), 1u);
    EXPECT_EQ(cov.hits("sw.iss", "syscall.in_isr"), 1u);
    EXPECT_EQ(cov.hits("sw.iss", "syscall.unknown"), 1u);
}

TEST(CoverShape, EmptyCoverageIsTriviallyClosed) {
    Coverage cov;
    EXPECT_EQ(cov.goal_bins(), 0u);
    EXPECT_EQ(cov.percent(), 100.0);
}

// --------------------------------------------------------------- bins

TEST(CoverBins, IgnoreBinsAreTrackedButNotGoals) {
    Coverage cov;
    Covergroup& g = cov.add_group("g");
    g.add_bin("goal");
    g.add_bin("surprise", /*ignore=*/true);
    EXPECT_EQ(cov.goal_bins(), 1u);

    g.hit("surprise");
    EXPECT_EQ(cov.goal_hit(), 0u) << "ignore bins must not count as progress";
    EXPECT_EQ(cov.hits("g", "surprise"), 1u) << "but the hit is recorded";
    EXPECT_EQ(cov.percent(), 0.0);

    g.hit("goal");
    EXPECT_EQ(cov.goal_hit(), 1u);
    EXPECT_EQ(cov.percent(), 100.0);
}

TEST(CoverBins, NameAddressedHitToleratesUnknownBins) {
    Coverage cov;
    Covergroup& g = cov.add_group("g");
    g.add_bin("known");
    EXPECT_TRUE(g.hit("known"));
    EXPECT_FALSE(g.hit("unknown"));
    EXPECT_EQ(cov.hits("g", "known"), 1u);
}

TEST(CoverBins, UnhitNamesAreGroupSlashBinInModelOrder) {
    Coverage cov;
    Covergroup& g = cov.add_group("g");
    g.add_bin("a");
    g.add_bin("b");
    g.hit("a");
    const std::vector<std::string> u = cov.unhit();
    ASSERT_EQ(u.size(), 1u);
    EXPECT_EQ(u[0], "g/b");
}

// --------------------------------------------------------------- merge

TEST(CoverMerge, MergeIsElementwiseAddition) {
    Coverage a = cover::make_model();
    Coverage b = cover::make_model();
    a.find("simb.seq")->hit("canonical", 2);
    b.find("simb.seq")->hit("canonical", 3);
    b.find("xwin.len")->hit("le16");
    a += b;
    EXPECT_EQ(a.hits("simb.seq", "canonical"), 5u);
    EXPECT_EQ(a.hits("xwin.len", "le16"), 1u);
}

TEST(CoverMerge, MergeIsShardOrderIndependent) {
    // Shards with overlapping, distinct hit patterns.
    std::vector<Coverage> shards;
    for (unsigned i = 0; i < 5; ++i) {
        Coverage s = cover::make_model();
        s.find("simb.seq")->hit("canonical", i + 1);
        if (i % 2 == 0) s.find("xwin.len")->hit("17_128");
        if (i == 3) s.find("swap.trans")->hit("cie_to_me", 7);
        shards.push_back(std::move(s));
    }

    Coverage fwd = cover::make_model();
    for (const Coverage& s : shards) fwd += s;

    Coverage rev = cover::make_model();
    for (auto it = shards.rbegin(); it != shards.rend(); ++it) rev += *it;

    // A third order: odd shards first, then even.
    Coverage mixed = cover::make_model();
    for (unsigned i = 1; i < shards.size(); i += 2) mixed += shards[i];
    for (unsigned i = 0; i < shards.size(); i += 2) mixed += shards[i];

    EXPECT_TRUE(fwd == rev);
    EXPECT_TRUE(fwd == mixed);
    // Determinism all the way to the serialised report.
    EXPECT_EQ(json_of(fwd), json_of(rev));
    EXPECT_EQ(json_of(fwd), json_of(mixed));
}

TEST(CoverMerge, MergeIsAssociative) {
    Coverage a = cover::make_model();
    Coverage b = cover::make_model();
    Coverage c = cover::make_model();
    a.find("simb.seq")->hit("capture");
    b.find("simb.seq")->hit("restore", 2);
    c.find("irq.lat")->hit("gt512", 3);

    Coverage ab_c = cover::make_model();
    ab_c += a;
    ab_c += b;
    ab_c += c;

    Coverage bc = cover::make_model();
    bc += b;
    bc += c;
    Coverage a_bc = cover::make_model();
    a_bc += a;
    a_bc += bc;

    EXPECT_TRUE(ab_c == a_bc);
    EXPECT_EQ(json_of(ab_c), json_of(a_bc));
}

TEST(CoverMerge, ShapeMismatchThrows) {
    Coverage model = cover::make_model();
    Coverage other;
    other.add_group("simb.seq").add_bin("canonical");
    EXPECT_FALSE(model.same_shape(other));
    EXPECT_THROW(model += other, std::invalid_argument);

    // Same names but a different ignore flag is a different shape too.
    Coverage a;
    a.add_group("g").add_bin("x", /*ignore=*/false);
    Coverage b;
    b.add_group("g").add_bin("x", /*ignore=*/true);
    EXPECT_FALSE(a.same_shape(b));
    EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(CoverMerge, JsonIsByteIdenticalForEqualCoverage) {
    Coverage a = cover::make_model();
    Coverage b = cover::make_model();
    a.find("simb.seq")->hit("canonical", 4);
    b.find("simb.seq")->hit("canonical", 1);
    b.find("simb.seq")->hit("canonical", 3);
    EXPECT_TRUE(a == b);
    EXPECT_EQ(json_of(a), json_of(b));
}

// ------------------------------------------------------------ observer

TEST(CoverObserve, CanonicalSessionHitsTheSequenceBins) {
    Coverage cov = cover::make_model();
    const std::vector<Event> events = {
        ev(EventKind::kSync, 0),
        ev(EventKind::kFarWrite, 10, 1, 2),
        ev(EventKind::kFdriHeader, 20, /*count=*/16, /*type2=*/1),
        ev(EventKind::kPayloadBegin, 30),
        ev(EventKind::kPayloadEnd, 200, /*written=*/16),
        ev(EventKind::kDesync, 210),
    };
    cover::observe_events(cov, events, kPeriod);
    EXPECT_EQ(cov.hits("simb.seq", "canonical"), 1u);
    EXPECT_EQ(cov.hits("simb.seq", "type2_header"), 1u);
    EXPECT_EQ(cov.hits("simb.seq", "payload_medium"), 1u);
    EXPECT_EQ(cov.hits("simb.seq", "fdri_before_far"), 0u);
    EXPECT_EQ(cov.hits("simb.seq", "multi_session"), 0u);
}

TEST(CoverObserve, MalformedCodesMapToTheirBins) {
    Coverage cov = cover::make_model();
    const std::vector<Event> events = {
        ev(EventKind::kSync, 0),
        ev(EventKind::kMalformed, 10,
           static_cast<std::uint32_t>(obs::MalformedCode::kTruncatedPayload)),
        ev(EventKind::kAbort, 20),
        ev(EventKind::kMalformed, 30,
           static_cast<std::uint32_t>(
               obs::MalformedCode::kType2WithoutFdriHeader)),
        ev(EventKind::kMalformed, 40,
           static_cast<std::uint32_t>(obs::MalformedCode::kXOnIcap)),
        ev(EventKind::kDesync, 50),
    };
    cover::observe_events(cov, events, kPeriod);
    EXPECT_EQ(cov.hits("simb.seq", "malformed.truncated"), 1u);
    EXPECT_EQ(cov.hits("simb.seq", "malformed.type2_no_header"), 1u);
    EXPECT_EQ(cov.hits("simb.seq", "malformed.x_on_icap"), 1u);
    EXPECT_EQ(cov.hits("simb.seq", "abort"), 1u);
    EXPECT_EQ(cov.hits("simb.seq", "canonical"), 0u)
        << "a malformed session is not canonical";
}

TEST(CoverObserve, XWindowLengthAndOverlapCross) {
    Coverage cov = cover::make_model();
    const std::vector<Event> events = {
        // 100-cycle window with a DCR read inside.
        ev(EventKind::kXWindowBegin, 0),
        ev(EventKind::kDcrRead, 40 * kPeriod),
        ev(EventKind::kXWindowEnd, 100 * kPeriod),
        // 8-cycle quiet window.
        ev(EventKind::kXWindowBegin, 200 * kPeriod),
        ev(EventKind::kXWindowEnd, 208 * kPeriod),
        // DCR write outside any window must not count.
        ev(EventKind::kDcrWrite, 300 * kPeriod),
    };
    cover::observe_events(cov, events, kPeriod);
    EXPECT_EQ(cov.hits("xwin.len", "17_128"), 1u);
    EXPECT_EQ(cov.hits("xwin.len", "le16"), 1u);
    EXPECT_EQ(cov.hits("xwin.cross", "dcr_read"), 1u);
    EXPECT_EQ(cov.hits("xwin.cross", "quiet"), 1u);
    EXPECT_EQ(cov.hits("xwin.cross", "dcr_write"), 0u);
}

TEST(CoverObserve, SwapTransitionsTrackTheResidentModule) {
    Coverage cov = cover::make_model();
    const std::vector<Event> events = {
        ev(EventKind::kSwap, 0, 1, /*module=*/2),   // first swap: ME
        ev(EventKind::kSwap, 10, 1, /*module=*/1),  // ME -> CIE
        ev(EventKind::kSwap, 20, 1, /*module=*/1),  // CIE -> CIE
        ev(EventKind::kSwap, 30, 1, /*module=*/2),  // CIE -> ME
    };
    cover::observe_events(cov, events, kPeriod);
    EXPECT_EQ(cov.hits("swap.trans", "first_me"), 1u);
    EXPECT_EQ(cov.hits("swap.trans", "me_to_cie"), 1u);
    EXPECT_EQ(cov.hits("swap.trans", "cie_to_cie"), 1u);
    EXPECT_EQ(cov.hits("swap.trans", "cie_to_me"), 1u);
    EXPECT_EQ(cov.hits("swap.trans", "first_cie"), 0u);
}

TEST(CoverObserve, IrqLatencyBinsFromRaiseToAck) {
    Coverage cov = cover::make_model();
    const std::vector<Event> events = {
        ev(EventKind::kIrqRaise, 0),
        ev(EventKind::kIrqAck, 64 * kPeriod),
        ev(EventKind::kIrqRaise, 1000 * kPeriod),
        ev(EventKind::kIrqAck, 1700 * kPeriod),
    };
    cover::observe_events(cov, events, kPeriod);
    EXPECT_EQ(cov.hits("irq.lat", "33_128"), 1u);
    EXPECT_EQ(cov.hits("irq.lat", "gt512"), 1u);
}

TEST(CoverObserve, RrmRunFillsTheRegionEnginePolicyCross) {
    Coverage cov = cover::make_model();
    rrm::RrmConfig cfg;
    cfg.policy = rrm::Policy::kDeadline;
    cfg.grant = rrm::IcapArbiter::Grant::kPriority;
    rrm::RrmResult res;
    Event j0 = ev(EventKind::kRegionJob, 100,
                  static_cast<std::uint32_t>(rrm::EngineKind::kCensus));
    j0.region = 0;
    Event j3 = ev(EventKind::kRegionJob, 200,
                  static_cast<std::uint32_t>(rrm::EngineKind::kFlow));
    j3.region = 3;  // regions >= 2 fold into the r2p axis slot
    res.events = {j0, j3};
    res.arb_max_wait = {0, 7};  // one region waited: contended
    cover::observe_rrm(cov, cfg, res);
    EXPECT_EQ(cov.hits("rrm.cross", "r0.census.deadline"), 1u);
    EXPECT_EQ(cov.hits("rrm.cross", "r2p.flow.deadline"), 1u);
    EXPECT_EQ(cov.hits("rrm.arb", "priority.contended"), 1u);
    EXPECT_EQ(cov.hits("rrm.arb", "priority.uncontended"), 0u);
    EXPECT_EQ(cov.hits("rrm.arb", "vm_swap"), 0u);
}

TEST(CoverObserve, VirtualMultiplexingRunHitsTheVmSwapBin) {
    Coverage cov = cover::make_model();
    rrm::RrmConfig cfg;
    cfg.vm_mode = true;
    rrm::RrmResult res;
    res.sessions = {2, 1};
    cover::observe_rrm(cov, cfg, res);
    EXPECT_EQ(cov.hits("rrm.arb", "vm_swap"), 1u);
    EXPECT_EQ(cov.hits("rrm.arb", "fair.uncontended"), 0u)
        << "a VM run never exercises the ICAP arbiter";
}

TEST(CoverObserve, DetectionOutcomesLandInTheCatalogCross) {
    Coverage cov = cover::make_model();
    cover::observe_detection(cov, sys::Fault::kDpr1NoIsolation,
                             cover::DetectMethod::kResim, /*detected=*/true);
    cover::observe_detection(cov, sys::Fault::kDpr1NoIsolation,
                             cover::DetectMethod::kVm, /*detected=*/false);
    EXPECT_EQ(cov.hits("fault.det", "bug.dpr.1.resim.detected"), 1u);
    EXPECT_EQ(cov.hits("fault.det", "bug.dpr.1.vm.passed"), 1u);
    EXPECT_EQ(cov.goal_hit(), 2u)
        << "a ReSim-only bug detected by ReSim and missed by VM is the "
           "expected outcome on both axes";
}

}  // namespace
