// Unit tests for the reconfiguration machinery: the region boundary
// (mux / error injection / isolation) and the IcapCTRL.
#include <gtest/gtest.h>

#include <vector>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/icap_ctrl.hpp"
#include "recon/isolation.hpp"
#include "recon/rr_boundary.hpp"

namespace autovision {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;
using rtlsim::Word;

constexpr rtlsim::Time kClk = 10 * NS;

// ------------------------------------------------------------ RrBoundary

struct BoundaryTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 50000}};
    rtlsim::Signal<Logic> done_line{sch, "done_line", Logic::L0};
    EngineRegs regs{sch, "regs", clk.out, 0x60};
    CensusEngine cie{sch, "cie", clk.out, rst.out, regs};
    RrBoundary rr{sch, "rr", plb.master(0), done_line};

    BoundaryTb() {
        plb.attach_slave(mem);
        rr.add_module(cie);
    }
    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }
};

TEST(RrBoundary, EmptyRegionDrivesX) {
    BoundaryTb tb;
    tb.run_cycles(5);
    EXPECT_EQ(tb.plb.master(0).req.read(), Logic::X);
    EXPECT_TRUE(tb.plb.master(0).addr.read().has_unknown());
    EXPECT_EQ(tb.done_line.read(), Logic::X);
    EXPECT_TRUE(tb.sch.has_diag_from("plb")) << "bus checker flags the X";
}

TEST(RrBoundary, SelectedModuleDrivesIdleLevels) {
    BoundaryTb tb;
    tb.rr.select(0);
    tb.run_cycles(5);
    EXPECT_EQ(tb.plb.master(0).req.read(), Logic::L0);
    EXPECT_EQ(tb.done_line.read(), Logic::L0);
    EXPECT_EQ(tb.rr.selected(), 0);
}

TEST(RrBoundary, ReconfiguringInjectsXByDefault) {
    BoundaryTb tb;
    tb.rr.select(0);
    tb.run_cycles(5);
    ASSERT_EQ(tb.plb.master(0).req.read(), Logic::L0);
    tb.sch.schedule_in(0, [&] { tb.rr.set_reconfiguring(true); });
    tb.run_cycles(3);
    EXPECT_EQ(tb.plb.master(0).req.read(), Logic::X);
    EXPECT_EQ(tb.done_line.read(), Logic::X);
    tb.sch.schedule_in(0, [&] { tb.rr.set_reconfiguring(false); });
    tb.run_cycles(3);
    EXPECT_EQ(tb.plb.master(0).req.read(), Logic::L0);
}

TEST(RrBoundary, IsolationClampsInjectedErrors) {
    BoundaryTb tb;
    Isolation iso(tb.sch, "iso", 0x58);
    tb.rr.set_isolation_signal(iso.isolate);
    tb.rr.select(0);
    tb.run_cycles(5);
    // Driver sequence: isolate, then reconfigure.
    iso.dcr_write(0x58, Word{1});
    tb.sch.schedule_in(0, [&] { tb.rr.set_reconfiguring(true); });
    tb.run_cycles(3);
    EXPECT_EQ(tb.plb.master(0).req.read(), Logic::L0)
        << "isolation keeps the static region clean";
    EXPECT_EQ(tb.done_line.read(), Logic::L0);
    // Release in the right order.
    tb.sch.schedule_in(0, [&] { tb.rr.set_reconfiguring(false); });
    tb.run_cycles(3);
    iso.dcr_write(0x58, Word{0});
    tb.run_cycles(3);
    EXPECT_EQ(tb.plb.master(0).req.read(), Logic::L0);
    EXPECT_EQ(iso.writes(), 2u);
}

/// ReSim's documented extension point: a custom error source.
struct StuckHighInjector final : ErrorInjector {
    void inject(RrOutputs& o) override {
        o = RrOutputs::idle();
        o.req = Logic::L1;          // spurious request
        o.addr = Word{0xDEAD'BEEF};  // to nowhere
        o.nbeats = rtlsim::LVec<16>{1};
    }
    [[nodiscard]] const char* name() const override { return "stuck-high"; }
};

TEST(RrBoundary, ErrorInjectorIsOverridable) {
    BoundaryTb tb;
    tb.rr.set_error_injector(std::make_unique<StuckHighInjector>());
    tb.rr.select(0);
    tb.run_cycles(5);
    tb.sch.schedule_in(0, [&] { tb.rr.set_reconfiguring(true); });
    tb.run_cycles(5);
    EXPECT_EQ(tb.plb.master(0).req.read(), Logic::L1)
        << "custom injector drives a spurious request";
    // The spurious request decodes to nowhere: the bus flags it.
    EXPECT_TRUE(tb.sch.has_diag_from("plb"));
    EXPECT_STREQ(tb.rr.error_injector().name(), "stuck-high");
}

TEST(RrBoundary, ReconfiguringFlagIsObservable) {
    BoundaryTb tb;
    const bool* flag = tb.rr.reconfiguring_flag();
    EXPECT_FALSE(*flag);
    tb.rr.set_reconfiguring(true);
    EXPECT_TRUE(*flag);
    tb.rr.set_reconfiguring(false);
    EXPECT_FALSE(*flag);
}

// -------------------------------------------------------------- IcapCtrl

/// Records every word written to the ICAP.
struct RecordingIcap final : IcapPortIf {
    std::vector<std::uint32_t> words;
    std::vector<bool> defined;
    void icap_write(Word w) override {
        words.push_back(static_cast<std::uint32_t>(w.to_u64()));
        defined.push_back(w.is_fully_defined());
    }
};

struct IcapTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb;
    RecordingIcap icap;
    IcapCtrl ctrl;

    explicit IcapTb(IcapCtrl::Config cfg, unsigned bus_max_burst = 16)
        : plb(sch, "plb", clk.out, rst.out,
              Plb::Config{1, bus_max_burst, 50000}),
          ctrl(sch, "icapctrl", clk.out, rst.out, plb.master(0), icap, cfg) {
        plb.attach_slave(mem);
    }

    void stage_bitstream(std::uint32_t addr, unsigned nwords) {
        for (unsigned i = 0; i < nwords; ++i) {
            mem.poke_u32(addr + 4 * i, 0xB000'0000 + i);
        }
    }

    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }

    void start(std::uint32_t addr, std::uint32_t size) {
        ctrl.dcr_write(0x52, Word{addr});
        ctrl.dcr_write(0x53, Word{size});
        ctrl.dcr_write(0x50, Word{1});
    }
};

TEST(IcapCtrl, SharedModeTransfersFullBitstream) {
    IcapTb tb(IcapCtrl::Config{});  // shared mode, bytes, div 4
    tb.stage_bitstream(0x8000, 100);
    tb.run_cycles(5);
    tb.start(0x8000, 100 * 4);
    tb.run_cycles(100 * 4 + 600);
    EXPECT_FALSE(tb.ctrl.busy());
    ASSERT_EQ(tb.icap.words.size(), 100u);
    for (unsigned i = 0; i < 100; ++i) {
        EXPECT_EQ(tb.icap.words[i], 0xB0000000 + i);
    }
    EXPECT_EQ(tb.ctrl.dcr_read(0x51).to_u64() & 2u, 2u) << "done bit";
    EXPECT_EQ(tb.ctrl.fifo_overflows(), 0u);
}

TEST(IcapCtrl, DoneIrqPulsesOnce) {
    IcapTb tb(IcapCtrl::Config{});
    tb.stage_bitstream(0x8000, 20);
    int pulses = 0;
    rtlsim::Process mon(tb.sch, "mon", [&] { ++pulses; });
    tb.ctrl.done_irq.add_listener(mon, rtlsim::Edge::Pos);
    tb.run_cycles(5);
    tb.start(0x8000, 20 * 4);
    tb.run_cycles(800);
    EXPECT_EQ(pulses, 1);
}

TEST(IcapCtrl, OriginalWordCountIpInterpretsSizeAsWords) {
    IcapCtrl::Config cfg;
    cfg.size_in_bytes = false;  // original IP
    cfg.clk_div = 1;
    IcapTb tb(cfg);
    tb.stage_bitstream(0x8000, 64);
    tb.run_cycles(5);
    tb.start(0x8000, 64);  // 64 *words*
    tb.run_cycles(2000);
    EXPECT_EQ(tb.icap.words.size(), 64u);
}

// The bug.dpr.5 mechanism: driver writes a word count to a byte-count IP.
TEST(IcapCtrl, SizeUnitMismatchTruncatesTransfer) {
    IcapTb tb(IcapCtrl::Config{});  // modified IP: size in bytes
    tb.stage_bitstream(0x8000, 64);
    tb.run_cycles(5);
    tb.start(0x8000, 64);  // stale driver: writes words
    tb.run_cycles(2000);
    EXPECT_FALSE(tb.ctrl.busy());
    EXPECT_EQ(tb.icap.words.size(), 16u) << "quarter of the bitstream";
}

// The bug.dpr.4 mechanism: point-to-point IP on a shared bus.
TEST(IcapCtrl, P2pModeOnSharedBusHangsAndReports) {
    IcapCtrl::Config cfg;
    cfg.p2p_mode = true;
    cfg.clk_div = 1;
    IcapTb tb(cfg, /*bus_max_burst=*/16);
    tb.stage_bitstream(0x8000, 256);
    tb.run_cycles(5);
    tb.start(0x8000, 256 * 4);
    tb.run_cycles(5000);
    EXPECT_TRUE(tb.ctrl.busy()) << "transfer never completes";
    EXPECT_EQ(tb.icap.words.size(), 16u) << "one truncated burst only";
    EXPECT_TRUE(tb.sch.has_diag_from("plb")) << "truncation reported";
}

// The same IP works on its original point-to-point link.
TEST(IcapCtrl, P2pModeOnDedicatedLinkWorks) {
    IcapCtrl::Config cfg;
    cfg.p2p_mode = true;
    cfg.clk_div = 1;  // original fast configuration clock
    IcapTb tb(cfg, /*bus_max_burst=*/0);
    tb.stage_bitstream(0x8000, 256);
    tb.run_cycles(5);
    tb.start(0x8000, 256 * 4);
    tb.run_cycles(4000);
    EXPECT_FALSE(tb.ctrl.busy());
    EXPECT_EQ(tb.icap.words.size(), 256u);
    EXPECT_EQ(tb.ctrl.fifo_overflows(), 0u);
}

// Slowing the configuration clock under the P2P IP overflows the FIFO —
// the "different clocking scheme" side of the modified design.
TEST(IcapCtrl, P2pWithSlowConfigClockOverflowsFifo) {
    IcapCtrl::Config cfg;
    cfg.p2p_mode = true;
    cfg.clk_div = 4;
    cfg.fifo_depth = 8;
    IcapTb tb(cfg, /*bus_max_burst=*/0);
    tb.stage_bitstream(0x8000, 128);
    tb.run_cycles(5);
    tb.start(0x8000, 128 * 4);
    tb.run_cycles(6000);
    EXPECT_GT(tb.ctrl.fifo_overflows(), 0u);
    EXPECT_TRUE(tb.sch.has_diag_from("icapctrl"));
}

TEST(IcapCtrl, AbortStopsTransfer) {
    IcapTb tb(IcapCtrl::Config{});
    tb.stage_bitstream(0x8000, 200);
    tb.run_cycles(5);
    tb.start(0x8000, 200 * 4);
    tb.run_cycles(100);
    ASSERT_TRUE(tb.ctrl.busy());
    tb.ctrl.dcr_write(0x50, Word{2});  // abort
    tb.run_cycles(20);
    EXPECT_FALSE(tb.ctrl.busy());
    EXPECT_LT(tb.icap.words.size(), 200u);
}

TEST(IcapCtrl, ZeroSizeReportsAndCompletes) {
    IcapTb tb(IcapCtrl::Config{});
    tb.run_cycles(5);
    tb.start(0x8000, 0);
    tb.run_cycles(50);
    EXPECT_FALSE(tb.ctrl.busy());
    EXPECT_TRUE(tb.sch.has_diag_from("icapctrl"));
}

TEST(IcapCtrl, BackToBackTransfers) {
    IcapCtrl::Config cfg;
    cfg.clk_div = 1;
    IcapTb tb(cfg);
    tb.stage_bitstream(0x8000, 32);
    tb.stage_bitstream(0xA000, 32);
    tb.run_cycles(5);
    tb.start(0x8000, 32 * 4);
    tb.run_cycles(1500);
    ASSERT_FALSE(tb.ctrl.busy());
    tb.ctrl.dcr_write(0x51, Word{2});  // clear done
    tb.start(0xA000, 32 * 4);
    tb.run_cycles(1500);
    EXPECT_FALSE(tb.ctrl.busy());
    EXPECT_EQ(tb.icap.words.size(), 64u);
    EXPECT_EQ(tb.ctrl.words_to_icap(), 64u);
}

// Sweep: transfer size x FIFO depth x clock divider in the safe (shared)
// configuration must always deliver every word in order.
using IcapSweepParam = std::tuple<unsigned, unsigned, unsigned>;
class IcapSweep : public ::testing::TestWithParam<IcapSweepParam> {};

TEST_P(IcapSweep, DeliversAllWordsInOrder) {
    const auto [words, fifo, div] = GetParam();
    IcapCtrl::Config cfg;
    cfg.fifo_depth = fifo;
    cfg.clk_div = div;
    cfg.burst_words = std::min(16u, fifo);
    IcapTb tb(cfg);
    tb.stage_bitstream(0x8000, words);
    tb.run_cycles(5);
    tb.start(0x8000, words * 4);
    tb.run_cycles(60 + words * (div + 10));
    ASSERT_EQ(tb.icap.words.size(), words);
    for (unsigned i = 0; i < words; ++i) {
        EXPECT_EQ(tb.icap.words[i], 0xB0000000 + i);
    }
    EXPECT_EQ(tb.ctrl.fifo_overflows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, IcapSweep,
    ::testing::Combine(::testing::Values(1u, 16u, 17u, 100u),
                       ::testing::Values(8u, 16u, 32u),
                       ::testing::Values(1u, 4u)));

}  // namespace
}  // namespace autovision
