// Micro-tests for the calendar-queue time wheel (kernel/event.hpp) through
// its only production client, the Scheduler. These pin the ordering
// contract the old std::map wheel provided — ascending time, FIFO within a
// timestamp — across every structural path: ring buckets, the far-future
// overflow map, the ring/overflow boundary, and same-time rescheduling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/kernel.hpp"

namespace {

using rtlsim::CalendarQueue;
using rtlsim::NS;
using rtlsim::Scheduler;
using rtlsim::Time;
using rtlsim::TimedEvent;
using rtlsim::US;

/// An intrusive event that appends its tag to a shared log when fired.
class TagEvent final : public TimedEvent {
public:
    TagEvent(std::vector<int>& log, int tag) : log_(log), tag_(tag) {}

private:
    void fire() override { log_.push_back(tag_); }
    std::vector<int>& log_;
    int tag_;
};

// The ring covers 256 buckets of 4.096 ns each (~1.05 us); anything beyond
// that horizon from the current time goes through the overflow map.
constexpr Time kBeyondHorizon = 2 * US;

TEST(CalendarQueue, SameTimestepIsFifo) {
    Scheduler sch;
    std::vector<int> log;
    for (int i = 0; i < 8; ++i) {
        sch.schedule_at(10 * NS, [&log, i] { log.push_back(i); });
    }
    EXPECT_TRUE(sch.advance());
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(sch.stats.time_steps, 1u);
    EXPECT_EQ(sch.stats.timed_events, 8u);
}

TEST(CalendarQueue, SameTimestepFifoMixesClosureAndIntrusiveEvents) {
    Scheduler sch;
    std::vector<int> log;
    TagEvent e1(log, 1);
    TagEvent e3(log, 3);
    sch.schedule_at(10 * NS, [&log] { log.push_back(0); });
    sch.schedule_event(10 * NS, e1);
    sch.schedule_at(10 * NS, [&log] { log.push_back(2); });
    sch.schedule_event(10 * NS, e3);
    EXPECT_TRUE(e1.pending());
    EXPECT_TRUE(sch.advance());
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_FALSE(e1.pending());
}

TEST(CalendarQueue, FarFutureEventsTakeTheOverflowPath) {
    Scheduler sch;
    std::vector<int> log;
    // Far first (overflow), then near (ring): must still fire time-ordered.
    sch.schedule_at(kBeyondHorizon, [&log] { log.push_back(2); });
    sch.schedule_at(5 * kBeyondHorizon, [&log] { log.push_back(3); });
    sch.schedule_at(10 * NS, [&log] { log.push_back(0); });
    sch.schedule_at(20 * NS, [&log] { log.push_back(1); });
    sch.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(sch.now(), 5 * kBeyondHorizon);
    EXPECT_EQ(sch.stats.time_steps, 4u);
}

TEST(CalendarQueue, OverflowKeepsSameTimeFifo) {
    Scheduler sch;
    std::vector<int> log;
    for (int i = 0; i < 4; ++i) {
        sch.schedule_at(kBeyondHorizon, [&log, i] { log.push_back(i); });
    }
    sch.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CalendarQueue, RingOverflowBoundaryKeepsSameTimeFifo) {
    Scheduler sch;
    std::vector<int> log;
    // First event lands in the overflow (beyond the horizon at schedule
    // time); the second is scheduled for the same timestamp once the window
    // has moved close enough for the ring. Scheduling order must win.
    sch.schedule_at(kBeyondHorizon, [&log] { log.push_back(0); });
    sch.schedule_at(kBeyondHorizon - 100 * NS, [&] {
        sch.schedule_at(kBeyondHorizon, [&log] { log.push_back(1); });
    });
    sch.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1}));
}

TEST(CalendarQueue, EmptyRingJumpsStraightToOverflow) {
    Scheduler sch;
    bool fired = false;
    sch.schedule_at(7 * kBeyondHorizon + 3, [&] { fired = true; });
    EXPECT_TRUE(sch.advance());
    EXPECT_TRUE(fired);
    EXPECT_EQ(sch.now(), 7 * kBeyondHorizon + 3);
    EXPECT_FALSE(sch.advance());
}

// schedule_at(now()) — e.g. from a fired event or a settling process —
// lands in a *new* timestep at the same timestamp: now() is unchanged but
// time_steps advances, exactly as with the old per-timestamp map entries.
TEST(CalendarQueue, ScheduleAtNowRunsInANewTimestepAtTheSameTime) {
    Scheduler sch;
    std::vector<int> log;
    sch.schedule_at(10 * NS, [&] {
        log.push_back(0);
        sch.schedule_at(sch.now(), [&] {
            log.push_back(1);
            EXPECT_EQ(sch.now(), 10 * NS);
        });
    });
    sch.schedule_at(20 * NS, [&log] { log.push_back(2); });
    EXPECT_TRUE(sch.advance());
    EXPECT_EQ(sch.now(), 10 * NS);
    EXPECT_EQ(log, (std::vector<int>{0}));
    EXPECT_TRUE(sch.advance());  // the schedule-at-now event, time unchanged
    EXPECT_EQ(sch.now(), 10 * NS);
    EXPECT_EQ(log, (std::vector<int>{0, 1}));
    EXPECT_EQ(sch.stats.time_steps, 2u);
    EXPECT_TRUE(sch.advance());
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
}

TEST(CalendarQueue, ScheduleAtNowAfterRunUntilIsNotLost) {
    Scheduler sch;
    rtlsim::Clock clk(sch, "clk", 10 * NS);
    sch.run_until(50 * NS);  // lookahead peeked past 50 ns here
    bool fired = false;
    sch.schedule_in(0, [&] { fired = true; });
    sch.run_until(80 * NS);
    EXPECT_TRUE(fired);
}

// A stop request made by an event does not cut the current timestep short:
// the rest of the chain fires and the deltas settle (matching the old
// kernel, where the timestep's vector was already popped). Only the *next*
// advance() observes the stop.
TEST(CalendarQueue, StopRequestMidTimestepCompletesTheStep) {
    Scheduler sch;
    std::vector<int> log;
    sch.schedule_at(10 * NS, [&] {
        log.push_back(0);
        sch.request_stop("tb.watchdog");
    });
    sch.schedule_at(10 * NS, [&log] { log.push_back(1); });
    sch.schedule_at(20 * NS, [&log] { log.push_back(2); });  // never fires
    sch.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1}));
    EXPECT_TRUE(sch.stop_requested());
    EXPECT_EQ(sch.stop_reason(), "tb.watchdog");
    EXPECT_EQ(sch.now(), 10 * NS);
    EXPECT_FALSE(sch.advance());
}

TEST(CalendarQueue, IntrusiveEventReschedulesItselfFromFire) {
    Scheduler sch;
    struct Repeater final : TimedEvent {
        explicit Repeater(Scheduler& s) : sch(s) {}
        void fire() override {
            ++count;
            EXPECT_FALSE(pending());
            if (count < 5) sch.schedule_event(sch.now() + 10 * NS, *this);
        }
        Scheduler& sch;
        int count = 0;
    } rep(sch);
    sch.schedule_event(10 * NS, rep);
    sch.run();
    EXPECT_EQ(rep.count, 5);
    EXPECT_EQ(sch.now(), 50 * NS);
    EXPECT_EQ(sch.stats.timed_events, 5u);
}

TEST(CalendarQueue, ClockTicksExactEdgesThroughTheWheel) {
    Scheduler sch;
    rtlsim::Clock clk(sch, "clk", 10 * NS);
    int rising = 0;
    rtlsim::Process p(sch, "count", [&rising] { ++rising; });
    clk.out.add_listener(p, rtlsim::Edge::Pos);
    sch.run_until(100 * 10 * NS);
    EXPECT_EQ(rising, 100);
    EXPECT_EQ(sch.stats.timed_events, 200u);  // two edges per period
}

TEST(CalendarQueue, PooledClosureNodesAreRecycled) {
    Scheduler sch;
    // A self-rescheduling closure chain runs at a steady state with one
    // pooled node; interleave a second source to exercise the free list.
    int a = 0;
    int b = 0;
    std::function<void()> tick_a = [&] {
        if (++a < 1000) sch.schedule_in(10 * NS, tick_a);
    };
    std::function<void()> tick_b = [&] {
        if (++b < 500) sch.schedule_in(20 * NS, tick_b);
    };
    sch.schedule_in(10 * NS, tick_a);
    sch.schedule_in(20 * NS, tick_b);
    sch.run();
    EXPECT_EQ(a, 1000);
    EXPECT_EQ(b, 500);
}

TEST(CalendarQueue, RunUntilStopsAtRequestedTime) {
    Scheduler sch;
    rtlsim::Clock clk(sch, "clk", 10 * NS);
    sch.run_until(33 * NS);
    EXPECT_EQ(sch.now(), 33 * NS);
    sch.run_until(47 * NS);
    EXPECT_EQ(sch.now(), 47 * NS);
    // Events strictly after the limit stay queued.
    EXPECT_EQ(sch.stats.timed_events, 9u);  // edges at 5,10,...,45 ns
}

}  // namespace
