// Micro-tests for the calendar-queue time wheel (kernel/event.hpp) through
// its only production client, the Scheduler. These pin the ordering
// contract the old std::map wheel provided — ascending time, FIFO within a
// timestamp — across every structural path: ring buckets, the far-future
// overflow map, the ring/overflow boundary, and same-time rescheduling.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "kernel/kernel.hpp"
#include "kernel/prng.hpp"

namespace rtlsim {

/// White-box driver for testing CalendarQueue without a Scheduler: primes
/// the intrusive fields the way Scheduler::schedule_* does and walks the
/// FIFO chain pop_step() hands back. Declared a friend in event.hpp so the
/// production fields stay private.
struct EventTestAccess {
    static void prime(TimedEvent& e, Time t) {
        e.time_ = t;
        e.pending_ = true;
        e.next_ = nullptr;
    }
    [[nodiscard]] static TimedEvent* next(const TimedEvent& e) {
        return e.next_;
    }
    static void retire(TimedEvent& e) {
        e.pending_ = false;
        e.next_ = nullptr;
    }
};

}  // namespace rtlsim

namespace {

using rtlsim::CalendarQueue;
using rtlsim::NS;
using rtlsim::Scheduler;
using rtlsim::Time;
using rtlsim::TimedEvent;
using rtlsim::US;

/// An intrusive event that appends its tag to a shared log when fired.
class TagEvent final : public TimedEvent {
public:
    TagEvent(std::vector<int>& log, int tag) : log_(log), tag_(tag) {}

private:
    void fire() override { log_.push_back(tag_); }
    std::vector<int>& log_;
    int tag_;
};

// The ring covers 256 buckets of 4.096 ns each (~1.05 us); anything beyond
// that horizon from the current time goes through the overflow map.
constexpr Time kBeyondHorizon = 2 * US;

TEST(CalendarQueue, SameTimestepIsFifo) {
    Scheduler sch;
    std::vector<int> log;
    for (int i = 0; i < 8; ++i) {
        sch.schedule_at(10 * NS, [&log, i] { log.push_back(i); });
    }
    EXPECT_TRUE(sch.advance());
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(sch.stats.time_steps, 1u);
    EXPECT_EQ(sch.stats.timed_events, 8u);
}

TEST(CalendarQueue, SameTimestepFifoMixesClosureAndIntrusiveEvents) {
    Scheduler sch;
    std::vector<int> log;
    TagEvent e1(log, 1);
    TagEvent e3(log, 3);
    sch.schedule_at(10 * NS, [&log] { log.push_back(0); });
    sch.schedule_event(10 * NS, e1);
    sch.schedule_at(10 * NS, [&log] { log.push_back(2); });
    sch.schedule_event(10 * NS, e3);
    EXPECT_TRUE(e1.pending());
    EXPECT_TRUE(sch.advance());
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_FALSE(e1.pending());
}

TEST(CalendarQueue, FarFutureEventsTakeTheOverflowPath) {
    Scheduler sch;
    std::vector<int> log;
    // Far first (overflow), then near (ring): must still fire time-ordered.
    sch.schedule_at(kBeyondHorizon, [&log] { log.push_back(2); });
    sch.schedule_at(5 * kBeyondHorizon, [&log] { log.push_back(3); });
    sch.schedule_at(10 * NS, [&log] { log.push_back(0); });
    sch.schedule_at(20 * NS, [&log] { log.push_back(1); });
    sch.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(sch.now(), 5 * kBeyondHorizon);
    EXPECT_EQ(sch.stats.time_steps, 4u);
}

TEST(CalendarQueue, OverflowKeepsSameTimeFifo) {
    Scheduler sch;
    std::vector<int> log;
    for (int i = 0; i < 4; ++i) {
        sch.schedule_at(kBeyondHorizon, [&log, i] { log.push_back(i); });
    }
    sch.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CalendarQueue, RingOverflowBoundaryKeepsSameTimeFifo) {
    Scheduler sch;
    std::vector<int> log;
    // First event lands in the overflow (beyond the horizon at schedule
    // time); the second is scheduled for the same timestamp once the window
    // has moved close enough for the ring. Scheduling order must win.
    sch.schedule_at(kBeyondHorizon, [&log] { log.push_back(0); });
    sch.schedule_at(kBeyondHorizon - 100 * NS, [&] {
        sch.schedule_at(kBeyondHorizon, [&log] { log.push_back(1); });
    });
    sch.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1}));
}

TEST(CalendarQueue, EmptyRingJumpsStraightToOverflow) {
    Scheduler sch;
    bool fired = false;
    sch.schedule_at(7 * kBeyondHorizon + 3, [&] { fired = true; });
    EXPECT_TRUE(sch.advance());
    EXPECT_TRUE(fired);
    EXPECT_EQ(sch.now(), 7 * kBeyondHorizon + 3);
    EXPECT_FALSE(sch.advance());
}

// schedule_at(now()) — e.g. from a fired event or a settling process —
// lands in a *new* timestep at the same timestamp: now() is unchanged but
// time_steps advances, exactly as with the old per-timestamp map entries.
TEST(CalendarQueue, ScheduleAtNowRunsInANewTimestepAtTheSameTime) {
    Scheduler sch;
    std::vector<int> log;
    sch.schedule_at(10 * NS, [&] {
        log.push_back(0);
        sch.schedule_at(sch.now(), [&] {
            log.push_back(1);
            EXPECT_EQ(sch.now(), 10 * NS);
        });
    });
    sch.schedule_at(20 * NS, [&log] { log.push_back(2); });
    EXPECT_TRUE(sch.advance());
    EXPECT_EQ(sch.now(), 10 * NS);
    EXPECT_EQ(log, (std::vector<int>{0}));
    EXPECT_TRUE(sch.advance());  // the schedule-at-now event, time unchanged
    EXPECT_EQ(sch.now(), 10 * NS);
    EXPECT_EQ(log, (std::vector<int>{0, 1}));
    EXPECT_EQ(sch.stats.time_steps, 2u);
    EXPECT_TRUE(sch.advance());
    EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
}

TEST(CalendarQueue, ScheduleAtNowAfterRunUntilIsNotLost) {
    Scheduler sch;
    rtlsim::Clock clk(sch, "clk", 10 * NS);
    sch.run_until(50 * NS);  // lookahead peeked past 50 ns here
    bool fired = false;
    sch.schedule_in(0, [&] { fired = true; });
    sch.run_until(80 * NS);
    EXPECT_TRUE(fired);
}

// A stop request made by an event does not cut the current timestep short:
// the rest of the chain fires and the deltas settle (matching the old
// kernel, where the timestep's vector was already popped). Only the *next*
// advance() observes the stop.
TEST(CalendarQueue, StopRequestMidTimestepCompletesTheStep) {
    Scheduler sch;
    std::vector<int> log;
    sch.schedule_at(10 * NS, [&] {
        log.push_back(0);
        sch.request_stop("tb.watchdog");
    });
    sch.schedule_at(10 * NS, [&log] { log.push_back(1); });
    sch.schedule_at(20 * NS, [&log] { log.push_back(2); });  // never fires
    sch.run();
    EXPECT_EQ(log, (std::vector<int>{0, 1}));
    EXPECT_TRUE(sch.stop_requested());
    EXPECT_EQ(sch.stop_reason(), "tb.watchdog");
    EXPECT_EQ(sch.now(), 10 * NS);
    EXPECT_FALSE(sch.advance());
}

TEST(CalendarQueue, IntrusiveEventReschedulesItselfFromFire) {
    Scheduler sch;
    struct Repeater final : TimedEvent {
        explicit Repeater(Scheduler& s) : sch(s) {}
        void fire() override {
            ++count;
            EXPECT_FALSE(pending());
            if (count < 5) sch.schedule_event(sch.now() + 10 * NS, *this);
        }
        Scheduler& sch;
        int count = 0;
    } rep(sch);
    sch.schedule_event(10 * NS, rep);
    sch.run();
    EXPECT_EQ(rep.count, 5);
    EXPECT_EQ(sch.now(), 50 * NS);
    EXPECT_EQ(sch.stats.timed_events, 5u);
}

TEST(CalendarQueue, ClockTicksExactEdgesThroughTheWheel) {
    Scheduler sch;
    rtlsim::Clock clk(sch, "clk", 10 * NS);
    int rising = 0;
    rtlsim::Process p(sch, "count", [&rising] { ++rising; });
    clk.out.add_listener(p, rtlsim::Edge::Pos);
    sch.run_until(100 * 10 * NS);
    EXPECT_EQ(rising, 100);
    EXPECT_EQ(sch.stats.timed_events, 200u);  // two edges per period
}

TEST(CalendarQueue, PooledClosureNodesAreRecycled) {
    Scheduler sch;
    // A self-rescheduling closure chain runs at a steady state with one
    // pooled node; interleave a second source to exercise the free list.
    int a = 0;
    int b = 0;
    std::function<void()> tick_a = [&] {
        if (++a < 1000) sch.schedule_in(10 * NS, tick_a);
    };
    std::function<void()> tick_b = [&] {
        if (++b < 500) sch.schedule_in(20 * NS, tick_b);
    };
    sch.schedule_in(10 * NS, tick_a);
    sch.schedule_in(20 * NS, tick_b);
    sch.run();
    EXPECT_EQ(a, 1000);
    EXPECT_EQ(b, 500);
}

TEST(CalendarQueue, RunUntilStopsAtRequestedTime) {
    Scheduler sch;
    rtlsim::Clock clk(sch, "clk", 10 * NS);
    sch.run_until(33 * NS);
    EXPECT_EQ(sch.now(), 33 * NS);
    sch.run_until(47 * NS);
    EXPECT_EQ(sch.now(), 47 * NS);
    // Events strictly after the limit stay queued.
    EXPECT_EQ(sch.stats.timed_events, 9u);  // edges at 5,10,...,45 ns
}

// --- differential property test ------------------------------------------
// Drives CalendarQueue directly (EventTestAccess) against the reference it
// replaced — a std::multimap, whose equal-key insertion order is exactly
// the FIFO-per-timestamp contract. Random push/pop_step/clear sequences are
// biased to hammer the structural trouble spots: timestamps quantised so
// equal-time chains recur, deltas clustered around the ring/overflow
// horizon so events straddle the boundary and migrate_front() interleaves
// them back, and restore-style clear() calls that rewind simulated time to
// exercise the floor_bucket_ reset.

using rtlsim::EventTestAccess;

/// Inert event node: the differential driver never fires, it only checks
/// structural order.
class NullEvent final : public TimedEvent {
    void fire() override {}
};

void differential_run(std::uint64_t seed, unsigned bucket_shift,
                      int iterations) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " shift=" + std::to_string(bucket_shift));
    CalendarQueue q(bucket_shift);
    // The reference: multimap insert places equal keys after existing ones,
    // i.e. same-timestamp FIFO — the contract under test.
    std::multimap<Time, NullEvent*> ref;

    const Time bucket = Time{1} << bucket_shift;
    const Time horizon = bucket * 256;  // ring span (kBuckets buckets)

    std::vector<std::unique_ptr<NullEvent>> pool;
    std::vector<NullEvent*> free_nodes;
    auto take_node = [&]() -> NullEvent* {
        if (free_nodes.empty()) {
            pool.push_back(std::make_unique<NullEvent>());
            return pool.back().get();
        }
        NullEvent* n = free_nodes.back();
        free_nodes.pop_back();
        return n;
    };

    std::uint64_t rng = rtlsim::derive_seed(seed, 0x4351'5546'5ull);  // "CQFUZ"
    auto draw = [&rng]() {
        rng = rtlsim::splitmix64(rng);
        return rng;
    };

    Time now = 0;
    for (int i = 0; i < iterations; ++i) {
        ASSERT_EQ(q.size(), ref.size());
        const std::uint64_t op = draw() % 100;
        if (op < 55) {
            // push — delta biased toward the interesting bands, quantised
            // to bucket/4 so identical timestamps recur often.
            const std::uint64_t band = draw() % 10;
            Time dt = 0;
            if (band < 3) {
                dt = 0;  // same-time chain growth
            } else if (band < 6) {
                dt = (draw() % 8) * bucket;  // in-ring, near the floor
            } else if (band < 9) {
                // straddle the horizon: [horizon - 2 buckets, horizon + 2)
                dt = horizon - 2 * bucket + (draw() % (4 * 256)) * (bucket / 4 + 1);
            } else {
                dt = horizon * (2 + draw() % 6);  // deep overflow
            }
            NullEvent* ev = take_node();
            EventTestAccess::prime(*ev, now + dt);
            q.push(ev, now);
            ref.emplace(now + dt, ev);
        } else if (op < 90) {
            // pop_step — must return the reference's whole earliest
            // timestep, in reference (scheduling) order.
            Time t = 0;
            TimedEvent* chain = q.pop_step(t);
            if (ref.empty()) {
                ASSERT_EQ(chain, nullptr);
                continue;
            }
            ASSERT_NE(chain, nullptr);
            const Time tmin = ref.begin()->first;
            ASSERT_EQ(t, tmin);
            now = t;
            auto it = ref.begin();
            for (TimedEvent* e = chain; e != nullptr;) {
                TimedEvent* next = EventTestAccess::next(*e);
                ASSERT_NE(it, ref.end());
                ASSERT_EQ(it->first, tmin) << "chain longer than the step";
                ASSERT_EQ(e, it->second) << "FIFO order diverged at t=" << t;
                EventTestAccess::retire(*e);
                free_nodes.push_back(static_cast<NullEvent*>(e));
                it = ref.erase(it);
                e = next;
            }
            ASSERT_TRUE(it == ref.end() || it->first != tmin)
                << "pop_step left same-time events behind";
        } else if (op < 97) {
            // peek only.
            Time t = 0;
            const bool have = q.peek_next(t);
            ASSERT_EQ(have, !ref.empty());
            if (have) {
                ASSERT_EQ(t, ref.begin()->first);
            }
        } else {
            // restore-style clear: discard the timeline and rewind `now`
            // to an arbitrary earlier point — floor_bucket_ must rewind
            // with it or the next pushes land outside the scan window.
            q.clear();
            for (auto& [t, e] : ref) {
                EXPECT_FALSE(e->pending());
                free_nodes.push_back(e);
            }
            ref.clear();
            ASSERT_TRUE(q.empty());
            now = (now > 0) ? draw() % now : 0;
        }
    }
    // Drain whatever is left so the final state also matches.
    Time t = 0;
    while (TimedEvent* chain = q.pop_step(t)) {
        ASSERT_FALSE(ref.empty());
        ASSERT_EQ(t, ref.begin()->first);
        auto it = ref.begin();
        for (TimedEvent* e = chain; e != nullptr;
             e = EventTestAccess::next(*e)) {
            ASSERT_NE(it, ref.end());
            ASSERT_EQ(e, it->second);
            it = ref.erase(it);
        }
    }
    ASSERT_TRUE(ref.empty());
}

TEST(CalendarQueueDifferential, MatchesMultimapAtProductionBucketWidth) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        differential_run(seed, /*bucket_shift=*/12, /*iterations=*/20000);
    }
}

// A narrow 4-ps bucket shrinks the horizon to ~1 ns, so the same op mix
// pushes far more traffic through the overflow map and the migrate path.
TEST(CalendarQueueDifferential, MatchesMultimapAtNarrowBucketWidth) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        differential_run(seed, /*bucket_shift=*/2, /*iterations=*/20000);
    }
}

// Deterministic regression for the restore rewind: run the window far
// forward, clear(), then schedule near t=0 again. If clear() failed to
// rewind floor_bucket_, the early push would assert (debug) or land
// outside the bounded first_bucket() scan (release).
TEST(CalendarQueueDifferential, ClearRewindsTheWindowForAnEarlierTimeline) {
    CalendarQueue q(12);
    NullEvent a;
    NullEvent b;
    EventTestAccess::prime(a, 50 * US);
    q.push(&a, 0);
    Time t = 0;
    ASSERT_NE(q.pop_step(t), nullptr);  // floor now at the 50 us bucket
    EventTestAccess::retire(a);

    q.clear();
    EventTestAccess::prime(b, 10 * NS);  // pre-restore past would be illegal
    q.push(&b, 0);
    ASSERT_NE(q.pop_step(t), nullptr);
    EXPECT_EQ(t, 10 * NS);
}

// FIFO across migrate_front(): an overflow-parked event and a ring event at
// the same timestamp must fire in scheduling order once the window reaches
// them — the overflow entry was scheduled first, so it fires first.
TEST(CalendarQueueDifferential, MigrationPreservesSameTimeFifo) {
    constexpr Time kT = 3 * US;  // beyond the 1.05 us ring horizon from 0
    CalendarQueue q(12);
    NullEvent first;
    NullEvent stepper;
    NullEvent second;
    EventTestAccess::prime(first, kT);
    q.push(&first, 0);  // overflow
    EventTestAccess::prime(stepper, kT - 500 * NS);
    q.push(&stepper, 0);  // ring, moves the window close to kT when popped

    Time t = 0;
    ASSERT_NE(q.pop_step(t), nullptr);
    ASSERT_EQ(t, kT - 500 * NS);
    EventTestAccess::retire(stepper);

    EventTestAccess::prime(second, kT);
    q.push(&second, t);  // ring path: must migrate `first` ahead of itself

    TimedEvent* chain = q.pop_step(t);
    ASSERT_EQ(t, kT);
    ASSERT_EQ(chain, &first);
    ASSERT_EQ(EventTestAccess::next(*chain), &second);
    ASSERT_EQ(EventTestAccess::next(second), nullptr);
}

}  // namespace
