// Disassembler tests, including the assemble/disassemble round-trip
// property over the whole instruction subset and the generated firmware.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "sys/firmware.hpp"

namespace autovision::isa {
namespace {

std::uint32_t enc(const std::string& line) {
    return assemble(line).words.at(0);
}

TEST(Disasm, RendersCommonInstructions) {
    EXPECT_EQ(disassemble(enc("li r3, 5"), 0), "li r3, 5");
    EXPECT_EQ(disassemble(enc("addi r3, r1, -8"), 0), "addi r3, r1, -8");
    EXPECT_EQ(disassemble(enc("nop"), 0), "nop");
    EXPECT_EQ(disassemble(enc("add r3, r4, r5"), 0), "add r3, r4, r5");
    EXPECT_EQ(disassemble(enc("mr r5, r7"), 0), "mr r5, r7");
    EXPECT_EQ(disassemble(enc("not r5, r7"), 0), "not r5, r7");
    EXPECT_EQ(disassemble(enc("lwz r4, 12(r3)"), 0), "lwz r4, 12(r3)");
    EXPECT_EQ(disassemble(enc("stwu r1, -4(r1)"), 0), "stwu r1, -4(r1)");
    EXPECT_EQ(disassemble(enc("blr"), 0), "blr");
    EXPECT_EQ(disassemble(enc("rfi"), 0), "rfi");
    EXPECT_EQ(disassemble(enc("mflr r0"), 0), "mflr r0");
    EXPECT_EQ(disassemble(enc("mtctr r12"), 0), "mtctr r12");
    EXPECT_EQ(disassemble(enc("slwi r3, r4, 8"), 0), "slwi r3, r4, 8");
    EXPECT_EQ(disassemble(enc("srwi r3, r4, 4"), 0), "srwi r3, r4, 4");
    EXPECT_EQ(disassemble(enc("srawi r3, r4, 2"), 0), "srawi r3, r4, 2");
    EXPECT_EQ(disassemble(enc("cmpwi r3, 0"), 0), "cmpwi r3, 0");
    EXPECT_EQ(disassemble(enc("mfdcr r3, 0x40"), 0), "mfdcr r3, 0x40");
    EXPECT_EQ(disassemble(enc("mtdcr 0x40, r3"), 0), "mtdcr 0x40, r3");
    EXPECT_EQ(disassemble(enc("wrteei 1"), 0), "wrteei 1");
}

TEST(Disasm, BranchTargetsAreAbsolute) {
    // b at 0x100 jumping to 0x140.
    const Program p = assemble(".org 0x100\nb 0x140");
    EXPECT_EQ(disassemble(p.words[0], 0x100), "b 0x140");
    const Program c = assemble(".org 0x200\nbeq 0x1F0");
    EXPECT_EQ(disassemble(c.words[0], 0x200), "beq 0x1F0");
    const Program d = assemble(".org 0x80\nbdnz 0x80");
    EXPECT_EQ(disassemble(d.words[0], 0x80), "bdnz 0x80");
}

TEST(Disasm, UnknownEncodingFallsBackToWord) {
    EXPECT_EQ(disassemble(0x00000000, 0), ".word 0x00000000");
    EXPECT_EQ(disassemble(0xFFFFFFFF, 0), ".word 0xFFFFFFFF");
}

// Round trip: disassembling and re-assembling every instruction of the
// generated firmware reproduces the exact machine code. (Data words
// round-trip through the ".word" fallback.)
TEST(Disasm, FirmwareRoundTripsExactly) {
    for (auto method :
         {sys::FirmwareConfig::Method::kVm, sys::FirmwareConfig::Method::kResim}) {
        sys::FirmwareConfig cfg;
        cfg.method = method;
        cfg.simb_cie_words = 110;
        cfg.simb_me_words = 110;
        const Program p = sys::build_firmware(cfg);
        unsigned checked = 0;
        for (std::size_t i = 0; i < p.words.size(); ++i) {
            const std::uint32_t w = p.words[i];
            if (w == 0) continue;  // .org padding
            const auto addr = p.origin + 4 * static_cast<std::uint32_t>(i);
            const std::string text = disassemble(w, addr);
            const Program back =
                assemble(".org 0x" + [addr] {
                    char b[16];
                    std::snprintf(b, sizeof b, "%X", addr);
                    return std::string(b);
                }() + "\n" + text);
            ASSERT_EQ(back.words.at(0), w)
                << "at 0x" << std::hex << addr << ": '" << text << "'";
            ++checked;
        }
        EXPECT_GT(checked, 150u);
    }
}

TEST(Disasm, ProgramListingHasOneLinePerWord) {
    const Program p = assemble(R"(
        .org 0x100
        _start: li r3, 1
                add r4, r3, r3
        done:   b done
    )");
    const std::string listing = disassemble_program(p);
    EXPECT_EQ(std::count(listing.begin(), listing.end(), '\n'), 3);
    EXPECT_NE(listing.find("00000100: 38600001  li r3, 1"),
              std::string::npos);
}

}  // namespace
}  // namespace autovision::isa
