// Full-system property sweeps: the demonstrator must run clean for every
// method x geometry combination, both methods must produce identical
// pipeline data for the same scene, and the kernel's VCD tracer must
// capture a full-system run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "sys/address_map.hpp"
#include "sys/testbench.hpp"

namespace autovision::sys {
namespace {

using SweepParam =
    std::tuple<FirmwareConfig::Method, unsigned /*w*/, unsigned /*h*/,
               unsigned /*search*/, std::uint32_t /*simb payload*/>;

class SystemSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SystemSweep, CleanRun) {
    const auto [method, w, h, search, payload] = GetParam();
    SystemConfig cfg;
    cfg.method = method;
    cfg.width = w;
    cfg.height = h;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = search;
    cfg.simb_payload_words = payload;
    Testbench tb(cfg, /*scene_seed=*/w + h);
    const RunResult r = tb.run(2);
    EXPECT_TRUE(r.clean()) << r.verdict();
    EXPECT_EQ(r.frames_completed, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SystemSweep,
    ::testing::Values(
        SweepParam{FirmwareConfig::Method::kResim, 24, 20, 1, 20},
        SweepParam{FirmwareConfig::Method::kResim, 32, 24, 2, 100},
        SweepParam{FirmwareConfig::Method::kResim, 48, 32, 3, 100},
        SweepParam{FirmwareConfig::Method::kResim, 64, 48, 2, 1024},
        SweepParam{FirmwareConfig::Method::kVm, 24, 20, 1, 20},
        SweepParam{FirmwareConfig::Method::kVm, 48, 32, 3, 100},
        SweepParam{FirmwareConfig::Method::kVm, 64, 48, 2, 100}));

// Both simulation methods execute the same design on the same scene; the
// pipeline products in memory must be identical word for word.
TEST(SystemEquivalence, VmAndResimProduceIdenticalData) {
    SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.search = 2;
    cfg.simb_payload_words = 50;

    SystemConfig vm_cfg = cfg;
    vm_cfg.method = FirmwareConfig::Method::kVm;
    Testbench vm_tb(vm_cfg, 77);
    const RunResult vm_r = vm_tb.run(2);
    ASSERT_TRUE(vm_r.clean()) << vm_r.verdict();

    SystemConfig rs_cfg = cfg;
    rs_cfg.method = FirmwareConfig::Method::kResim;
    Testbench rs_tb(rs_cfg, 77);
    const RunResult rs_r = rs_tb.run(2);
    ASSERT_TRUE(rs_r.clean()) << rs_r.verdict();

    // Census buffers, motion field and drawn output must agree.
    for (std::uint32_t base : {kCensusA, kCensusB, kFieldBuf, kOutBuf}) {
        for (std::uint32_t off = 0; off < 32u * 24u; off += 4) {
            ASSERT_EQ(vm_tb.sys.mem.peek_u32(base + off),
                      rs_tb.sys.mem.peek_u32(base + off))
                << "divergence at 0x" << std::hex << base + off;
        }
    }
    // ReSim did it through real bitstream traffic, VM did not.
    EXPECT_EQ(rs_tb.sys.icap_artifact->simbs_completed(), 4u);
    EXPECT_EQ(vm_tb.sys.null_icap.words(), 0u);
}

TEST(SystemEquivalence, ResimRunsAreDeterministic) {
    SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.search = 2;
    cfg.simb_payload_words = 50;
    cfg.method = FirmwareConfig::Method::kResim;

    Testbench a(cfg, 5);
    const RunResult ra = a.run(2);
    Testbench b(cfg, 5);
    const RunResult rb = b.run(2);
    ASSERT_TRUE(ra.clean());
    ASSERT_TRUE(rb.clean());
    EXPECT_EQ(ra.sim_time, rb.sim_time) << "cycle-level determinism";
    EXPECT_EQ(ra.stats.delta_cycles, rb.stats.delta_cycles);
    EXPECT_EQ(ra.stats.signal_updates, rb.stats.signal_updates);
    EXPECT_EQ(a.sys.cpu.instructions(), b.sys.cpu.instructions());
}

// Endurance: a ten-frame run must stay clean, with every per-frame counter
// advancing in lockstep (no drift, no leak-like slowdown in the pipeline).
TEST(SystemEndurance, TenFramesStayCleanAndConsistent) {
    SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.search = 2;
    cfg.simb_payload_words = 50;
    Testbench tb(cfg, 99);
    const RunResult r = tb.run(10);
    EXPECT_TRUE(r.clean()) << r.verdict();
    EXPECT_EQ(r.frames_completed, 10u);
    EXPECT_EQ(tb.sys.mailbox(kMbCieCount), 10u);
    EXPECT_EQ(tb.sys.mailbox(kMbMeCount), 10u);
    EXPECT_EQ(tb.sys.mailbox(kMbDprCount), 20u) << "2 DPR per frame";
    EXPECT_EQ(tb.sys.portal->reconfigurations(), 20u);
    EXPECT_EQ(tb.sys.icap_artifact->simbs_completed(), 20u);
    EXPECT_EQ(tb.sys.video_in.frames_sent(), 10u);
    EXPECT_EQ(tb.displayed.size(), 10u);
    EXPECT_EQ(tb.sys.mailbox(kMbFatal), 0u);
}

// The user-facing VCD knob: setting SystemConfig::vcd_path dumps the key
// system waveforms to a file.
TEST(SystemTrace, VcdPathConfigWritesFile) {
    const auto path = std::filesystem::temp_directory_path() /
                      "resim_system_trace_test.vcd";
    SystemConfig cfg;
    cfg.width = 24;
    cfg.height = 20;
    cfg.search = 1;
    cfg.simb_payload_words = 20;
    cfg.vcd_path = path.string();
    {
        Testbench tb(cfg);
        const RunResult r = tb.run(1);
        EXPECT_TRUE(r.clean()) << r.verdict();
    }
    ASSERT_TRUE(std::filesystem::exists(path));
    EXPECT_GT(std::filesystem::file_size(path), 5000u);
    std::ifstream is(path);
    std::string first;
    std::getline(is, first);
    EXPECT_EQ(first, "$timescale 1ps $end");
    std::filesystem::remove(path);
}

// VCD tracing of a full-system run: the waveform must show the region's
// reconfiguration activity (X during payload, module swaps).
TEST(SystemTrace, VcdCapturesReconfiguration) {
    SystemConfig cfg;
    cfg.width = 24;
    cfg.height = 20;
    cfg.search = 1;
    cfg.simb_payload_words = 20;
    Testbench tb(cfg);

    std::ostringstream vcd;
    rtlsim::Tracer tracer(vcd);
    tracer.add(tb.sys.clk.out);
    tracer.add(tb.sys.rr_done);
    tracer.add(tb.sys.plb.master(kMasterRr).req);
    tracer.add(tb.sys.icapctrl.done_irq);
    tracer.add(tb.sys.rr.stream_tap);
    tb.sys.sch.set_tracer(&tracer);

    const RunResult r = tb.run(1);
    tracer.finish();
    ASSERT_TRUE(r.clean()) << r.verdict();

    const std::string out = vcd.str();
    EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
    EXPECT_NE(out.find("rr_done"), std::string::npos);
    // Isolation holds the boundary at idle during DPR, so the request line
    // never carries X in a clean run; the stream tap toggles constantly.
    EXPECT_EQ(out.find("x!"), std::string::npos);
    EXPECT_GT(out.size(), 10000u) << "a real waveform, not just headers";
    // The engine-done and icap-done pulses are visible.
    EXPECT_NE(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace autovision::sys
