// Ad-hoc debug driver for the full system (not a gtest).
#include <cstdio>

#include "sys/address_map.hpp"
#include "sys/testbench.hpp"

using namespace autovision;
using namespace autovision::sys;

int main() {
    SystemConfig cfg;
    cfg.method = FirmwareConfig::Method::kResim;
    cfg.width = 32;
    cfg.height = 24;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 2;
    cfg.simb_payload_words = 20;

    Testbench tb(cfg);
    const RunResult r = tb.run(2);
    std::printf("verdict: %s\n", r.verdict().c_str());
    std::printf("frames=%u cie=%u me=%u dpr=%u fatal=%u\n",
                r.frames_completed, tb.sys.mailbox(kMbCieCount),
                tb.sys.mailbox(kMbMeCount), tb.sys.mailbox(kMbDprCount),
                tb.sys.mailbox(kMbFatal));
    std::printf("icapctrl: busy=%d drained=%llu overflow=%llu\n",
                tb.sys.icapctrl.busy(),
                (unsigned long long)tb.sys.icapctrl.words_to_icap(),
                (unsigned long long)tb.sys.icapctrl.fifo_overflows());
    if (tb.sys.icap_artifact) {
        std::printf(
            "artifact: words=%llu simbs=%llu ignored=%llu in_session=%d "
            "payload_pending=%d\n",
            (unsigned long long)tb.sys.icap_artifact->words_received(),
            (unsigned long long)tb.sys.icap_artifact->simbs_completed(),
            (unsigned long long)tb.sys.icap_artifact->ignored_before_sync(),
            tb.sys.icap_artifact->in_session(),
            tb.sys.icap_artifact->payload_pending());
        std::printf("portal: swaps=%llu phase_open=%d\n",
                    (unsigned long long)tb.sys.portal->reconfigurations(),
                    tb.sys.portal->phase_open());
    }
    std::printf("cpu: pc=0x%08x insns=%llu irqs=%llu halted=%d\n",
                tb.sys.cpu.pc(), (unsigned long long)tb.sys.cpu.instructions(),
                (unsigned long long)tb.sys.cpu.interrupts_taken(),
                tb.sys.cpu.halted());
    std::printf("diags (%zu):\n", r.diagnostics.size());
    for (std::size_t i = 0; i < r.diagnostics.size() && i < 25; ++i) {
        const auto& d = r.diagnostics[i];
        std::printf("  [%10llu ps] %s: %s\n", (unsigned long long)d.time,
                    d.source.c_str(), d.message.c_str());
    }
    return 0;
}
