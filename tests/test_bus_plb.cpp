// Unit tests for the PLB bus model, the DMA master helper and the memory.
#include <gtest/gtest.h>

#include <vector>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "kernel/kernel.hpp"

namespace autovision {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;

constexpr rtlsim::Time kClkPeriod = 10 * NS;

/// Testbench fixture: clock, reset, a bus with `masters` ports and a memory.
struct BusTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClkPeriod};
    ResetGen rst{sch, "rst", 3 * kClkPeriod};
    Memory mem;
    Plb plb;

    explicit BusTb(unsigned masters, unsigned max_burst = 16)
        : mem(Memory::Config{}),
          plb(sch, "plb", clk.out, rst.out,
              Plb::Config{masters, max_burst, 1000}) {
        plb.attach_slave(mem);
    }

    /// Drive a DmaMaster's step() from a clocked process.
    struct Driver : rtlsim::Module {
        DmaMaster dma;
        Driver(BusTb& tb, unsigned port, unsigned burst_limit)
            : Module(tb.sch, "drv" + std::to_string(port)),
              dma(tb.plb.master(port), burst_limit) {
            sync_proc("step", [this] { dma.step(); },
                      {rtlsim::posedge(tb.clk.out)});
        }
    };

    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClkPeriod); }
};

TEST(Memory, ByteLanesAreBigEndian) {
    Memory mem;
    mem.poke_u32(0x100, 0xAABBCCDD);
    EXPECT_EQ(mem.peek_u8(0x100), 0xAA) << "byte 0 is the MSB on PowerPC";
    EXPECT_EQ(mem.peek_u8(0x101), 0xBB);
    EXPECT_EQ(mem.peek_u8(0x102), 0xCC);
    EXPECT_EQ(mem.peek_u8(0x103), 0xDD);
    mem.poke_u8(0x101, 0x55);
    EXPECT_EQ(mem.peek_u32(0x100), 0xAA55CCDDu);
    EXPECT_EQ(mem.peek_u16(0x100), 0xAA55u);
    EXPECT_EQ(mem.peek_u16(0x102), 0xCCDDu);
    mem.poke_u16(0x102, 0x1234);
    EXPECT_EQ(mem.peek_u32(0x100), 0xAA551234u);
}

TEST(Memory, UnknownTracking) {
    Memory mem;
    mem.poke(0x40, Word::all_x());
    bool ok = true;
    (void)mem.peek_u32(0x40, &ok);
    EXPECT_FALSE(ok);
    EXPECT_TRUE(mem.range_has_unknown(0x40, 4));
    EXPECT_FALSE(mem.range_has_unknown(0x44, 16));
    mem.poke_u32(0x40, 7);
    (void)mem.peek_u32(0x40, &ok);
    EXPECT_TRUE(ok);
}

TEST(Memory, BulkLoads) {
    Memory mem;
    const std::vector<std::uint32_t> ws{1, 2, 3};
    mem.load_words(0x200, ws);
    EXPECT_EQ(mem.peek_u32(0x208), 3u);
    const std::vector<std::uint8_t> bs{0xDE, 0xAD};
    mem.load_bytes(0x210, bs);
    EXPECT_EQ(mem.peek_u8(0x211), 0xAD);
}

TEST(Plb, SingleBurstRead) {
    BusTb tb(1);
    for (unsigned i = 0; i < 8; ++i) tb.mem.poke_u32(0x1000 + 4 * i, 100 + i);

    BusTb::Driver drv(tb, 0, 16);
    std::vector<std::uint32_t> got;
    bool done = false;
    drv.dma.start_read(
        0x1000, 8,
        [&](std::uint32_t, Word w) {
            ASSERT_TRUE(w.is_fully_defined());
            got.push_back(static_cast<std::uint32_t>(w.to_u64()));
        },
        [&] { done = true; });
    tb.run_cycles(100);

    ASSERT_TRUE(done);
    ASSERT_EQ(got.size(), 8u);
    for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(got[i], 100 + i);
    EXPECT_EQ(tb.plb.counters().transactions, 1u);
    EXPECT_EQ(tb.plb.counters().read_beats, 8u);
}

TEST(Plb, SingleBurstWrite) {
    BusTb tb(1);
    BusTb::Driver drv(tb, 0, 16);
    bool done = false;
    drv.dma.start_write(
        0x2000, 5, [](std::uint32_t i) { return Word{0xC0DE0000u + i}; },
        [&] { done = true; });
    tb.run_cycles(100);

    ASSERT_TRUE(done);
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(tb.mem.peek_u32(0x2000 + 4 * i), 0xC0DE0000u + i);
    }
    EXPECT_EQ(tb.plb.counters().write_beats, 5u);
}

TEST(Plb, MultiBurstReadSplitsAtLimit) {
    BusTb tb(1, /*max_burst=*/16);
    for (unsigned i = 0; i < 40; ++i) tb.mem.poke_u32(0x3000 + 4 * i, i * i);

    BusTb::Driver drv(tb, 0, 16);
    std::vector<std::uint32_t> got;
    bool done = false;
    drv.dma.start_read(
        0x3000, 40,
        [&](std::uint32_t, Word w) {
            got.push_back(static_cast<std::uint32_t>(w.to_u64()));
        },
        [&] { done = true; });
    tb.run_cycles(300);

    ASSERT_TRUE(done);
    ASSERT_EQ(got.size(), 40u);
    for (unsigned i = 0; i < 40; ++i) EXPECT_EQ(got[i], i * i);
    EXPECT_EQ(tb.plb.counters().transactions, 3u) << "16+16+8 beats";
    EXPECT_EQ(tb.plb.counters().truncations, 0u);
}

// The bug.dpr.4 mechanism: a master configured for a point-to-point link
// issues the whole transfer as one burst. A shared bus truncates it and the
// master silently under-transfers.
TEST(Plb, OversizedBurstIsTruncatedAndReported) {
    BusTb tb(1, /*max_burst=*/16);
    for (unsigned i = 0; i < 64; ++i) tb.mem.poke_u32(0x4000 + 4 * i, i + 1);

    BusTb::Driver drv(tb, 0, /*burst_limit=*/0);  // point-to-point habit
    std::vector<std::uint32_t> got;
    bool done = false;
    drv.dma.start_read(
        0x4000, 64,
        [&](std::uint32_t, Word w) {
            got.push_back(static_cast<std::uint32_t>(w.to_u64()));
        },
        [&] { done = true; });
    tb.run_cycles(300);

    ASSERT_TRUE(done) << "the master believes the transfer completed";
    EXPECT_EQ(got.size(), 16u) << "only one truncated burst was delivered";
    EXPECT_EQ(tb.plb.counters().truncations, 1u);
    EXPECT_TRUE(tb.sch.has_diag_from("plb"));
}

// On an unbounded (point-to-point) bus the same master works: the original
// AutoVision design was correct with its NPI link.
TEST(Plb, UnboundedBusAcceptsHugeBurst) {
    BusTb tb(1, /*max_burst=*/0);
    for (unsigned i = 0; i < 64; ++i) tb.mem.poke_u32(0x4000 + 4 * i, i + 1);

    BusTb::Driver drv(tb, 0, /*burst_limit=*/0);
    std::vector<std::uint32_t> got;
    drv.dma.start_read(0x4000, 64, [&](std::uint32_t, Word w) {
        got.push_back(static_cast<std::uint32_t>(w.to_u64()));
    });
    tb.run_cycles(300);
    EXPECT_EQ(got.size(), 64u);
    EXPECT_EQ(tb.plb.counters().truncations, 0u);
}

TEST(Plb, TwoMastersInterleaveFairly) {
    BusTb tb(2);
    for (unsigned i = 0; i < 32; ++i) {
        tb.mem.poke_u32(0x5000 + 4 * i, 0xA0000 + i);
        tb.mem.poke_u32(0x6000 + 4 * i, 0xB0000 + i);
    }
    BusTb::Driver d0(tb, 0, 8);
    BusTb::Driver d1(tb, 1, 8);
    std::vector<std::uint32_t> g0;
    std::vector<std::uint32_t> g1;
    bool f0 = false;
    bool f1 = false;
    d0.dma.start_read(0x5000, 32, [&](std::uint32_t, Word w) {
        g0.push_back(static_cast<std::uint32_t>(w.to_u64()));
    }, [&] { f0 = true; });
    d1.dma.start_read(0x6000, 32, [&](std::uint32_t, Word w) {
        g1.push_back(static_cast<std::uint32_t>(w.to_u64()));
    }, [&] { f1 = true; });
    tb.run_cycles(600);

    ASSERT_TRUE(f0);
    ASSERT_TRUE(f1);
    for (unsigned i = 0; i < 32; ++i) {
        EXPECT_EQ(g0[i], 0xA0000 + i);
        EXPECT_EQ(g1[i], 0xB0000 + i);
    }
    EXPECT_EQ(tb.plb.counters().transactions, 8u) << "4 bursts each";
    EXPECT_EQ(tb.plb.counters().aborts, 0u);
}

TEST(Plb, WriteThenReadBack) {
    BusTb tb(1);
    BusTb::Driver drv(tb, 0, 16);
    bool wrote = false;
    drv.dma.start_write(0x7000, 3,
                        [](std::uint32_t i) { return Word{0x10u * (i + 1)}; },
                        [&] { wrote = true; });
    tb.run_cycles(60);
    ASSERT_TRUE(wrote);

    std::vector<std::uint32_t> got;
    drv.dma.start_read(0x7000, 3, [&](std::uint32_t, Word w) {
        got.push_back(static_cast<std::uint32_t>(w.to_u64()));
    });
    tb.run_cycles(60);
    EXPECT_EQ(got, (std::vector<std::uint32_t>{0x10, 0x20, 0x30}));
}

TEST(Plb, DecodeErrorPulsesErrAndReports) {
    BusTb tb(1);
    BusTb::Driver drv(tb, 0, 16);
    drv.dma.start_read(0xF000'0000, 1, [](std::uint32_t, Word) {});
    tb.run_cycles(20);
    EXPECT_EQ(tb.plb.counters().decode_errors, 1u);
    EXPECT_TRUE(tb.sch.has_diag_from("plb"));
}

TEST(Plb, XOnRequestIsReported) {
    BusTb tb(1);
    tb.sch.schedule_at(5 * kClkPeriod,
                       [&] { tb.plb.master(0).drive_x(); });
    tb.run_cycles(20);
    bool found = false;
    for (const auto& d : tb.sch.diagnostics()) {
        if (d.message.find("X/Z on req") != std::string::npos) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Plb, XReportsAreCapped) {
    BusTb tb(1);
    tb.sch.schedule_at(5 * kClkPeriod, [&] { tb.plb.master(0).drive_x(); });
    tb.run_cycles(500);
    unsigned n = 0;
    for (const auto& d : tb.sch.diagnostics()) {
        if (d.message.find("X/Z on req") != std::string::npos) ++n;
    }
    EXPECT_EQ(n, 5u) << "diagnostic spam must be bounded";
}

TEST(Plb, ZeroWordTransferCompletesImmediately) {
    BusTb tb(1);
    BusTb::Driver drv(tb, 0, 16);
    bool done = false;
    drv.dma.start_read(0x0, 0, [](std::uint32_t, Word) {}, [&] { done = true; });
    EXPECT_TRUE(done);
    EXPECT_FALSE(drv.dma.busy());
}

// Parameterised sweep: transfers of many sizes against several burst limits
// must always deliver every word exactly once, in order.
using SweepParam = std::tuple<unsigned /*words*/, unsigned /*burst_limit*/>;
class PlbSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PlbSweep, ReadDeliversAllWordsInOrder) {
    const auto [words, limit] = GetParam();
    BusTb tb(1);
    for (unsigned i = 0; i < words; ++i) {
        tb.mem.poke_u32(0x8000 + 4 * i, 0xFEED0000 + i);
    }
    BusTb::Driver drv(tb, 0, limit);
    std::vector<std::uint32_t> got;
    bool done = false;
    drv.dma.start_read(
        0x8000, words,
        [&](std::uint32_t idx, Word w) {
            EXPECT_EQ(idx, got.size());
            got.push_back(static_cast<std::uint32_t>(w.to_u64()));
        },
        [&] { done = true; });
    tb.run_cycles(60 + words * 14);
    ASSERT_TRUE(done);
    ASSERT_EQ(got.size(), words);
    for (unsigned i = 0; i < words; ++i) EXPECT_EQ(got[i], 0xFEED0000 + i);
}

TEST_P(PlbSweep, WriteDeliversAllWordsInOrder) {
    const auto [words, limit] = GetParam();
    BusTb tb(1);
    BusTb::Driver drv(tb, 0, limit);
    bool done = false;
    drv.dma.start_write(
        0x8000, words, [](std::uint32_t i) { return Word{0xBEEF0000 + i}; },
        [&] { done = true; });
    tb.run_cycles(60 + words * 14);
    ASSERT_TRUE(done);
    for (unsigned i = 0; i < words; ++i) {
        EXPECT_EQ(tb.mem.peek_u32(0x8000 + 4 * i), 0xBEEF0000 + i);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLimits, PlbSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 15u, 16u, 17u, 33u, 64u),
                       ::testing::Values(1u, 4u, 16u)));

}  // namespace
}  // namespace autovision
