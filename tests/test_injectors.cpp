// Tests for the stock error-injector variants and their detection power:
// the choice of error model decides which isolation bugs are visible.
#include <gtest/gtest.h>

#include "resim/injectors.hpp"
#include "sys/detection.hpp"

namespace autovision::resim {
namespace {

TEST(Injectors, Names) {
    EXPECT_STREQ(XInjector{}.name(), "inject-x");
    EXPECT_STREQ(HoldLastInjector{}.name(), "hold-last");
    EXPECT_STREQ(ZeroInjector{}.name(), "zeros");
    EXPECT_STREQ(GarbageInjector{}.name(), "garbage");
}

TEST(Injectors, XDrivesAllUnknown) {
    XInjector inj;
    RrOutputs o;
    inj.inject(o);
    EXPECT_EQ(o.req, rtlsim::Logic::X);
    EXPECT_TRUE(o.addr.has_unknown());
    EXPECT_EQ(o.done_irq, rtlsim::Logic::X);
}

TEST(Injectors, ZerosDriveIdle) {
    ZeroInjector inj;
    RrOutputs o = RrOutputs::all_x();
    inj.inject(o);
    EXPECT_EQ(o.req, rtlsim::Logic::L0);
    EXPECT_TRUE(o.addr.is_fully_defined());
}

TEST(Injectors, GarbageIsDefinedAndDeterministic) {
    GarbageInjector a(7);
    GarbageInjector b(7);
    for (int i = 0; i < 20; ++i) {
        RrOutputs oa;
        RrOutputs ob;
        a.inject(oa);
        b.inject(ob);
        EXPECT_TRUE(oa.addr.is_fully_defined());
        EXPECT_TRUE(oa.addr == ob.addr) << "same seed, same stream";
        EXPECT_EQ(rtlsim::to_char(oa.req), rtlsim::to_char(ob.req));
    }
    GarbageInjector c(8);
    RrOutputs oa;
    RrOutputs oc;
    a.inject(oa);
    c.inject(oc);
    EXPECT_FALSE(oa.addr == oc.addr) << "different seed diverges";
}

// Detection power of each error model against the isolation bug: X catches
// it; zero/hold-last models (the 2-state world view) let it escape;
// garbage is caught by the protocol checkers instead.
TEST(Injectors, DetectionPowerAgainstIsolationBug) {
    using sys::Fault;
    using sys::FirmwareConfig;
    using sys::SystemConfig;
    using sys::Testbench;

    SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.search = 2;
    cfg.simb_payload_words = 200;
    cfg = sys::config_for_fault(cfg, Fault::kDpr1NoIsolation);
    cfg.method = FirmwareConfig::Method::kResim;

    {
        Testbench tb(cfg);  // default X injector
        EXPECT_FALSE(tb.run(2).clean()) << "X injection detects bug.dpr.1";
    }
    {
        Testbench tb(cfg);
        tb.sys.rr.set_error_injector(std::make_unique<ZeroInjector>());
        EXPECT_TRUE(tb.run(2).clean())
            << "a zero-clamping model hides the missing isolation";
    }
    {
        Testbench tb(cfg);
        tb.sys.rr.set_error_injector(std::make_unique<GarbageInjector>());
        const auto r = tb.run(2);
        EXPECT_FALSE(r.clean())
            << "defined garbage trips the protocol checkers instead";
    }
}

// bug.dpr.6b delay-threshold property: as the driver's dummy loop grows,
// the outcome flips from failing to passing exactly once (monotonic), and
// the threshold tracks the transfer length.
TEST(Injectors, DelayThresholdIsMonotonicInLoopCount) {
    using sys::Fault;
    using sys::FirmwareConfig;
    using sys::SystemConfig;
    using sys::Testbench;

    SystemConfig base;
    base.width = 24;
    base.height = 20;
    base.search = 1;
    base.simb_payload_words = 200;  // transfer ~ (210 words x div 4)
    base.method = FirmwareConfig::Method::kResim;
    base.wait = FirmwareConfig::Wait::kDelay;

    bool prev_clean = false;
    int flips = 0;
    for (std::uint32_t loops : {50u, 200u, 800u, 3200u, 12800u}) {
        SystemConfig cfg = base;
        cfg.delay_loops = loops;
        Testbench tb(cfg);
        const bool clean = tb.run(1).clean();
        if (clean != prev_clean) {
            if (loops != 50u || clean) ++flips;  // count transitions
            prev_clean = clean;
        }
    }
    EXPECT_TRUE(prev_clean) << "a long enough delay always works";
    EXPECT_EQ(flips, 1) << "exactly one fail->pass transition";
}

TEST(Injectors, SystemConfigSelectsAndSeedsTheBoundaryInjector) {
    using sys::SystemConfig;
    SystemConfig cfg;
    cfg.width = 24;
    cfg.height = 20;
    cfg.search = 1;

    // Default: the paper-faithful X source.
    EXPECT_STREQ(sys::OpticalFlowSystem(cfg).rr.error_injector().name(),
                 "inject-x");

    // The garbage source derives its stream from the canonical run seed
    // (kSeedTagInjector), not an ad-hoc constant.
    cfg.injection = SystemConfig::Injection::kGarbage;
    cfg.seed = 42;
    sys::OpticalFlowSystem sys(cfg);
    EXPECT_STREQ(sys.rr.error_injector().name(), "garbage");
}

}  // namespace
}  // namespace autovision::resim
