// Unit tests for the ReSim library: SimB format, ICAP artifact parser and
// Extended Portal, including malformed-stream handling.
#include <gtest/gtest.h>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "obs/recorder.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"

namespace autovision::resim {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;
using rtlsim::Word;

// ------------------------------------------------------------------ SimB

TEST(SimB, PacketEncodings) {
    // The exact header words of Table I.
    EXPECT_EQ(type1_write(CfgReg::kFar, 1), 0x30002001u);
    EXPECT_EQ(type1_write(CfgReg::kCmd, 1), 0x30008001u);
    EXPECT_EQ(type1_write(CfgReg::kFdri, 0), 0x30004000u);
    EXPECT_EQ(type2_write(4), 0x50000004u);
    EXPECT_EQ(far_word(0x01, 0x02), 0x01020000u);
    EXPECT_EQ(far_rr(0x01020000u), 0x01);
    EXPECT_EQ(far_module(0x01020000u), 0x02);
}

TEST(SimB, BuildStructure) {
    SimB b;
    b.rr_id = 3;
    b.module_id = 7;
    b.payload_words = 5;
    const auto w = b.build();
    ASSERT_EQ(w.size(), SimB::length_for_payload(5));
    EXPECT_EQ(w[0], kSyncWord);
    EXPECT_EQ(w[1], kNopWord);
    EXPECT_EQ(w[2], type1_write(CfgReg::kFar, 1));
    EXPECT_EQ(w[3], far_word(3, 7));
    EXPECT_EQ(w[4], type1_write(CfgReg::kCmd, 1));
    EXPECT_EQ(w[5], static_cast<std::uint32_t>(CfgCmd::kWcfg));
    EXPECT_EQ(w[6], type1_write(CfgReg::kFdri, 0));
    EXPECT_EQ(w[7], type2_write(5));
    EXPECT_EQ(w[w.size() - 2], type1_write(CfgReg::kCmd, 1));
    EXPECT_EQ(w.back(), static_cast<std::uint32_t>(CfgCmd::kDesync));
}

TEST(SimB, DeterministicPayload) {
    SimB a;
    a.seed = 42;
    SimB b;
    b.seed = 42;
    EXPECT_EQ(a.build(), b.build());
    b.seed = 43;
    EXPECT_NE(a.build(), b.build());
}

TEST(SimB, Table1ExampleMatchesPaper) {
    const auto w = SimB::table1_example();
    ASSERT_EQ(w.size(), 14u);
    EXPECT_EQ(w[0], 0xAA995566u);
    EXPECT_EQ(w[3], 0x01020000u);
    EXPECT_EQ(w[8], 0x5650EEA7u);  // "Random SimB Word 0"
    EXPECT_EQ(w[13], 0x0000000Du);
}

TEST(SimB, DescribeAnnotatesEveryRow) {
    const std::string d = SimB::describe(SimB::table1_example());
    EXPECT_NE(d.find("SYNC word"), std::string::npos);
    EXPECT_NE(d.find("Type 1 write FAR"), std::string::npos);
    EXPECT_NE(d.find("module id=0x02 in RR id=0x01"), std::string::npos);
    EXPECT_NE(d.find("Type 2 write FDRI, size=4"), std::string::npos);
    EXPECT_NE(d.find("starts error injection"), std::string::npos);
    EXPECT_NE(d.find("triggers swap"), std::string::npos);
    EXPECT_NE(d.find("DESYNC"), std::string::npos);
    // One line per word — and a complete stream gets no malformed or
    // truncation annotations.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(d.begin(), d.end(), '\n')),
              SimB::table1_example().size());
    EXPECT_EQ(d.find("MALFORMED"), std::string::npos);
    EXPECT_EQ(d.find("truncated"), std::string::npos);
}

// Regression: describe() used to track the FDRI handshake in a dead
// variable, silently annotating a type-2 packet with no preceding FDRI
// header as a normal transfer.
TEST(SimB, DescribeFlagsType2WithoutFdriHeader) {
    const std::vector<std::uint32_t> ws{kSyncWord, type2_write(2), 0x1u,
                                        0x2u};
    const std::string d = SimB::describe(ws);
    EXPECT_NE(d.find("MALFORMED: no preceding FDRI header"),
              std::string::npos)
        << d;
}

TEST(SimB, DescribeNotesTruncatedStream) {
    auto ws = SimB::table1_example();
    ws.resize(10);  // keep 2 of the 4 payload words
    const std::string d = SimB::describe(ws);
    EXPECT_NE(d.find("truncated stream: 2 payload words missing"),
              std::string::npos)
        << d;
}

// --------------------------------------------------- artifact + portal

struct ResimTb {
    Scheduler sch;
    Clock clk{sch, "clk", 10 * NS};
    ResetGen rst{sch, "rst", 30 * NS};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 100000}};
    rtlsim::Signal<Logic> done_line{sch, "done", Logic::L0};
    EngineRegs cie_regs{sch, "cie_regs", clk.out, 0x60};
    EngineRegs me_regs{sch, "me_regs", clk.out, 0x68};
    CensusEngine cie{sch, "cie", clk.out, rst.out, cie_regs};
    MatchingEngine me{sch, "me", clk.out, rst.out, me_regs};
    RrBoundary rr{sch, "rr", plb.master(0), done_line};
    ExtendedPortal portal{sch, "portal"};
    IcapArtifact icap{sch, "icap", portal};

    ResimTb() {
        plb.attach_slave(mem);
        rr.add_module(cie);
        rr.add_module(me);
        portal.map_module(1, 1, rr, 0);
        portal.map_module(1, 2, rr, 1);
        portal.initial_configuration(1, 1);
    }

    void write_all(const std::vector<std::uint32_t>& ws) {
        for (std::uint32_t w : ws) icap.icap_write(Word{w});
    }
};

TEST(IcapArtifact, FullSimBSwapsModule) {
    ResimTb tb;
    EXPECT_TRUE(tb.cie.rm_active());
    SimB b;
    b.rr_id = 1;
    b.module_id = 2;
    b.payload_words = 8;
    tb.write_all(b.build());
    EXPECT_TRUE(tb.me.rm_active());
    EXPECT_FALSE(tb.cie.rm_active());
    EXPECT_EQ(tb.portal.reconfigurations(), 1u);
    EXPECT_EQ(tb.icap.simbs_completed(), 1u);
    EXPECT_FALSE(tb.icap.in_session());
    EXPECT_TRUE(tb.sch.diagnostics().empty());
}

TEST(IcapArtifact, ErrorInjectionWindowSpansPayload) {
    ResimTb tb;
    SimB b;
    b.rr_id = 1;
    b.module_id = 2;
    b.payload_words = 4;
    const auto ws = b.build();
    // Up to and including the type-2 header: no injection yet.
    for (std::size_t i = 0; i < 8; ++i) tb.icap.icap_write(Word{ws[i]});
    EXPECT_FALSE(tb.rr.reconfiguring());
    // First payload word opens the window.
    tb.icap.icap_write(Word{ws[8]});
    EXPECT_TRUE(tb.rr.reconfiguring());
    tb.icap.icap_write(Word{ws[9]});
    tb.icap.icap_write(Word{ws[10]});
    EXPECT_TRUE(tb.rr.reconfiguring());
    // Last payload word closes it and swaps.
    tb.icap.icap_write(Word{ws[11]});
    EXPECT_FALSE(tb.rr.reconfiguring());
    EXPECT_TRUE(tb.me.rm_active());
    // DESYNC just closes the session.
    tb.icap.icap_write(Word{ws[12]});
    tb.icap.icap_write(Word{ws[13]});
    EXPECT_FALSE(tb.icap.in_session());
}

TEST(IcapArtifact, WordsBeforeSyncAreIgnored) {
    ResimTb tb;
    tb.icap.icap_write(Word{0x12345678});
    tb.icap.icap_write(Word{0xCAFEBABE});
    EXPECT_EQ(tb.icap.ignored_before_sync(), 2u);
    EXPECT_FALSE(tb.icap.in_session());
    SimB b;
    b.rr_id = 1;
    b.module_id = 2;
    tb.write_all(b.build());
    EXPECT_TRUE(tb.me.rm_active()) << "stream recovers at SYNC";
}

TEST(IcapArtifact, TruncatedPayloadLeavesInjectionActive) {
    ResimTb tb;
    SimB b;
    b.rr_id = 1;
    b.module_id = 2;
    b.payload_words = 8;
    auto ws = b.build();
    ws.resize(12);  // cut mid-payload (the bug.dpr.5 outcome)
    tb.write_all(ws);
    EXPECT_TRUE(tb.rr.reconfiguring()) << "region still being written";
    EXPECT_TRUE(tb.cie.rm_active()) << "swap never happened";
    EXPECT_EQ(tb.portal.reconfigurations(), 0u);
    EXPECT_TRUE(tb.icap.payload_pending());
}

// A truncated SimB leaves the parser mid-payload. Regression for the
// formerly unreachable truncation diagnostic: the *next* transfer's SYNC
// word is where the truncation becomes observable, so the artifact must
// report it there (once), abort the half-written configuration without a
// swap, and then parse the new transfer normally — how bug.dpr.5 surfaces
// on the following reconfiguration.
TEST(IcapArtifact, MidPayloadSyncReportsTruncationAndRecovers) {
    ResimTb tb;
    SimB b;
    b.rr_id = 1;
    b.module_id = 2;
    b.payload_words = 8;
    auto first = b.build();
    first.resize(11);  // only 3 of 8 payload words arrive
    tb.write_all(first);
    ASSERT_TRUE(tb.icap.payload_pending());
    // The next DPR attempt: its SYNC word exposes the outstanding payload.
    tb.write_all(b.build());
    EXPECT_TRUE(tb.sch.has_diag_from("icap"));
    EXPECT_EQ(tb.icap.truncations(), 1u);
    EXPECT_EQ(tb.portal.aborts(), 1u)
        << "half-written module must not activate";
    // The abandoned transfer closed its error-injection window, and the
    // second, complete transfer swapped module 2 in.
    EXPECT_FALSE(tb.rr.reconfiguring());
    EXPECT_EQ(tb.portal.reconfigurations(), 1u);
    EXPECT_TRUE(tb.me.rm_active()) << "recovery transfer must succeed";
    EXPECT_FALSE(tb.icap.payload_pending());
    // Exactly one truncation report (per-event, not per leftover word).
    unsigned truncation_diags = 0;
    for (const auto& d : tb.sch.diagnostics()) {
        if (d.message.find("truncated") != std::string::npos) {
            ++truncation_diags;
        }
    }
    EXPECT_EQ(truncation_diags, 1u);
}

// The same scenario through the structured event stream: the recorder sees
// the malformed event with the truncation code, the abort, and then the
// recovery session's swap.
TEST(IcapArtifact, TruncationEmitsMalformedAndAbortEvents) {
    ResimTb tb;
    obs::EventRecorder rec(256);
    rec.set_enabled(true);
    tb.icap.set_observer(&rec);
    tb.portal.set_observer(&rec);
    SimB b;
    b.rr_id = 1;
    b.module_id = 2;
    b.payload_words = 8;
    auto first = b.build();
    first.resize(11);
    tb.write_all(first);
    tb.write_all(b.build());

    bool saw_truncation = false, saw_abort = false, saw_swap = false;
    for (const obs::Event& e : rec.snapshot()) {
        if (e.kind == obs::EventKind::kMalformed &&
            e.a == static_cast<std::uint32_t>(
                       obs::MalformedCode::kTruncatedPayload)) {
            saw_truncation = true;
            EXPECT_FALSE(saw_abort) << "malformed precedes the abort";
        }
        if (e.kind == obs::EventKind::kAbort) saw_abort = true;
        if (e.kind == obs::EventKind::kSwap) {
            EXPECT_TRUE(saw_abort) << "only the recovery transfer swaps";
            saw_swap = true;
        }
    }
    EXPECT_TRUE(saw_truncation);
    EXPECT_TRUE(saw_abort);
    EXPECT_TRUE(saw_swap);
}

TEST(IcapArtifact, XWordIsReportedAndSkipped) {
    ResimTb tb;
    tb.icap.icap_write(Word{kSyncWord});
    tb.icap.icap_write(Word::all_x());
    EXPECT_TRUE(tb.sch.has_diag_from("icap"));
    EXPECT_TRUE(tb.icap.in_session()) << "parser state survives the X word";
}

TEST(IcapArtifact, UnmappedModuleIsReportedAndNotSwapped) {
    ResimTb tb;
    SimB b;
    b.rr_id = 1;
    b.module_id = 9;  // nobody home
    tb.write_all(b.build());
    EXPECT_TRUE(tb.sch.has_diag_from("portal"));
    EXPECT_TRUE(tb.cie.rm_active());
    EXPECT_EQ(tb.portal.reconfigurations(), 0u);
}

TEST(IcapArtifact, BackToBackSimBs) {
    ResimTb tb;
    SimB to_me;
    to_me.rr_id = 1;
    to_me.module_id = 2;
    SimB to_cie;
    to_cie.rr_id = 1;
    to_cie.module_id = 1;
    for (int i = 0; i < 3; ++i) {
        tb.write_all(to_me.build());
        EXPECT_TRUE(tb.me.rm_active());
        tb.write_all(to_cie.build());
        EXPECT_TRUE(tb.cie.rm_active());
    }
    EXPECT_EQ(tb.portal.reconfigurations(), 6u);
    EXPECT_EQ(tb.icap.simbs_completed(), 6u);
}

TEST(IcapArtifact, PayloadBeforeFarIsReported) {
    ResimTb tb;
    std::vector<std::uint32_t> ws{
        kSyncWord,
        type1_write(CfgReg::kFdri, 0),
        type2_write(2),
        0x1111, 0x2222,
    };
    tb.write_all(ws);
    EXPECT_TRUE(tb.sch.has_diag_from("portal"));
    EXPECT_EQ(tb.portal.reconfigurations(), 0u);
}

TEST(IcapArtifact, Type2WithoutFdriHeaderIsReported) {
    ResimTb tb;
    tb.icap.icap_write(Word{kSyncWord});
    tb.icap.icap_write(Word{type2_write(1)});
    EXPECT_TRUE(tb.sch.has_diag_from("icap"));
}

TEST(IcapArtifact, ShortFormFdriPayload) {
    // Type-1 FDRI with an immediate count (no type-2 follow-up).
    ResimTb tb;
    std::vector<std::uint32_t> ws{
        kSyncWord,
        type1_write(CfgReg::kFar, 1),
        far_word(1, 2),
        type1_write(CfgReg::kCmd, 1),
        static_cast<std::uint32_t>(CfgCmd::kWcfg),
        type1_write(CfgReg::kFdri, 3),
        0xAAAA, 0xBBBB, 0xCCCC,
        type1_write(CfgReg::kCmd, 1),
        static_cast<std::uint32_t>(CfgCmd::kDesync),
    };
    tb.write_all(ws);
    EXPECT_TRUE(tb.me.rm_active());
    EXPECT_EQ(tb.portal.reconfigurations(), 1u);
    EXPECT_TRUE(tb.sch.diagnostics().empty());
}

TEST(ExtendedPortal, MultipleRegions) {
    // Two regions, each with its own boundary; FAR selects per-region.
    Scheduler sch;
    Clock clk(sch, "clk", 10 * NS);
    ResetGen rst(sch, "rst", 30 * NS);
    Memory mem;
    Plb plb(sch, "plb", clk.out, rst.out, Plb::Config{2, 16, 100000});
    plb.attach_slave(mem);
    rtlsim::Signal<Logic> d0(sch, "d0", Logic::L0);
    rtlsim::Signal<Logic> d1(sch, "d1", Logic::L0);
    EngineRegs r0(sch, "r0", clk.out, 0x60);
    EngineRegs r1(sch, "r1", clk.out, 0x68);
    EngineRegs r2(sch, "r2", clk.out, 0x70);
    EngineRegs r3(sch, "r3", clk.out, 0x78);
    CensusEngine e0(sch, "e0", clk.out, rst.out, r0);
    MatchingEngine e1(sch, "e1", clk.out, rst.out, r1);
    CensusEngine e2(sch, "e2", clk.out, rst.out, r2);
    MatchingEngine e3(sch, "e3", clk.out, rst.out, r3);
    RrBoundary rrA(sch, "rrA", plb.master(0), d0);
    RrBoundary rrB(sch, "rrB", plb.master(1), d1);
    rrA.add_module(e0);
    rrA.add_module(e1);
    rrB.add_module(e2);
    rrB.add_module(e3);

    ExtendedPortal portal(sch, "portal");
    IcapArtifact icap(sch, "icap", portal);
    portal.map_module(1, 1, rrA, 0);
    portal.map_module(1, 2, rrA, 1);
    portal.map_module(2, 1, rrB, 0);
    portal.map_module(2, 2, rrB, 1);
    portal.initial_configuration(1, 1);
    portal.initial_configuration(2, 1);

    SimB b;
    b.rr_id = 2;
    b.module_id = 2;
    for (std::uint32_t w : b.build()) icap.icap_write(Word{w});
    EXPECT_TRUE(e0.rm_active()) << "region A untouched";
    EXPECT_TRUE(e3.rm_active()) << "region B swapped";
    EXPECT_FALSE(e2.rm_active());
}

}  // namespace
}  // namespace autovision::resim
