// Full-system integration tests: the Optical Flow Demonstrator processes
// synthetic video end to end under both simulation methods, and the fault
// catalogue is detected (or escapes) exactly as Table III predicts.
#include <gtest/gtest.h>

#include "sys/address_map.hpp"
#include "sys/testbench.hpp"

namespace autovision::sys {
namespace {

SystemConfig small_config(FirmwareConfig::Method method) {
    SystemConfig cfg;
    cfg.method = method;
    cfg.width = 32;
    cfg.height = 24;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 2;
    cfg.simb_payload_words = 20;
    return cfg;
}

TEST(System, ResimCleanRunTwoFrames) {
    Testbench tb(small_config(FirmwareConfig::Method::kResim));
    const RunResult r = tb.run(2);
    EXPECT_TRUE(r.clean()) << r.verdict();
    EXPECT_EQ(r.frames_completed, 2u);
    EXPECT_EQ(tb.sys.mailbox(kMbCieCount), 2u);
    EXPECT_EQ(tb.sys.mailbox(kMbMeCount), 2u);
    // Two reconfigurations per frame (CIE->ME and ME->CIE).
    EXPECT_EQ(tb.sys.mailbox(kMbDprCount), 4u);
    EXPECT_EQ(tb.sys.portal->reconfigurations(), 4u);
    EXPECT_EQ(tb.sys.icap_artifact->simbs_completed(), 4u);
    EXPECT_EQ(tb.displayed.size(), 2u);
}

TEST(System, VmCleanRunTwoFrames) {
    Testbench tb(small_config(FirmwareConfig::Method::kVm));
    const RunResult r = tb.run(2);
    EXPECT_TRUE(r.clean()) << r.verdict();
    EXPECT_EQ(r.frames_completed, 2u);
    EXPECT_EQ(tb.sys.vmux->swaps(), 5u) << "init + 2 swaps per frame";
    EXPECT_EQ(tb.sys.null_icap.words(), 0u)
        << "the IcapCTRL is never exercised under VM";
}

}  // namespace
}  // namespace autovision::sys
