// Unit tests for the Virtual Multiplexing layer and the verification IPs
// (video VIPs and scoreboard).
#include <gtest/gtest.h>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/rr_boundary.hpp"
#include "video/census.hpp"
#include "video/synth.hpp"
#include "vip/scoreboard.hpp"
#include "vip/video_vip.hpp"
#include "vm/virtual_mux.hpp"

namespace autovision {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;
using rtlsim::Word;

constexpr rtlsim::Time kClk = 10 * NS;

struct VmTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 100000}};
    rtlsim::Signal<Logic> done_line{sch, "done", Logic::L0};
    EngineRegs cie_regs{sch, "cie_regs", clk.out, 0x60};
    EngineRegs me_regs{sch, "me_regs", clk.out, 0x68};
    CensusEngine cie{sch, "cie", clk.out, rst.out, cie_regs};
    MatchingEngine me{sch, "me", clk.out, rst.out, me_regs};
    RrBoundary rr{sch, "rr", plb.master(0), done_line};
    vm::VirtualMux mux{sch, "vmux", rr, 0x70};

    VmTb() {
        plb.attach_slave(mem);
        rr.set_unselected_policy(RrBoundary::UnselectedPolicy::kIdle);
        rr.add_module(cie);
        rr.add_module(me);
        mux.map_module(1, 0);
        mux.map_module(2, 1);
    }
    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }
};

TEST(VirtualMux, UninitialisedSelectsNothing) {
    VmTb tb;
    tb.run_cycles(5);
    EXPECT_FALSE(tb.mux.initialised());
    EXPECT_FALSE(tb.cie.rm_active());
    EXPECT_FALSE(tb.me.rm_active());
    EXPECT_TRUE(tb.mux.dcr_read(0x70).has_unknown())
        << "reading the uninitialised signature returns X";
}

TEST(VirtualMux, SignatureWriteSwapsInstantly) {
    VmTb tb;
    tb.mux.dcr_write(0x70, Word{1});
    EXPECT_TRUE(tb.cie.rm_active()) << "zero-delay swap";
    tb.mux.dcr_write(0x70, Word{2});
    EXPECT_TRUE(tb.me.rm_active());
    EXPECT_FALSE(tb.cie.rm_active());
    EXPECT_EQ(tb.mux.swaps(), 2u);
    EXPECT_EQ(tb.mux.dcr_read(0x70).to_u64(), 2u);
}

TEST(VirtualMux, UnmappedSignatureReportsAndDeselects) {
    VmTb tb;
    tb.mux.dcr_write(0x70, Word{1});
    tb.mux.dcr_write(0x70, Word{7});
    EXPECT_TRUE(tb.sch.has_diag_from("vmux"));
    EXPECT_FALSE(tb.cie.rm_active());
    EXPECT_FALSE(tb.me.rm_active());
}

TEST(VirtualMux, XWriteIsReported) {
    VmTb tb;
    tb.mux.dcr_write(0x70, Word::all_x());
    EXPECT_TRUE(tb.sch.has_diag_from("vmux"));
    EXPECT_FALSE(tb.mux.initialised());
}

TEST(VirtualMux, NoErrorsGeneratedDuringSwap) {
    // The defining VM limitation: swapping never produces erroneous
    // signals, so the bus checker stays silent throughout.
    VmTb tb;
    tb.run_cycles(5);
    for (int i = 0; i < 10; ++i) {
        tb.mux.dcr_write(0x70, Word{static_cast<std::uint32_t>(1 + i % 2)});
        tb.run_cycles(3);
    }
    EXPECT_TRUE(tb.sch.diagnostics().empty());
}

// ------------------------------------------------------------ video VIPs

struct VipTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{2, 16, 100000}};
    vip::VideoInVip vin{sch, "vin", clk.out, plb.master(0)};
    vip::VideoOutVip vout{sch, "vout", clk.out, plb.master(1)};

    VipTb() { plb.attach_slave(mem); }
    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }
};

TEST(VideoVip, RoundTripThroughMemory) {
    VipTb tb;
    video::SyntheticScene scene(video::SceneConfig::standard(32, 24, 9));
    const video::Frame f = scene.frame(0);
    bool sent = false;
    tb.vin.send_frame(f, 0x10000, [&] { sent = true; });
    tb.run_cycles(5000);
    ASSERT_TRUE(sent);
    EXPECT_EQ(tb.vin.frames_sent(), 1u);
    // Memory now holds the frame, byte-packed big-endian.
    EXPECT_EQ(tb.mem.peek_u8(0x10000), f.at(0, 0));
    EXPECT_EQ(tb.mem.peek_u8(0x10000 + 33), f.at(1, 1));

    video::Frame got;
    tb.vout.fetch_frame(0x10000, 32, 24, [&](video::Frame g) {
        got = std::move(g);
    });
    tb.run_cycles(5000);
    ASSERT_FALSE(got.empty());
    EXPECT_EQ(got, f);
    EXPECT_EQ(tb.vout.frames_fetched(), 1u);
}

TEST(VideoVip, FrameIrqPulsesOnceOnCompletion) {
    VipTb tb;
    int pulses = 0;
    rtlsim::Process mon(tb.sch, "mon", [&] { ++pulses; });
    tb.vin.frame_irq.add_listener(mon, rtlsim::Edge::Pos);
    video::Frame f(16, 8, 77);
    tb.vin.send_frame(f, 0x8000);
    tb.run_cycles(3000);
    EXPECT_EQ(pulses, 1);
}

TEST(VideoVip, BusySendIsReportedAndDropped) {
    VipTb tb;
    video::Frame f(16, 8, 1);
    tb.vin.send_frame(f, 0x8000);
    tb.vin.send_frame(f, 0x9000);  // while the first is still streaming
    tb.run_cycles(3000);
    EXPECT_TRUE(tb.sch.has_diag_from("vin"));
    EXPECT_EQ(tb.vin.frames_sent(), 1u);
}

TEST(VideoVip, XInDisplayedFrameIsReported) {
    VipTb tb;
    tb.mem.poke(0x8000, Word::all_x());
    video::Frame got;
    tb.vout.fetch_frame(0x8000, 8, 4, [&](video::Frame g) {
        got = std::move(g);
    });
    tb.run_cycles(2000);
    ASSERT_FALSE(got.empty());
    EXPECT_TRUE(tb.sch.has_diag_from("vout"));
}

// ------------------------------------------------------------ scoreboard

TEST(Scoreboard, AcceptsGoldenPipelineOutput) {
    video::MatchConfig mc;
    mc.step = 4;
    mc.margin = 8;
    mc.search = 2;
    vip::Scoreboard sb(mc, 32, 24, 2);
    video::SyntheticScene scene(video::SceneConfig::standard(32, 24, 4));

    Memory mem;
    // Frame 0: write exactly what the hardware should produce.
    const video::Frame c0 = video::census_transform(scene.frame(0));
    mem.load_bytes(0x1000, c0.pixels());
    const video::MotionField f0 =
        video::match_census(video::Frame(32, 24, 0), c0, mc);
    for (std::size_t i = 0; i < f0.vectors.size(); ++i) {
        mem.poke_u32(0x2000 + 4 * static_cast<std::uint32_t>(i),
                     video::encode_motion_word(f0.vectors[i]));
    }
    sb.expect_frame(scene.frame(0));
    EXPECT_EQ(sb.check_census(mem, 0x1000), 0u);
    EXPECT_EQ(sb.check_field(mem, 0x2000), 0u);
}

TEST(Scoreboard, FlagsCorruptedData) {
    video::MatchConfig mc;
    mc.step = 4;
    mc.margin = 8;
    mc.search = 2;
    vip::Scoreboard sb(mc, 32, 24, 2);
    video::SyntheticScene scene(video::SceneConfig::standard(32, 24, 4));
    Memory mem;
    const video::Frame c0 = video::census_transform(scene.frame(0));
    mem.load_bytes(0x1000, c0.pixels());
    sb.expect_frame(scene.frame(0));
    ASSERT_EQ(sb.check_census(mem, 0x1000), 0u);
    mem.poke_u8(0x1000 + 100, static_cast<std::uint8_t>(c0.pixels()[100] ^ 1));
    EXPECT_EQ(sb.check_census(mem, 0x1000), 1u);
    mem.poke(0x1000 + 4, Word::all_x());
    EXPECT_EQ(sb.check_census(mem, 0x1000), 5u) << "4 X bytes + 1 flipped";
}

TEST(Scoreboard, PerFrameOutputReferences) {
    video::MatchConfig mc;
    mc.step = 4;
    mc.margin = 8;
    mc.search = 2;
    vip::Scoreboard sb(mc, 32, 24, 2);
    video::SyntheticScene scene(video::SceneConfig::standard(32, 24, 4));
    sb.expect_frame(scene.frame(0));
    sb.expect_frame(scene.frame(1));
    EXPECT_EQ(sb.frames_expected(), 2u);
    // Checking a frame index we never expected counts everything wrong.
    video::Frame blank(32, 24, 0);
    EXPECT_EQ(sb.check_output(blank, 5), blank.size());
    // Frame 0's marker image should be mostly zeros (first frame compares
    // against an all-zero census: huge costs, but dx/dy come from the scan
    // tie-break — just verify determinism between two scoreboards).
    vip::Scoreboard sb2(mc, 32, 24, 2);
    sb2.expect_frame(scene.frame(0));
    EXPECT_EQ(sb.check_output(blank, 0), sb2.check_output(blank, 0));
}

}  // namespace
}  // namespace autovision
