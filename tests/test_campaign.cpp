// The campaign subsystem: queue ordering, worker-count convention,
// timeout -> retry -> permanent-failure classification, aggregate math,
// JSONL atomicity, and cross-worker determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/aggregate.hpp"
#include "campaign/campaigns.hpp"
#include "campaign/pool.hpp"
#include "campaign/runner.hpp"
#include "campaign/sink.hpp"

namespace autovision::campaign {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Queue and pool
// ---------------------------------------------------------------------------

TEST(CampaignQueue, FifoOrdering) {
    BoundedQueue<int> q(16);
    for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
    for (int i = 0; i < 10; ++i) {
        const auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
}

TEST(CampaignQueue, PushBlocksWhenFullUntilPop) {
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    std::atomic<bool> third_pushed{false};
    std::thread producer([&] {
        q.push(3);  // must block until a slot frees up
        third_pushed.store(true);
    });
    std::this_thread::sleep_for(20ms);
    EXPECT_FALSE(third_pushed.load()) << "push must block on a full queue";
    EXPECT_EQ(q.pop().value(), 1);
    producer.join();
    EXPECT_TRUE(third_pushed.load());
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
}

TEST(CampaignQueue, CloseDrainsPendingThenStops) {
    BoundedQueue<int> q(8);
    EXPECT_TRUE(q.push(7));
    q.close();
    EXPECT_FALSE(q.push(8)) << "push after close must fail";
    EXPECT_EQ(q.pop().value(), 7) << "pending items drain after close";
    EXPECT_FALSE(q.pop().has_value()) << "then pop reports closed";
}

TEST(CampaignPool, ResolveWorkersConvention) {
    EXPECT_GE(resolve_workers(0), 1u);
    EXPECT_EQ(resolve_workers(3), 3u);
    EXPECT_EQ(resolve_workers(1), 1u);
}

TEST(CampaignPool, RunsEverySubmittedTask) {
    std::atomic<int> ran{0};
    {
        WorkerPool pool(4, 2);  // queue smaller than the batch
        for (int i = 0; i < 32; ++i) {
            pool.submit([&] { ran.fetch_add(1); });
        }
        pool.drain();
    }
    EXPECT_EQ(ran.load(), 32);
}

// ---------------------------------------------------------------------------
// Timeout / retry / permanent-failure classification
// ---------------------------------------------------------------------------

SimJob trivial_job(std::string name, bool pass) {
    SimJob job;
    job.name = std::move(name);
    job.body = [pass](const JobContext&) {
        JobReport rep;
        rep.pass = pass;
        if (!pass) rep.verdict = "[synthetic failure]";
        return rep;
    };
    return job;
}

TEST(CampaignRunner, TimeoutThenRetriesThenPermanentFailure) {
    SimJob job;
    job.name = "hung";
    job.body = [](const JobContext&) {
        std::this_thread::sleep_for(30ms);  // always over budget
        JobReport rep;
        rep.pass = true;
        return rep;
    };
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.timeout = 5ms;
    cfg.retries = 2;
    const CampaignResult r = CampaignRunner(cfg).run({job});
    ASSERT_EQ(r.records.size(), 1u);
    EXPECT_EQ(r.records[0].status, JobStatus::kTimeout);
    EXPECT_EQ(r.records[0].attempts, 3u) << "1 attempt + 2 retries";
    EXPECT_FALSE(r.records[0].error.empty());
    EXPECT_EQ(r.summary.timed_out, 1u);
    EXPECT_EQ(r.summary.retried, 1u);
    EXPECT_FALSE(r.summary.all_passed());
}

TEST(CampaignRunner, FlakyTimeoutRecoversOnRetry) {
    auto attempts_seen = std::make_shared<std::atomic<int>>(0);
    SimJob job;
    job.name = "flaky";
    job.body = [attempts_seen](const JobContext&) {
        if (attempts_seen->fetch_add(1) == 0) {
            std::this_thread::sleep_for(30ms);  // first attempt hangs
        }
        JobReport rep;
        rep.pass = true;
        return rep;
    };
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.timeout = 5ms;
    cfg.retries = 1;
    const CampaignResult r = CampaignRunner(cfg).run({job});
    ASSERT_EQ(r.records.size(), 1u);
    EXPECT_EQ(r.records[0].status, JobStatus::kPass);
    EXPECT_EQ(r.records[0].attempts, 2u);
    EXPECT_EQ(r.summary.retried, 1u);
    EXPECT_TRUE(r.summary.all_passed());
}

TEST(CampaignRunner, WatchdogCancelsCooperativeHungJob) {
    SimJob job;
    job.name = "cooperative-hang";
    job.body = [](const JobContext& ctx) {
        // Simulates a hung run that (like Testbench) polls its cancel flag;
        // the hard cap only guards the test against a broken watchdog.
        const auto cap = std::chrono::steady_clock::now() + 2s;
        while (!ctx.cancelled() && std::chrono::steady_clock::now() < cap) {
            std::this_thread::sleep_for(1ms);
        }
        JobReport rep;
        rep.pass = true;
        return rep;
    };
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.timeout = 20ms;
    cfg.retries = 0;
    const CampaignResult r = CampaignRunner(cfg).run({job});
    ASSERT_EQ(r.records.size(), 1u);
    EXPECT_EQ(r.records[0].status, JobStatus::kTimeout);
    EXPECT_EQ(r.records[0].attempts, 1u);
    EXPECT_LT(r.records[0].wall, 1s)
        << "the watchdog, not the body's own cap, must end the attempt";
}

TEST(CampaignRunner, ErrorsAreRetriedThenRecorded) {
    SimJob job;
    job.name = "thrower";
    job.body = [](const JobContext&) -> JobReport {
        throw std::runtime_error("synthetic body failure");
    };
    CampaignConfig cfg;
    cfg.jobs = 2;
    cfg.retries = 1;
    const CampaignResult r = CampaignRunner(cfg).run({job});
    ASSERT_EQ(r.records.size(), 1u);
    EXPECT_EQ(r.records[0].status, JobStatus::kError);
    EXPECT_EQ(r.records[0].attempts, 2u);
    EXPECT_EQ(r.records[0].error, "synthetic body failure");
    EXPECT_EQ(r.summary.errored, 1u);
}

TEST(CampaignRunner, DeterministicFailIsNotRetried) {
    CampaignConfig cfg;
    cfg.jobs = 1;
    cfg.timeout = 5000ms;
    cfg.retries = 3;
    const CampaignResult r =
        CampaignRunner(cfg).run({trivial_job("fails", false)});
    ASSERT_EQ(r.records.size(), 1u);
    EXPECT_EQ(r.records[0].status, JobStatus::kFail);
    EXPECT_EQ(r.records[0].attempts, 1u)
        << "a completed fail verdict is a finding, not flakiness";
    EXPECT_EQ(r.summary.failed, 1u);
}

TEST(CampaignRunner, RecordsKeepSubmissionOrder) {
    std::vector<SimJob> jobs;
    for (int i = 0; i < 12; ++i) {
        jobs.push_back(trivial_job("job." + std::to_string(i), true));
    }
    CampaignConfig cfg;
    cfg.jobs = 4;
    const CampaignResult r = CampaignRunner(cfg).run(jobs);
    ASSERT_EQ(r.records.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(r.records[i].name, "job." + std::to_string(i));
        EXPECT_EQ(r.records[i].index, i);
    }
}

// ---------------------------------------------------------------------------
// Aggregate math
// ---------------------------------------------------------------------------

TEST(CampaignAggregate, SimStatsSumOperators) {
    rtlsim::SimStats a;
    a.timed_events = 1;
    a.delta_cycles = 2;
    a.proc_invocations = 3;
    a.signal_updates = 4;
    a.time_steps = 5;
    rtlsim::SimStats b;
    b.timed_events = 10;
    b.delta_cycles = 20;
    b.proc_invocations = 30;
    b.signal_updates = 40;
    b.time_steps = 50;

    const rtlsim::SimStats s = a + b;
    EXPECT_EQ(s.timed_events, 11u);
    EXPECT_EQ(s.delta_cycles, 22u);
    EXPECT_EQ(s.proc_invocations, 33u);
    EXPECT_EQ(s.signal_updates, 44u);
    EXPECT_EQ(s.time_steps, 55u);

    rtlsim::SimStats c = a;
    c += b;
    EXPECT_EQ(c, s);
    EXPECT_EQ((s - b), a) << "operator- stays the inverse of operator+";
}

TEST(CampaignAggregate, SummaryCountsAndPercentiles) {
    std::vector<JobRecord> records(10);
    for (std::size_t i = 0; i < records.size(); ++i) {
        records[i].name = "r" + std::to_string(i);
        records[i].attempts = 1;
        // Walls 10, 20, ..., 100 ms.
        records[i].wall = std::chrono::milliseconds{10 * (i + 1)};
        records[i].status = JobStatus::kPass;
        records[i].report.stats.signal_updates = 100;
        records[i].report.sim_time = 1000;
    }
    records[7].status = JobStatus::kFail;
    records[8].status = JobStatus::kTimeout;
    records[8].attempts = 3;
    records[9].status = JobStatus::kError;
    records[9].attempts = 2;

    const CampaignSummary s = CampaignSummary::from(records);
    EXPECT_EQ(s.total, 10u);
    EXPECT_EQ(s.passed, 7u);
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.timed_out, 1u);
    EXPECT_EQ(s.errored, 1u);
    EXPECT_EQ(s.retried, 2u);
    EXPECT_FALSE(s.all_passed());

    // Nearest-rank over {10..100} ms: p50 = 50 ms, p95 = 100 ms.
    EXPECT_EQ(s.wall_p50, std::chrono::milliseconds{50});
    EXPECT_EQ(s.wall_p95, std::chrono::milliseconds{100});
    EXPECT_EQ(s.wall_max, std::chrono::milliseconds{100});
    EXPECT_EQ(s.wall_total, std::chrono::milliseconds{550});
    EXPECT_EQ(s.stats.signal_updates, 1000u);
    EXPECT_EQ(s.sim_time, rtlsim::Time{10000});
}

TEST(CampaignAggregate, PercentileNearestRankEdgeCases) {
    using Ns = std::chrono::nanoseconds;
    EXPECT_EQ(CampaignSummary::percentile({}, 50.0), Ns{0});
    EXPECT_EQ(CampaignSummary::percentile({Ns{5}}, 50.0), Ns{5});
    EXPECT_EQ(CampaignSummary::percentile({Ns{5}}, 95.0), Ns{5});
    EXPECT_EQ(CampaignSummary::percentile({Ns{3}, Ns{1}}, 50.0), Ns{1})
        << "percentile sorts its input";
}

// ---------------------------------------------------------------------------
// JSONL sink
// ---------------------------------------------------------------------------

TEST(CampaignSink, JsonEscaping) {
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(CampaignSink, RecordSerialisesToOneJsonLine) {
    JobRecord rec;
    rec.name = "job \"quoted\"";
    rec.params = {{"k", "v\n"}};
    rec.status = JobStatus::kTimeout;
    rec.attempts = 2;
    rec.error = "budget";
    rec.report.verdict = "[watchdog timeout]";
    rec.report.metrics = {{"m", 1.5}};
    const std::string line = to_jsonl(rec);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(line.find('\n'), std::string::npos)
        << "a record must serialise to a single line";
    EXPECT_NE(line.find("\"status\":\"timeout\""), std::string::npos);
    EXPECT_NE(line.find("\"attempts\":2"), std::string::npos);
    EXPECT_NE(line.find("job \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(line.find("\"m\":1.5"), std::string::npos);
}

TEST(CampaignSink, ConcurrentCampaignLeavesParseableFile) {
    const std::string path =
        ::testing::TempDir() + "/campaign_sink_test.jsonl";
    std::vector<SimJob> jobs;
    for (int i = 0; i < 16; ++i) {
        jobs.push_back(trivial_job("sink." + std::to_string(i), true));
    }
    CampaignConfig cfg;
    cfg.jobs = 8;
    cfg.jsonl_path = path;
    const CampaignResult r = CampaignRunner(cfg).run(jobs);
    EXPECT_TRUE(r.summary.all_passed());

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        EXPECT_NE(line.find("\"name\":\"sink."), std::string::npos) << line;
        ++lines;
    }
    EXPECT_EQ(lines, jobs.size());
    std::remove(path.c_str());
}

// Hammer one sink directly from many writer threads — the shape the
// campaign service produces, where every connected client's jobs feed one
// mirror file. A record is written whole or not at all: no line may ever
// contain fragments of two records.
TEST(CampaignSink, ManyConcurrentWritersNeverInterleave) {
    const std::string path =
        ::testing::TempDir() + "/campaign_sink_hammer.jsonl";
    constexpr int kWriters = 16;
    constexpr int kPerWriter = 64;
    {
        JsonlSink sink(path);
        ASSERT_TRUE(sink.ok());
        std::vector<std::thread> writers;
        for (int w = 0; w < kWriters; ++w) {
            writers.emplace_back([&sink, w] {
                for (int i = 0; i < kPerWriter; ++i) {
                    JobRecord rec;
                    rec.name = "w" + std::to_string(w) + ".r" +
                               std::to_string(i);
                    // A writer-distinct filler long enough that a torn or
                    // interleaved write would split it across lines.
                    rec.params = {{"fill",
                                   std::string(256, char('a' + w % 26))}};
                    rec.report.verdict = "[ok]";
                    rec.report.metrics = {{"writer", double(w)},
                                          {"i", double(i)}};
                    sink.write(rec);
                }
            });
        }
        for (std::thread& t : writers) t.join();
    }

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::string line;
    std::size_t total = 0;
    std::vector<int> per_writer(kWriters, 0);
    while (std::getline(is, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        const std::size_t name_at = line.find("\"name\":\"w");
        ASSERT_NE(name_at, std::string::npos) << line;
        const int w = std::atoi(line.c_str() + name_at + 9);
        ASSERT_GE(w, 0);
        ASSERT_LT(w, kWriters);
        // The filler must be present, uninterrupted, and belong to the
        // same writer as the record's name.
        EXPECT_NE(line.find(std::string(256, char('a' + w % 26))),
                  std::string::npos)
            << "torn record: " << line.substr(0, 80);
        ++per_writer[w];
        ++total;
    }
    EXPECT_EQ(total, std::size_t(kWriters) * kPerWriter);
    for (int w = 0; w < kWriters; ++w) {
        EXPECT_EQ(per_writer[w], kPerWriter) << "writer " << w;
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Determinism: same seeds, different worker counts -> identical verdicts
// and identical per-job kernel statistics.
// ---------------------------------------------------------------------------

TEST(CampaignDeterminism, SeedSweepIdenticalAcrossWorkerCounts) {
    sys::SystemConfig base = small_system_config();
    const auto run_with = [&](unsigned workers) {
        CampaignConfig cfg;
        cfg.jobs = workers;
        return CampaignRunner(cfg).run(
            seed_sweep_jobs(base, /*first_seed=*/1, /*num_seeds=*/3,
                            /*frames=*/1));
    };
    const CampaignResult serial = run_with(1);
    const CampaignResult parallel = run_with(8);
    ASSERT_EQ(serial.records.size(), parallel.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
        const JobRecord& a = serial.records[i];
        const JobRecord& b = parallel.records[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.status, b.status) << a.name;
        EXPECT_EQ(a.report.verdict, b.report.verdict) << a.name;
        EXPECT_EQ(a.report.stats, b.report.stats)
            << a.name << ": kernel statistics must not depend on the"
            << " worker count";
        EXPECT_EQ(a.report.sim_time, b.report.sim_time) << a.name;
    }
    EXPECT_EQ(serial.summary.passed, parallel.summary.passed);
}

}  // namespace
}  // namespace autovision::campaign
