// Multi-region time-shared virtualization: engine library, scheduling
// policies, ICAP arbitration, the RegionManager protocol, and the
// multi-region harness's determinism + checkpoint contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "kernel/clock.hpp"
#include "kernel/kernel.hpp"
#include "obs/recorder.hpp"
#include "recon/icap_port.hpp"
#include "rrm/engine_library.hpp"
#include "rrm/icap_arbiter.hpp"
#include "rrm/policy.hpp"
#include "rrm/rrm_harness.hpp"
#include "sys/testbench.hpp"

namespace {

using namespace autovision;
using namespace autovision::rrm;
using rtlsim::Time;

constexpr Time kClk = 10 * rtlsim::NS;

// ---------------------------------------------------------------------------
// Engine library

TEST(RrmLibrary, CatalogueShape) {
    const auto& lib = engine_library();
    ASSERT_EQ(lib.size(), kNumEngines);
    EXPECT_STREQ(lib[0].id, "census");
    EXPECT_STREQ(lib[1].id, "matching");
    EXPECT_STREQ(lib[2].id, "sobel");
    EXPECT_STREQ(lib[3].id, "flow");
    // EngineKind values double as SimB module ids; the demonstrator's
    // census/matching keep their historical ids 1/2.
    for (std::size_t i = 0; i < lib.size(); ++i) {
        EXPECT_EQ(static_cast<std::size_t>(lib[i].kind), i + 1);
        EXPECT_EQ(find_engine(lib[i].kind), &lib[i]);
    }
    EXPECT_EQ(find_engine(EngineKind::kNone), nullptr);
    EXPECT_TRUE(lib[1].needs_src2);  // matching consumes the previous frame
    EXPECT_TRUE(lib[3].needs_src2);  // flow diffs cur against prev
}

TEST(RrmLibrary, FactoryInstantiatesAllFour) {
    rtlsim::Scheduler sch;
    rtlsim::Clock clk{sch, "clk", kClk};
    rtlsim::ResetGen rst{sch, "rst", 3 * kClk};
    EngineRegs regs{sch, "regs", clk.out, 0x40};
    for (const EngineInfo& info : engine_library()) {
        auto e = make_engine(info.kind, sch, std::string("e.") + info.id,
                             clk.out, rst.out, regs);
        ASSERT_NE(e, nullptr) << info.id;
    }
    EXPECT_EQ(make_engine(EngineKind::kNone, sch, "none", clk.out, rst.out,
                          regs),
              nullptr);
}

// ---------------------------------------------------------------------------
// Policies

Workload mixed_workload() {
    Workload w;
    w.regions = 2;
    w.requests = {
        {0, EngineKind::kSobel, 3},
        {0, EngineKind::kSobel, 0},
        {1, EngineKind::kCensus, 2},
        {1, EngineKind::kFlow, 1},
    };
    return w;
}

TEST(RrmPolicy, ThreePoliciesProduceDocumentedDistinctSchedules) {
    const Workload w = mixed_workload();
    const std::string rr =
        schedule_signature(plan_schedule(Policy::kRoundRobin, w));
    const std::string edf =
        schedule_signature(plan_schedule(Policy::kDeadline, w));
    const std::string demand =
        schedule_signature(plan_schedule(Policy::kDemand, w));

    // Round-robin interleaves per-region queues one per turn.
    EXPECT_EQ(rr, "r0.sobel! r1.census! r0.sobel! r1.flow!");
    // Earliest deadline first, ties on (region, arrival).
    EXPECT_EQ(edf, "r0.sobel! r1.flow! r1.census! r0.sobel!");
    // Demand paging keeps arrival order and elides the resident re-swap.
    EXPECT_EQ(demand, "r0.sobel! r0.sobel r1.census! r1.flow!");

    EXPECT_NE(rr, edf);
    EXPECT_NE(rr, demand);
    EXPECT_NE(edf, demand);
}

TEST(RrmPolicy, PlannerIsPure) {
    const Workload w = mixed_workload();
    for (Policy p :
         {Policy::kRoundRobin, Policy::kDeadline, Policy::kDemand}) {
        EXPECT_EQ(schedule_signature(plan_schedule(p, w)),
                  schedule_signature(plan_schedule(p, w)));
    }
}

TEST(RrmPolicy, EmptyWorkload) {
    EXPECT_TRUE(plan_schedule(Policy::kRoundRobin, Workload{}).empty());
}

// ---------------------------------------------------------------------------
// ICAP arbiter

struct ArbFixture {
    rtlsim::Scheduler sch;
    rtlsim::Clock clk{sch, "clk", kClk};
    rtlsim::ResetGen rst{sch, "rst", 3 * kClk};
    NullIcap sink;
    IcapArbiter arb;
    obs::EventRecorder rec;

    explicit ArbFixture(IcapArbiter::Grant g)
        : arb(sch, "arb", clk.out, rst.out, sink, 3, g) {
        rec.set_enabled(true);
        arb.set_observer(&rec);
        sch.run_until(8 * kClk);
    }

    void drain(Time budget = 4000 * kClk) {
        const Time limit = sch.now() + budget;
        while (arb.busy() && sch.now() < limit) {
            sch.run_until(sch.now() + 16 * kClk);
        }
    }

    [[nodiscard]] std::vector<unsigned> grant_order() const {
        std::vector<unsigned> order;
        for (const obs::Event& e : rec.snapshot()) {
            if (e.kind == obs::EventKind::kArbGrant) {
                order.push_back(e.region);
            }
        }
        return order;
    }
};

std::vector<std::uint32_t> words(std::uint32_t n, std::uint32_t tag) {
    std::vector<std::uint32_t> w(n);
    for (std::uint32_t i = 0; i < n; ++i) w[i] = (tag << 16) | i;
    return w;
}

TEST(RrmArbiter, FairRotationThreeRegionContention) {
    ArbFixture f(IcapArbiter::Grant::kFair);
    // All three regions pile two sessions each onto the arbiter at once.
    for (unsigned round = 0; round < 2; ++round) {
        for (unsigned r = 0; r < 3; ++r) {
            f.arb.submit(r, words(8, r * 10 + round), 1, 0);
        }
    }
    f.drain();
    ASSERT_FALSE(f.arb.busy());
    EXPECT_EQ(f.sink.words(), 6u * 8u);
    // Fair rotation: nobody is granted twice before everyone with pending
    // work is granted once — no starvation.
    EXPECT_EQ(f.grant_order(), (std::vector<unsigned>{0, 1, 2, 0, 1, 2}));
    for (unsigned r = 0; r < 3; ++r) {
        EXPECT_EQ(f.arb.stats(r).sessions, 2u) << r;
        EXPECT_EQ(f.arb.stats(r).words, 16u) << r;
        EXPECT_EQ(f.arb.outstanding(r), 0u) << r;
        // Bounded wait: at worst the other regions' five sessions ahead.
        EXPECT_LE(f.arb.stats(r).max_wait, 5u * 8u + 16u) << r;
    }
}

TEST(RrmArbiter, PriorityGrantsMostUrgentFirst) {
    ArbFixture f(IcapArbiter::Grant::kPriority);
    f.arb.submit(0, words(4, 0), 1, 5);
    f.arb.submit(1, words(4, 1), 1, 1);
    f.arb.submit(2, words(4, 2), 1, 3);
    f.drain();
    ASSERT_FALSE(f.arb.busy());
    EXPECT_EQ(f.grant_order(), (std::vector<unsigned>{1, 2, 0}));
}

TEST(RrmArbiter, WordGapPacesForwarding) {
    ArbFixture f(IcapArbiter::Grant::kFair);
    f.arb.submit(0, words(16, 0), 4, 0);
    const Time before = f.sch.now();
    f.drain();
    ASSERT_FALSE(f.arb.busy());
    // 16 words at one word per 4 cycles needs at least 60 cycles.
    EXPECT_GE(f.sch.now() - before, 60 * kClk);
}

// ---------------------------------------------------------------------------
// Full harness runs

void expect_clean_completion(const RrmResult& res, const RrmConfig& cfg) {
    EXPECT_TRUE(res.completed);
    ASSERT_EQ(res.jobs_done.size(), cfg.regions);
    for (unsigned r = 0; r < cfg.regions; ++r) {
        EXPECT_EQ(res.jobs_done[r], cfg.jobs_per_region) << "region " << r;
        EXPECT_EQ(res.timeouts[r], 0u) << "region " << r;
    }
    EXPECT_EQ(res.diagnostics, 0u)
        << (res.diagnostic_text.empty() ? "" : res.diagnostic_text.front());
}

TEST(RrmHarnessRun, TwoRegionRoundRobinCompletesClean) {
    RrmConfig cfg;
    const RrmResult res = run_rrm_scenario(cfg);
    expect_clean_completion(res, cfg);
    // Time-sharing policies reconfigure per job (the initial full-bitstream
    // configurations are not counted as reconfigurations).
    EXPECT_EQ(res.schedule, "r0.census! r1.matching! r0.matching! r1.sobel!");
    EXPECT_EQ(res.swaps, 4u);
    for (unsigned r = 0; r < cfg.regions; ++r) {
        EXPECT_EQ(res.sessions[r], 2u);
        EXPECT_EQ(res.arb_sessions[r], 2u);
    }
    // Per-region obs rollups carry the same story.
    EXPECT_EQ(res.metrics.per_region[0].jobs, 2u);
    EXPECT_EQ(res.metrics.per_region[1].jobs, 2u);
    EXPECT_EQ(res.metrics.per_region[0].arb_grants, 2u);
    EXPECT_EQ(res.metrics.per_region[1].arb_grants, 2u);
    EXPECT_GT(res.metrics.per_region[1].isolations, 0u);
}

TEST(RrmHarnessRun, ThreeRegionFrameAllPolicies) {
    // The E14 shape: three regions time-sharing sobel/census/flow work.
    std::vector<std::string> schedules;
    for (Policy p :
         {Policy::kRoundRobin, Policy::kDeadline, Policy::kDemand}) {
        RrmConfig cfg;
        cfg.regions = 3;
        cfg.policy = p;
        cfg.seed = 7;
        const RrmResult res = run_rrm_scenario(cfg);
        expect_clean_completion(res, cfg);
        schedules.push_back(std::string(to_string(p)) + ": " + res.schedule);
        // Every region reports its own traffic in the rollup.
        for (unsigned r = 0; r < cfg.regions; ++r) {
            EXPECT_EQ(res.metrics.per_region[r].jobs, cfg.jobs_per_region);
            EXPECT_GT(res.metrics.per_region[r].x_window_cycles.count, 0u);
        }
    }
    // One seed, three documented distinct schedules.
    EXPECT_EQ(schedules[0],
              "rr: r0.census! r1.matching! r2.sobel! r0.matching! r1.sobel! "
              "r2.flow!");
    EXPECT_NE(schedules[0].substr(4), schedules[1].substr(10));
}

TEST(RrmHarnessRun, DeadlinePolicyMapsUrgencyToArbiterPriority) {
    RrmConfig cfg;
    cfg.regions = 3;
    cfg.policy = Policy::kDeadline;
    cfg.grant = IcapArbiter::Grant::kPriority;
    const RrmResult res = run_rrm_scenario(cfg);
    expect_clean_completion(res, cfg);
}

TEST(RrmHarnessRun, VirtualMultiplexingModeSwapsWithoutBitstreams) {
    RrmConfig cfg;
    cfg.vm_mode = true;
    const RrmResult res = run_rrm_scenario(cfg);
    expect_clean_completion(res, cfg);
    // VM swaps are signature writes: the ICAP datapath never runs.
    EXPECT_EQ(res.swaps, 0u);
    for (unsigned r = 0; r < cfg.regions; ++r) {
        EXPECT_EQ(res.sessions[r], 0u);
        EXPECT_EQ(res.arb_sessions[r], 0u);
    }
    // And no X-windows: VM cannot produce reconfiguration errors.
    EXPECT_EQ(res.metrics.x_window_cycles.count, 0u);
}

TEST(RrmHarnessRun, DeterministicAcrossRuns) {
    RrmConfig cfg;
    cfg.regions = 3;
    cfg.seed = 11;
    const RrmResult a = run_rrm_scenario(cfg);
    const RrmResult b = run_rrm_scenario(cfg);
    EXPECT_EQ(a.sim_time, b.sim_time);
    EXPECT_EQ(a.schedule, b.schedule);
    EXPECT_EQ(a.stats.timed_events, b.stats.timed_events);
    EXPECT_EQ(a.stats.delta_cycles, b.stats.delta_cycles);
    EXPECT_EQ(a.stats.signal_updates, b.stats.signal_updates);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].time, b.events[i].time) << i;
        EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
        EXPECT_EQ(a.events[i].region, b.events[i].region) << i;
        EXPECT_EQ(a.events[i].a, b.events[i].a) << i;
        EXPECT_EQ(a.events[i].b, b.events[i].b) << i;
    }
}

// ---------------------------------------------------------------------------
// Cross-region corruption / isolation contention (bug.dpr.1, multi-region)

TEST(RrmIsolationContention, SimultaneousWindowsStayClean) {
    // Two regions in an X-window at the same time: as long as both hold
    // isolation, no X reaches the shared PLB.
    RrmConfig cfg;
    cfg.corrupt = RegionCorrupt::kSimultaneousWindows;
    cfg.victim = 0;
    const RrmResult res = run_rrm_scenario(cfg);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.diagnostics, 0u)
        << (res.diagnostic_text.empty() ? "" : res.diagnostic_text.front());

    // Prove the windows actually overlapped: at some instant both regions
    // had an open X-window.
    bool open[2] = {false, false};
    bool overlapped = false;
    for (const obs::Event& e : res.events) {
        if (e.region > 1) continue;
        if (e.kind == obs::EventKind::kXWindowBegin) open[e.region] = true;
        if (e.kind == obs::EventKind::kXWindowEnd) open[e.region] = false;
        overlapped = overlapped || (open[0] && open[1]);
    }
    EXPECT_TRUE(overlapped);
}

TEST(RrmIsolationContention, DroppedIsolationLeaksOnlyFromVictim) {
    // Region 0 forgets to isolate; region 1 runs the correct driver. The X
    // that escapes must be attributable to region 0's boundary alone —
    // region 1's traffic through the shared PLB stays clean.
    RrmConfig cfg;
    cfg.corrupt = RegionCorrupt::kDropIsolation;
    cfg.victim = 0;
    const RrmResult res = run_rrm_scenario(cfg);
    EXPECT_GT(res.diagnostics, 0u);
    for (const std::string& d : res.diagnostic_text) {
        // Diagnostics name the offending master port / boundary; the
        // well-behaved region's instances (r1.*, master 1) never appear.
        EXPECT_EQ(d.find("r1."), std::string::npos) << d;
        EXPECT_EQ(d.find("master 1"), std::string::npos) << d;
    }
    // The victim never toggled isolation.
    bool victim_isolated = false;
    for (const obs::Event& e : res.events) {
        if (e.kind == obs::EventKind::kIsolationOn && e.region == 0) {
            victim_isolated = true;
        }
    }
    EXPECT_FALSE(victim_isolated);
}

TEST(RrmHarnessRun, WrongRegionFarMisdirectsSwapsToCoRegion) {
    // The nastiest cross-region failure mode: a mis-addressed FAR lands the
    // victim's bitstreams on the co-region's boundary. The victim's jobs
    // still "complete" — whatever engine is resident takes the start pulse
    // — so nothing times out. Only the region-tagged event stream shows the
    // corruption: the victim's boundary never reconfigures while the
    // co-region absorbs the victim's swaps on top of its own.
    RrmConfig cfg;
    cfg.corrupt = RegionCorrupt::kWrongRegionFar;
    cfg.victim = 0;
    const RrmResult res = run_rrm_scenario(cfg);
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.sessions[0], cfg.jobs_per_region);  // victim did submit
    EXPECT_EQ(res.timeouts[0], 0u);                   // ...and never hung

    unsigned swaps_by_region[2] = {0, 0};
    unsigned xwin_by_region[2] = {0, 0};
    for (const obs::Event& e : res.events) {
        if (e.region > 1) continue;
        if (e.kind == obs::EventKind::kSwap) ++swaps_by_region[e.region];
        if (e.kind == obs::EventKind::kXWindowBegin) {
            ++xwin_by_region[e.region];
        }
    }
    // All four sessions (two per region) landed on region 1's boundary.
    EXPECT_EQ(swaps_by_region[0], 0u);
    EXPECT_EQ(swaps_by_region[1], 4u);
    EXPECT_EQ(xwin_by_region[0], 0u);
    EXPECT_EQ(xwin_by_region[1], 4u);
    // The per-region metric rollup tells the same story.
    EXPECT_EQ(res.metrics.per_region[0].swaps, 0u);
    EXPECT_EQ(res.metrics.per_region[1].swaps, 4u);
}

// ---------------------------------------------------------------------------
// Checkpoint: versioned region-array section, warm == cold

TEST(RrmCkpt, WarmRestoreMatchesColdRun) {
    RrmConfig cfg;
    cfg.regions = 2;
    cfg.seed = 5;

    // Cold reference: run to completion in one piece.
    RrmHarness cold(cfg);
    cold.boot();
    cold.start();
    cold.run_to_completion();
    const RrmResult ref = cold.collect();
    ASSERT_TRUE(ref.completed);

    // Checkpoint mid-flight, at the first quiescent point past mid-run.
    RrmHarness a(cfg);
    a.boot();
    a.start();
    const Time half = ref.sim_time / 2;
    while (a.sch.now() < half) {
        a.sch.run_until(a.sch.now() + 64 * RrmHarness::kClk);
    }
    std::ostringstream os;
    ASSERT_TRUE(a.save(os));
    const std::string blob = os.str();

    // Restore into a freshly elaborated harness and finish the run there.
    RrmHarness b(cfg);
    std::istringstream is(blob);
    std::string err;
    ASSERT_TRUE(b.restore(is, &err)) << err;
    EXPECT_EQ(b.sch.now(), a.sch.now());
    b.run_to_completion();
    const RrmResult warm = b.collect();

    EXPECT_TRUE(warm.completed);
    EXPECT_EQ(warm.sim_time, ref.sim_time);
    EXPECT_EQ(warm.schedule, ref.schedule);
    EXPECT_EQ(warm.jobs_done, ref.jobs_done);
    EXPECT_EQ(warm.sessions, ref.sessions);
    ASSERT_EQ(warm.events.size(), ref.events.size());
    for (std::size_t i = 0; i < warm.events.size(); ++i) {
        EXPECT_EQ(warm.events[i].time, ref.events[i].time) << i;
        EXPECT_EQ(warm.events[i].kind, ref.events[i].kind) << i;
        EXPECT_EQ(warm.events[i].region, ref.events[i].region) << i;
    }

    // Final-state snapshots are byte-identical, and both runs decode the
    // same versioned region-array section.
    std::ostringstream oa;
    std::ostringstream ob;
    ASSERT_TRUE(cold.save(oa));
    ASSERT_TRUE(b.save(ob));
    EXPECT_EQ(oa.str(), ob.str());
    EXPECT_EQ(cold.region_snapshots(), b.region_snapshots());
}

TEST(RrmCkpt, RestoreRejectsWrongConfig) {
    RrmConfig cfg;
    RrmHarness a(cfg);
    a.boot();
    std::ostringstream os;
    ASSERT_TRUE(a.save(os));

    RrmConfig other = cfg;
    other.policy = Policy::kDeadline;  // different elaboration identity
    RrmHarness b(other);
    std::istringstream is(os.str());
    std::string err;
    EXPECT_FALSE(b.restore(is, &err));
    EXPECT_EQ(err, "manifest/config-hash mismatch");
}

TEST(RrmCkpt, RegionSectionRoundTrips) {
    std::vector<RegionSnapshot> in = {
        {0, EngineKind::kSobel, true, false, 3, 2},
        {1, EngineKind::kFlow, false, true, 1, 1},
        {2, EngineKind::kNone, false, false, 0, 0},
    };
    rtlsim::SnapWriter w;
    save_region_section(w, in);
    rtlsim::SnapReader r(w.buffer());
    std::vector<RegionSnapshot> out;
    ASSERT_TRUE(load_region_section(r, out));
    EXPECT_EQ(in, out);
}


// ---------------------------------------------------------------------------
// Full-system integration (sys::OpticalFlowSystem with regions >= 2)
// ---------------------------------------------------------------------------

// N = 1 must be byte-identical to the pre-pool model: the pool fields are
// inert in the elaboration identity, the checkpoint blob carries none of
// the pool sections, and the canned two-frame run still reproduces the
// kernel-invariance golden bit-for-bit.
TEST(RrmSystem, SingleRegionIdentityPreserved) {
    const sys::SystemConfig base;  // regions = 1
    sys::SystemConfig tweaked = base;
    tweaked.rrm_policy = Policy::kDeadline;
    tweaked.rrm_grant = IcapArbiter::Grant::kPriority;
    tweaked.rrm_jobs_per_region = 7;
    tweaked.rrm_payload_words = 99;
    EXPECT_EQ(sys::OpticalFlowSystem::config_hash(base),
              sys::OpticalFlowSystem::config_hash(tweaked));
    sys::SystemConfig pool = base;
    pool.regions = 2;
    EXPECT_NE(sys::OpticalFlowSystem::config_hash(base),
              sys::OpticalFlowSystem::config_hash(pool));

    sys::Testbench tb(base, /*scene_seed=*/1);
    const sys::RunResult res = tb.run(2);
    ASSERT_EQ(res.frames_completed, 2u);
    EXPECT_EQ(res.verdict(), "clean");
    EXPECT_EQ(res.stats.timed_events, 82513u);
    EXPECT_EQ(res.stats.delta_cycles, 138656u);
    EXPECT_EQ(res.stats.proc_invocations, 470658u);
    EXPECT_EQ(res.stats.signal_updates, 163149u);
    EXPECT_EQ(res.sim_time, 412560000u);

    std::ostringstream blob;
    ASSERT_TRUE(tb.sys.save(blob));
    // Single-region blobs must not even name the pool sections.
    EXPECT_EQ(blob.str().find("rrm_mgr"), std::string::npos);
    EXPECT_EQ(blob.str().find("dcr_mgmt"), std::string::npos);
}

// The acceptance run: a full three-region system frame — the legacy
// firmware-driven region 0 pipeline plus two managed pool regions — with
// per-region obs metrics, deterministic at every supported lane count.
TEST(RrmSystem, ThreeRegionFrameDeterministicAcrossLanes) {
    std::vector<std::string> dumps;
    for (const unsigned lanes : {1u, 2u, 4u}) {
        sys::SystemConfig cfg;
        cfg.regions = 3;
        cfg.trace_events = true;
        cfg.lanes = lanes;
        sys::Testbench tb(cfg, /*scene_seed=*/1);
        const sys::RunResult res = tb.run(2);
        EXPECT_EQ(res.verdict(), "clean") << "lanes=" << lanes;
        ASSERT_TRUE(res.traced);

        // The pool drained alongside the pipeline: every managed region
        // completed its whole job mix with no timeouts.
        ASSERT_NE(tb.sys.region_manager, nullptr);
        EXPECT_TRUE(tb.sys.region_manager->done());
        for (unsigned i = 0; i + 1 < cfg.regions; ++i) {
            EXPECT_EQ(tb.sys.region_manager->jobs_done(i),
                      cfg.rrm_jobs_per_region);
            EXPECT_EQ(tb.sys.region_manager->timeouts(i), 0u);
        }
        // Per-region metrics: the managed regions swapped and ran jobs,
        // tagged with their global region ids (1 and 2, never 3).
        for (unsigned r = 1; r <= 2; ++r) {
            EXPECT_GT(res.metrics.per_region[r].swaps, 0u) << r;
            EXPECT_EQ(res.metrics.per_region[r].jobs,
                      cfg.rrm_jobs_per_region)
                << r;
            EXPECT_GT(res.metrics.per_region[r].arb_grants, 0u) << r;
        }
        EXPECT_FALSE(res.metrics.per_region[3].any());

        std::ostringstream os;
        for (const obs::Event& e : tb.recorder()->snapshot()) {
            os << e.time << ':' << static_cast<int>(e.kind) << ':'
               << static_cast<int>(e.src) << ':'
               << static_cast<int>(e.region) << ':' << e.a << ':' << e.b
               << '\n';
        }
        dumps.push_back(os.str());
    }
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_EQ(dumps[0], dumps[2]);
}

// Pool checkpoints round-trip mid-flight: save a three-region system while
// the RegionManager is working, restore into a fresh elaboration, continue
// both the uninterrupted reference and the restored run to the same end
// time, and require bit-identical final blobs (which also exercises the
// versioned "rrm" region-array summary validation on the restore path).
// A blob from one pool shape must refuse to restore into another.
TEST(RrmSystem, ThreeRegionCheckpointRoundTrip) {
    sys::SystemConfig cfg;
    cfg.regions = 3;
    cfg.width = 32;
    cfg.height = 24;
    cfg.search = 2;
    cfg.simb_payload_words = 64;
    constexpr rtlsim::Time kQuantum = 32 * 10 * rtlsim::NS;
    constexpr rtlsim::Time kMid = 40'000 * rtlsim::NS;
    constexpr rtlsim::Time kEnd = 400'000 * rtlsim::NS;
    const auto run_to = [&](sys::OpticalFlowSystem& s, rtlsim::Time t) {
        while (s.sch.now() < t && !s.sch.stop_requested()) {
            s.sch.run_until(s.sch.now() + kQuantum);
        }
    };

    // Cold reference: one uninterrupted run (the pool workload runs
    // autonomously; no video frames are needed).
    sys::OpticalFlowSystem cold(cfg);
    run_to(cold, kEnd);
    std::ostringstream cold_blob;
    ASSERT_TRUE(cold.save(cold_blob));

    // Warm side: save mid-pool, restore into a fresh system, continue.
    sys::OpticalFlowSystem warm(cfg);
    run_to(warm, kMid);
    std::ostringstream mid;
    ASSERT_TRUE(warm.save(mid));
    EXPECT_NE(mid.str().find("rrm_mgr"), std::string::npos);

    sys::OpticalFlowSystem restored(cfg);
    std::istringstream is(mid.str());
    std::string err;
    ASSERT_TRUE(restored.restore(is, &err)) << err;
    EXPECT_EQ(restored.sch.now(), warm.sch.now());
    run_to(restored, kEnd);
    std::ostringstream warm_blob;
    ASSERT_TRUE(restored.save(warm_blob));
    EXPECT_EQ(warm_blob.str(), cold_blob.str())
        << "restored pool run diverged from the uninterrupted reference";
    EXPECT_TRUE(cold.region_manager->done());
    EXPECT_EQ(cold.region_snapshots(), restored.region_snapshots());

    // Wrong pool shape: the manifest hash embeds the pool fields.
    sys::SystemConfig other = cfg;
    other.regions = 2;
    sys::OpticalFlowSystem wrong(other);
    std::istringstream is2(mid.str());
    EXPECT_FALSE(wrong.restore(is2, &err));
}

// Virtual Multiplexing pool: under the VM method the managed regions swap
// via their per-region engine_signature registers on the management chain
// — no bitstreams, no arbiter — and the job mix still completes.
TEST(RrmSystem, VirtualMultiplexingPoolCompletes) {
    sys::SystemConfig cfg;
    cfg.method = autovision::sys::FirmwareConfig::Method::kVm;
    cfg.regions = 3;
    sys::Testbench tb(cfg, /*scene_seed=*/1);
    const sys::RunResult res = tb.run(2);
    EXPECT_EQ(res.verdict(), "clean");
    ASSERT_NE(tb.sys.region_manager, nullptr);
    EXPECT_EQ(tb.sys.icap_arbiter, nullptr);
    EXPECT_TRUE(tb.sys.region_manager->done());
    for (unsigned i = 0; i + 1 < cfg.regions; ++i) {
        EXPECT_EQ(tb.sys.region_manager->jobs_done(i),
                  cfg.rrm_jobs_per_region);
        EXPECT_EQ(tb.sys.region_manager->timeouts(i), 0u);
    }
}

}  // namespace
