#include <cstdio>
#include "sys/testbench.hpp"
#include "sys/address_map.hpp"
using namespace autovision::sys;
int main() {
    SystemConfig cfg;
    cfg.width = 320; cfg.height = 200; cfg.step = 4; cfg.margin = 8; cfg.search = 2;
    cfg.simb_payload_words = 2048;
    cfg.icap_clk_div = 2;
    Testbench tb(cfg);
    auto r = tb.run(1);
    std::printf("verdict=%s frames=%u\n", r.verdict().c_str(), r.frames_completed);
    std::printf("sim_time=%.3f ms wall=%.2f s\n", rtlsim::to_ms(r.sim_time),
                r.wall_time.count() / 1e9);
    std::printf("CIE  sim=%.3f ms wall=%.2f s\n", rtlsim::to_ms(r.stages.cie_sim), r.stages.cie_wall.count()/1e9);
    std::printf("ME   sim=%.3f ms wall=%.2f s\n", rtlsim::to_ms(r.stages.me_sim), r.stages.me_wall.count()/1e9);
    std::printf("DPR  sim=%.3f ms wall=%.2f s\n", rtlsim::to_ms(r.stages.dpr_sim), r.stages.dpr_wall.count()/1e9);
    std::printf("CPU  sim=%.3f ms wall=%.2f s\n", rtlsim::to_ms(r.stages.cpu_sim), r.stages.cpu_wall.count()/1e9);
    return 0;
}
