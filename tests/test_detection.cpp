// The Table III reproduction as a test suite: every catalogued fault must
// be detected (or escape) exactly as the paper reports.
#include <gtest/gtest.h>

#include "sys/detection.hpp"

namespace autovision::sys {
namespace {

SystemConfig detection_config() {
    SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 2;
    cfg.simb_payload_words = 100;
    return cfg;
}

class FaultMatrix : public ::testing::TestWithParam<Fault> {};

TEST_P(FaultMatrix, DetectionMatchesPaper) {
    const DetectionOutcome o =
        run_detection(detection_config(), GetParam(), /*frames=*/2);
    EXPECT_TRUE(o.matches_expectation())
        << o.row() << "\n  VM:    " << o.vm.verdict()
        << "\n  ReSim: " << o.resim.verdict();
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, FaultMatrix,
    ::testing::Values(Fault::kHw1SrcWordAddr, Fault::kHw2NoSigInit,
                      Fault::kHw3LevelIntc, Fault::kSw1PollWrongBit,
                      Fault::kSw2NoIntcAck, Fault::kSw3StaleCodePatch,
                      Fault::kSw4EeStuckOff, Fault::kSw5SyscallInIsr,
                      Fault::kDpr1NoIsolation, Fault::kDpr2RegsInsideRr,
                      Fault::kDpr3WrongSimbAddr, Fault::kDpr4P2pIcap,
                      Fault::kDpr5SizeInWords, Fault::kDpr6bShortWait),
    [](const ::testing::TestParamInfo<Fault>& info) {
        std::string id = fault_info(info.param).id;
        for (char& c : id) {
            if (c == '.') c = '_';
        }
        return id;
    });

// Detection must be robust to the driver style: the static bugs are caught
// under every DPR-wait variant of the (otherwise correct) firmware.
using StaticSweep = std::tuple<Fault, FirmwareConfig::Wait>;
class StaticFaultRobustness : public ::testing::TestWithParam<StaticSweep> {};

TEST_P(StaticFaultRobustness, DetectedUnderAnyDriverStyle) {
    const auto [fault, wait] = GetParam();
    SystemConfig cfg = detection_config();
    cfg.fault = fault;
    cfg.wait = wait;
    cfg.delay_loops = 6000;  // a *correct* delay; the fault is elsewhere
    cfg.method = FirmwareConfig::Method::kResim;
    Testbench tb(cfg);
    EXPECT_FALSE(tb.run(2).clean())
        << fault_info(fault).id << " escaped under wait mode "
        << static_cast<int>(wait);
}

INSTANTIATE_TEST_SUITE_P(
    DriverStyles, StaticFaultRobustness,
    ::testing::Combine(::testing::Values(Fault::kHw1SrcWordAddr,
                                         Fault::kHw3LevelIntc,
                                         Fault::kSw2NoIntcAck),
                       ::testing::Values(FirmwareConfig::Wait::kIrq,
                                         FirmwareConfig::Wait::kPollDone,
                                         FirmwareConfig::Wait::kDelay)));

// And robust to geometry: the whole catalogue holds at a second frame size
// and SimB length.
TEST(FaultMatrix, CatalogueHoldsAtSecondGeometry) {
    SystemConfig cfg;
    cfg.width = 48;
    cfg.height = 32;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 3;
    cfg.simb_payload_words = 400;
    const auto outcomes = run_catalog(cfg, 2);
    for (const auto& o : outcomes) {
        EXPECT_TRUE(o.matches_expectation())
            << o.row() << "\n  VM:    " << o.vm.verdict()
            << "\n  ReSim: " << o.resim.verdict();
    }
}

TEST(FaultMatrix, FaultFreeSystemIsCleanUnderBothMethods) {
    const DetectionOutcome o =
        run_detection(detection_config(), Fault::kNone, 2);
    EXPECT_TRUE(o.vm.clean()) << o.vm.verdict();
    EXPECT_TRUE(o.resim.clean()) << o.resim.verdict();
}

TEST(FaultMatrix, ParallelCatalogMatchesSerial) {
    // The harness is embarrassingly parallel; outcomes must not depend on
    // the worker count.
    const auto serial = run_catalog(detection_config(), 1, 1);
    const auto parallel = run_catalog(detection_config(), 1, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].vm_detected(), parallel[i].vm_detected());
        EXPECT_EQ(serial[i].resim_detected(), parallel[i].resim_detected());
        EXPECT_EQ(serial[i].vm.frames_completed,
                  parallel[i].vm.frames_completed);
    }
}

// The paper's bug-fix narrative: the delay-based driver IS correct when the
// loop count accounts for the slow configuration clock (the shipped fix
// "added several dummy loops").
TEST(FaultMatrix, LongDelayFixesBugDpr6b) {
    SystemConfig cfg = detection_config();
    cfg.wait = FirmwareConfig::Wait::kDelay;
    cfg.delay_loops = 6000;  // generous for clk_div = 4
    Testbench tb(cfg);
    const RunResult r = tb.run(2);
    EXPECT_TRUE(r.clean()) << r.verdict();
}

TEST(FaultMatrix, PollingDriverWithCorrectBitIsClean) {
    SystemConfig cfg = detection_config();
    cfg.wait = FirmwareConfig::Wait::kPollDone;
    Testbench tb(cfg);
    const RunResult r = tb.run(2);
    EXPECT_TRUE(r.clean()) << r.verdict();
}

// DESIGN.md ablation: ReSim's bug.dpr.6b detection hinges on swapping only
// after the last SimB word. Moving the swap to the FAR write (zero-delay
// semantics) and silencing the error injector — i.e. running DCS/VM-style
// semantics inside the ReSim harness — makes the bug escape again.
TEST(FaultMatrix, SwapAtFarAblationMasksBugDpr6b) {
    SystemConfig cfg =
        config_for_fault(detection_config(), Fault::kDpr6bShortWait);
    cfg.method = FirmwareConfig::Method::kResim;

    struct NoError final : ErrorInjector {
        void inject(RrOutputs& o) override { o = RrOutputs::idle(); }
    };

    Testbench faithful(cfg);
    const RunResult f = faithful.run(2);
    EXPECT_FALSE(f.clean()) << "faithful timing detects the bug";

    Testbench ablated(cfg);
    ablated.sys.portal->set_swap_timing(
        resim::ExtendedPortal::SwapTiming::kAtFar);
    ablated.sys.rr.set_error_injector(std::make_unique<NoError>());
    const RunResult a = ablated.run(2);
    EXPECT_TRUE(a.clean())
        << "zero-delay swap masks the race: " << a.verdict();
}

// The faster original configuration clock also rescues the short delay —
// the reason bug.dpr.6b "was not exposed before" in the original design.
TEST(FaultMatrix, OriginalFastConfigClockMasksBugDpr6b) {
    SystemConfig cfg = detection_config();
    cfg = config_for_fault(cfg, Fault::kDpr6bShortWait);
    cfg.method = FirmwareConfig::Method::kResim;
    cfg.icap_clk_div = 1;  // the original clocking scheme
    cfg.delay_loops = 400;  // the original loop count: enough at div 1
    Testbench tb(cfg);
    const RunResult r = tb.run(2);
    EXPECT_TRUE(r.clean())
        << "with the fast clock the short wait is sufficient: "
        << r.verdict();
}

}  // namespace
}  // namespace autovision::sys
