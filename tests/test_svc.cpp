// Campaign service suite (src/svc).
//
// Layer by layer, bottom up: wire framing (round-trips, nested decodes,
// malformed-frame rejection), the crash-safe journal (a journal cut at
// EVERY byte offset of its last record must recover exactly the intact
// prefix), the persistent sharded queue (state transitions survive
// reopen; a torn queue record is truncated, not fatal), admission control
// and the strict-priority ready queue, the ClosureLoop save/restore
// determinism contract (resumed verdicts + coverage byte-identical to an
// uninterrupted run — the property the CI service smoke re-checks through
// kill -9), the executor's diff resume, and finally a live daemon served
// over a real AF_UNIX socket driven through the client library.
#include <gtest/gtest.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "campaign/closure.hpp"
#include "campaign/runner.hpp"
#include "svc/admission.hpp"
#include "svc/client.hpp"
#include "svc/daemon.hpp"
#include "svc/exec.hpp"
#include "svc/journal.hpp"
#include "svc/queue.hpp"
#include "svc/wire.hpp"

namespace {

using namespace autovision::svc;
using autovision::campaign::CampaignConfig;
using autovision::campaign::ClosureConfig;
using autovision::campaign::ClosureLoop;

std::string fresh_dir(const std::string& leaf) {
    const std::string d = ::testing::TempDir() + "svc_" + leaf;
    std::error_code ec;
    std::filesystem::remove_all(d, ec);
    return d;
}

std::string read_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

// --- wire ------------------------------------------------------------------

JobSpec sample_spec() {
    JobSpec spec;
    spec.id = 42;
    spec.kind = "closure";
    spec.client = "ci";
    spec.priority = Priority::kHigh;
    spec.params = {{"seed", "11"}, {"batches", "5"}, {"batch-size", "10"}};
    return spec;
}

TEST(SvcWire, JobSpecRoundtrip) {
    const JobSpec spec = sample_spec();
    const std::vector<std::uint8_t> img =
        encode_frame(MsgType::kSubmit, spec);
    Frame f;
    std::size_t consumed = 0;
    ASSERT_TRUE(decode_frame(img, &f, &consumed));
    EXPECT_EQ(consumed, img.size());
    EXPECT_EQ(f.type, MsgType::kSubmit);
    JobSpec back;
    rtlsim::SnapReader r = f.reader();
    ASSERT_TRUE(back.decode(r));
    EXPECT_EQ(back.id, spec.id);
    EXPECT_EQ(back.kind, spec.kind);
    EXPECT_EQ(back.client, spec.client);
    EXPECT_EQ(back.priority, spec.priority);
    EXPECT_EQ(back.params, spec.params);
}

TEST(SvcWire, NestedJobListDecodes) {
    JobList list;
    for (unsigned i = 0; i < 3; ++i) {
        JobStatusInfo info;
        info.id = i + 1;
        info.state = i == 0 ? JobState::kRunning : JobState::kQueued;
        info.kind = i == 0 ? "closure" : "diff";
        info.units_done = i;
        info.units_total = 5;
        info.checkpoints = 2 * i;
        info.resumed = i == 2 ? 1 : 0;
        list.jobs.push_back(info);
    }
    const std::vector<std::uint8_t> img =
        encode_frame(MsgType::kListOk, list);
    Frame f;
    std::size_t consumed = 0;
    ASSERT_TRUE(decode_frame(img, &f, &consumed));
    JobList back;
    rtlsim::SnapReader r = f.reader();
    ASSERT_TRUE(back.decode(r));
    ASSERT_EQ(back.jobs.size(), 3u);
    EXPECT_EQ(back.jobs[0].state, JobState::kRunning);
    EXPECT_EQ(back.jobs[2].resumed, 1u);
    EXPECT_EQ(back.jobs[1].kind, "diff");
}

TEST(SvcWire, OutcomeRoundtripCarriesArtifacts) {
    JobOutcome out;
    out.id = 7;
    out.state = JobState::kDone;
    out.pass = true;
    out.summary = "diff: 4 scenarios, 0 failed\n";
    out.verdicts = "{\"index\":0}\n{\"index\":1}\n";
    out.cover_json = "{\"goal_bins\":56}";
    const std::vector<std::uint8_t> img = encode_frame(MsgType::kDone, out);
    Frame f;
    std::size_t consumed = 0;
    ASSERT_TRUE(decode_frame(img, &f, &consumed));
    JobOutcome back;
    rtlsim::SnapReader r = f.reader();
    ASSERT_TRUE(back.decode(r));
    EXPECT_TRUE(back.pass);
    EXPECT_EQ(back.verdicts, out.verdicts);
    EXPECT_EQ(back.cover_json, out.cover_json);
}

TEST(SvcWire, DecodeFrameRejectsShortAndOversized) {
    const std::vector<std::uint8_t> img =
        encode_frame(MsgType::kHello, Hello{});
    Frame f;
    std::size_t consumed = 0;
    // Every strict prefix is "not yet a frame".
    for (std::size_t n = 0; n < img.size(); ++n) {
        EXPECT_FALSE(decode_frame(std::span(img.data(), n), &f, &consumed))
            << "prefix " << n;
    }
    // A length prefix above kMaxFrame must be rejected outright.
    std::vector<std::uint8_t> huge(5, 0);
    huge[0] = 0xFF;
    huge[1] = 0xFF;
    huge[2] = 0xFF;
    huge[3] = 0xFF;
    EXPECT_FALSE(decode_frame(huge, &f, &consumed));
}

TEST(SvcWire, PriorityParsing) {
    Priority p = Priority::kNormal;
    EXPECT_TRUE(priority_from_string("high", &p));
    EXPECT_EQ(p, Priority::kHigh);
    EXPECT_TRUE(priority_from_string("batch", &p));
    EXPECT_EQ(p, Priority::kBatch);
    EXPECT_FALSE(priority_from_string("urgent", &p));
    EXPECT_EQ(p, Priority::kBatch);  // untouched on failure
}

TEST(SvcWire, ConfigHashPinsKindAndParams) {
    const JobSpec a = sample_spec();
    JobSpec b = a;
    b.id = 999;          // identity fields ignored
    b.client = "other";  // ignored
    b.priority = Priority::kBatch;  // ignored
    EXPECT_EQ(a.config_hash(), b.config_hash());
    JobSpec c = a;
    c.params["seed"] = "12";
    EXPECT_NE(a.config_hash(), c.config_hash());
    JobSpec d = a;
    d.kind = "diff";
    EXPECT_NE(a.config_hash(), d.config_hash());
}

// --- wire over real fds ----------------------------------------------------
// read_frame_fd/write_frame_fd must tolerate everything a stream socket is
// allowed to do to a frame: arbitrary fragmentation (a dribbling peer that
// delivers one byte per read), EINTR restarts mid-read and mid-write, and a
// peer that vanishes mid-frame — which must surface as a clean `false`
// (EPIPE), never as a process-killing SIGPIPE.

/// A connected AF_UNIX stream pair, closed on destruction.
struct FdPair {
    FdPair() {
        int sv[2] = {-1, -1};
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        a = sv[0];
        b = sv[1];
    }
    ~FdPair() {
        close_a();
        close_b();
    }
    void close_a() {
        if (a >= 0) ::close(a);
        a = -1;
    }
    void close_b() {
        if (b >= 0) ::close(b);
        b = -1;
    }
    int a = -1;
    int b = -1;
};

TEST(SvcWireFd, DribblingPeerOneByteAtATimeReassemblesFrames) {
    FdPair fds;
    // Three back-to-back frames, delivered one byte per write() so every
    // read on the receiving side is as short as a stream allows.
    std::vector<std::uint8_t> stream;
    const JobSpec spec = sample_spec();
    for (const auto& img : {encode_frame(MsgType::kHello, Hello{1, "cli"}),
                            encode_frame(MsgType::kSubmit, spec),
                            encode_frame(MsgType::kList, JobRef{7})}) {
        stream.insert(stream.end(), img.begin(), img.end());
    }
    std::thread writer([&] {
        for (const std::uint8_t byte : stream) {
            ASSERT_EQ(::write(fds.a, &byte, 1), 1);
        }
        fds.close_a();
    });

    Frame f;
    ASSERT_TRUE(read_frame_fd(fds.b, &f));
    EXPECT_EQ(f.type, MsgType::kHello);
    ASSERT_TRUE(read_frame_fd(fds.b, &f));
    EXPECT_EQ(f.type, MsgType::kSubmit);
    JobSpec got;
    {
        auto r = f.reader();
        ASSERT_TRUE(got.decode(r));
    }
    EXPECT_EQ(got.id, spec.id);
    EXPECT_EQ(got.params, spec.params);
    ASSERT_TRUE(read_frame_fd(fds.b, &f));
    EXPECT_EQ(f.type, MsgType::kList);
    // Clean EOF at the frame boundary after the writer hangs up.
    EXPECT_FALSE(read_frame_fd(fds.b, &f));
    writer.join();
}

TEST(SvcWireFd, EintrStormDuringLargeFrameIsRestartedOnBothSides) {
    // SIGUSR1 with an empty handler and no SA_RESTART: every signal that
    // lands while a thread sits in read()/send() makes the call fail with
    // EINTR (or return short), which the wire loops must absorb.
    struct sigaction sa = {};
    sa.sa_handler = [](int) {};
    sa.sa_flags = 0;  // deliberately not SA_RESTART
    struct sigaction old = {};
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    FdPair fds;
    // Much larger than the AF_UNIX buffer, so the writer blocks mid-frame
    // and signals force partial sends as well as partial reads.
    std::vector<std::uint8_t> body(2u << 20);
    for (std::size_t i = 0; i < body.size(); ++i) {
        body[i] = static_cast<std::uint8_t>(i * 131u + 17u);
    }
    std::atomic<bool> done{false};
    bool wrote = false;
    std::thread writer([&] {
        wrote = write_frame_fd(fds.a, MsgType::kRecord, body);
    });
    Frame f;
    bool read_ok = false;
    std::thread reader([&] {
        read_ok = read_frame_fd(fds.b, &f);
        done = true;
    });
    while (!done) {
        ::pthread_kill(writer.native_handle(), SIGUSR1);
        ::pthread_kill(reader.native_handle(), SIGUSR1);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    writer.join();
    reader.join();
    ::sigaction(SIGUSR1, &old, nullptr);

    EXPECT_TRUE(wrote);
    ASSERT_TRUE(read_ok);
    EXPECT_EQ(f.type, MsgType::kRecord);
    EXPECT_EQ(f.body, body);
}

TEST(SvcWireFd, PeerGoneMidFrameIsAnErrorNotSigpipe) {
    FdPair fds;
    fds.close_b();  // reader hangs up before the frame
    // Without MSG_NOSIGNAL this raises SIGPIPE (default disposition: kill
    // the process — nothing in the daemon ignores it) instead of failing.
    const std::vector<std::uint8_t> body(64u << 10, 0xAB);
    EXPECT_FALSE(write_frame_fd(fds.a, MsgType::kRecord, body));
}

// --- journal ---------------------------------------------------------------

std::vector<std::uint8_t> payload_of(char c, std::size_t n) {
    return std::vector<std::uint8_t>(n, static_cast<std::uint8_t>(c));
}

TEST(SvcJournal, AppendReplayRoundtrip) {
    const std::string dir = fresh_dir("journal_rt");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/j.jnl";
    {
        JournalWriter w;
        std::string err;
        ASSERT_TRUE(w.open(path, nullptr, &err)) << err;
        ASSERT_TRUE(w.append(payload_of('a', 5)));
        ASSERT_TRUE(w.append(payload_of('b', 200)));
        ASSERT_TRUE(w.append(payload_of('c', 1)));
    }
    std::vector<std::vector<std::uint8_t>> seen;
    const ReplayStats st = replay_journal(
        path, [&](std::span<const std::uint8_t> p) {
            seen.emplace_back(p.begin(), p.end());
        });
    EXPECT_TRUE(st.ok);
    EXPECT_FALSE(st.torn);
    ASSERT_EQ(st.records, 3u);
    EXPECT_EQ(seen[0], payload_of('a', 5));
    EXPECT_EQ(seen[1], payload_of('b', 200));
    EXPECT_EQ(seen[2], payload_of('c', 1));
}

TEST(SvcJournal, MissingFileIsEmptyCleanJournal) {
    const ReplayStats st =
        replay_journal(fresh_dir("journal_none") + "/absent.jnl", nullptr);
    EXPECT_TRUE(st.ok);
    EXPECT_FALSE(st.torn);
    EXPECT_EQ(st.records, 0u);
}

// The crash-safety contract, exhaustively: cut the journal at every byte
// offset inside its final record; every cut must recover exactly the two
// intact records, truncate the tail, and leave the journal appendable.
TEST(SvcJournal, TornTailAtEveryByteOffset) {
    const std::string dir = fresh_dir("journal_torn");
    std::filesystem::create_directories(dir);
    const std::string ref = dir + "/ref.jnl";
    std::size_t two_records = 0;
    {
        JournalWriter w;
        std::string err;
        ASSERT_TRUE(w.open(ref, nullptr, &err)) << err;
        ASSERT_TRUE(w.append(payload_of('x', 24)));
        ASSERT_TRUE(w.append(payload_of('y', 7)));
        two_records = std::filesystem::file_size(ref);
        ASSERT_TRUE(w.append(payload_of('z', 40)));
    }
    const std::string full = read_file(ref);
    ASSERT_GT(full.size(), two_records);

    for (std::size_t cut = two_records + 1; cut < full.size(); ++cut) {
        const std::string path = dir + "/cut.jnl";
        {
            std::ofstream os(path, std::ios::binary | std::ios::trunc);
            os.write(full.data(), static_cast<std::streamsize>(cut));
        }
        std::size_t records = 0;
        JournalWriter w;
        std::string err;
        ASSERT_TRUE(w.open(path,
                           [&](std::span<const std::uint8_t>) { ++records; },
                           &err))
            << "cut at " << cut << ": " << err;
        EXPECT_EQ(records, 2u) << "cut at " << cut;
        EXPECT_TRUE(w.recovery().torn) << "cut at " << cut;
        EXPECT_EQ(w.recovery().valid_bytes, two_records) << "cut at " << cut;
        EXPECT_EQ(std::filesystem::file_size(path), two_records)
            << "truncation failed at cut " << cut;
        // The journal must accept appends at the recovered boundary...
        ASSERT_TRUE(w.append(payload_of('n', 3)));
        w.close();
        // ...and the repaired file replays clean.
        const ReplayStats st = replay_journal(path, nullptr);
        EXPECT_TRUE(st.ok);
        EXPECT_FALSE(st.torn) << "cut at " << cut;
        EXPECT_EQ(st.records, 3u) << "cut at " << cut;
    }
}

TEST(SvcJournal, CorruptPayloadByteStopsReplayAtThatRecord) {
    const std::string dir = fresh_dir("journal_corrupt");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/j.jnl";
    std::size_t first_end = 0;
    {
        JournalWriter w;
        std::string err;
        ASSERT_TRUE(w.open(path, nullptr, &err)) << err;
        ASSERT_TRUE(w.append(payload_of('a', 16)));
        first_end = std::filesystem::file_size(path);
        ASSERT_TRUE(w.append(payload_of('b', 16)));
    }
    std::string bytes = read_file(path);
    bytes[first_end + 4 + 4 + 8 + 3] ^= 0x5A;  // flip a payload byte of #2
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    const ReplayStats st = replay_journal(path, nullptr);
    EXPECT_TRUE(st.ok);
    EXPECT_TRUE(st.torn);
    EXPECT_EQ(st.records, 1u);
    EXPECT_EQ(st.valid_bytes, first_end);
}

// --- persistent queue ------------------------------------------------------

TEST(SvcQueue, StateTransitionsSurviveReopen) {
    const std::string dir = fresh_dir("queue_reopen");
    JobOutcome done_out;
    {
        PersistentQueue q;
        std::string err;
        ASSERT_TRUE(q.open(dir, 2, &err)) << err;
        EXPECT_EQ(q.shards(), 2u);
        JobSpec s = sample_spec();
        s.id = 0;
        EXPECT_EQ(q.record_submit(s), 1u);
        EXPECT_EQ(q.record_submit(s), 2u);
        EXPECT_EQ(q.record_submit(s), 3u);
        ASSERT_TRUE(q.record_progress(2, "blob-a"));
        ASSERT_TRUE(q.record_progress(2, "blob-b"));
        done_out.id = 1;
        done_out.state = JobState::kDone;
        done_out.pass = true;
        done_out.verdicts = "v\n";
        ASSERT_TRUE(q.record_done(1, done_out));
        ASSERT_TRUE(q.record_cancel(3));
    }
    PersistentQueue q;
    std::string err;
    ASSERT_TRUE(q.open(dir, 2, &err)) << err;
    EXPECT_FALSE(q.recovery_torn());
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.unfinished(), std::vector<std::uint64_t>{2});

    QueueEntry e;
    ASSERT_TRUE(q.find(2, &e));
    EXPECT_EQ(e.resume_blob, "blob-b");  // latest progress wins
    EXPECT_EQ(e.checkpoints, 2u);
    EXPECT_EQ(e.resumed, 1u);  // unfinished with prior progress: one resume
    ASSERT_TRUE(q.find(1, &e));
    EXPECT_TRUE(e.finished);
    EXPECT_TRUE(e.outcome.pass);
    EXPECT_EQ(e.outcome.verdicts, "v\n");
    EXPECT_TRUE(e.resume_blob.empty());  // done clears the blob
    ASSERT_TRUE(q.find(3, &e));
    EXPECT_TRUE(e.cancelled);
    EXPECT_EQ(e.outcome.state, JobState::kCancelled);

    // Ids stay dense and increasing across restarts.
    JobSpec s = sample_spec();
    s.id = 0;
    EXPECT_EQ(q.record_submit(s), 4u);
}

TEST(SvcQueue, TornQueueRecordIsTruncatedNotFatal) {
    const std::string dir = fresh_dir("queue_torn");
    {
        PersistentQueue q;
        std::string err;
        ASSERT_TRUE(q.open(dir, 1, &err)) << err;
        JobSpec s = sample_spec();
        s.id = 0;
        EXPECT_EQ(q.record_submit(s), 1u);
        ASSERT_TRUE(q.record_progress(1, "progress"));
    }
    // Tear the last record: drop the final 5 bytes of the shard file.
    const std::string shard = dir + "/shard-0.jnl";
    const std::string bytes = read_file(shard);
    ASSERT_GT(bytes.size(), 5u);
    {
        std::ofstream os(shard, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size() - 5));
    }
    PersistentQueue q;
    std::string err;
    ASSERT_TRUE(q.open(dir, 1, &err)) << err;
    EXPECT_TRUE(q.recovery_torn());
    QueueEntry e;
    ASSERT_TRUE(q.find(1, &e));           // the submit record survived
    EXPECT_TRUE(e.resume_blob.empty());   // the torn progress did not
    EXPECT_FALSE(e.finished);
    EXPECT_EQ(q.unfinished(), std::vector<std::uint64_t>{1});
    // And the queue keeps working on the repaired journal.
    ASSERT_TRUE(q.record_progress(1, "after-repair"));
    JobSpec s = sample_spec();
    s.id = 0;
    EXPECT_EQ(q.record_submit(s), 2u);
}

// --- admission / ready queue ----------------------------------------------

TEST(SvcAdmission, BudgetsChargeAndRelease) {
    AdmissionConfig cfg;
    cfg.max_jobs = 3;
    cfg.max_per_client = 2;
    cfg.max_queued_per_class = 2;
    AdmissionController ac(cfg);
    JobSpec a = sample_spec();
    a.client = "alice";
    a.priority = Priority::kNormal;

    EXPECT_TRUE(ac.admit(a).admit);
    EXPECT_TRUE(ac.admit(a).admit);
    // Per-client quota (2) before total (3).
    const AdmissionController::Decision d3 = ac.admit(a);
    EXPECT_FALSE(d3.admit);
    EXPECT_NE(d3.reason.find("alice"), std::string::npos);

    JobSpec b = a;
    b.client = "bob";
    // Same class already holds 2 queued jobs: class budget rejects.
    const AdmissionController::Decision d4 = ac.admit(b);
    EXPECT_FALSE(d4.admit);
    EXPECT_NE(d4.reason.find("normal"), std::string::npos);
    // One of alice's jobs starts running: a class slot frees, bob fits.
    ac.started(a);
    EXPECT_TRUE(ac.admit(b).admit);
    // Total budget now exhausted (3 unfinished).
    JobSpec c = a;
    c.client = "carol";
    c.priority = Priority::kHigh;
    const AdmissionController::Decision d6 = ac.admit(c);
    EXPECT_FALSE(d6.admit);
    EXPECT_NE(d6.reason.find("capacity"), std::string::npos);
    // A job finishing releases total + per-client.
    ac.finished(a);
    EXPECT_TRUE(ac.admit(c).admit);
    EXPECT_EQ(ac.in_flight(), 3u);
}

TEST(SvcAdmission, ReadyQueueStrictPriorityFifo) {
    PriorityReadyQueue q;
    q.push(10, Priority::kBatch);
    q.push(11, Priority::kNormal);
    q.push(12, Priority::kHigh);
    q.push(13, Priority::kNormal);
    q.push(14, Priority::kHigh);
    // Strict priority first, FIFO within a class.
    EXPECT_EQ(q.pop(), std::optional<std::uint64_t>(12));
    EXPECT_EQ(q.pop(), std::optional<std::uint64_t>(14));
    EXPECT_EQ(q.pop(), std::optional<std::uint64_t>(11));
    EXPECT_TRUE(q.remove(13));   // cancel a queued job
    EXPECT_FALSE(q.remove(13));  // already gone
    EXPECT_EQ(q.pop(), std::optional<std::uint64_t>(10));
    q.close();
    EXPECT_EQ(q.pop(), std::nullopt);  // closed and drained
}

TEST(SvcAdmission, ReadyQueuePopBlocksUntilPush) {
    PriorityReadyQueue q;
    std::atomic<bool> got{false};
    std::thread t([&] {
        const std::optional<std::uint64_t> id = q.pop();
        EXPECT_EQ(id, std::optional<std::uint64_t>(99));
        got.store(true);
    });
    q.push(99, Priority::kNormal);
    t.join();
    EXPECT_TRUE(got.load());
}

// --- closure loop save/restore --------------------------------------------

ClosureConfig tiny_closure() {
    ClosureConfig cc;
    cc.seed = 5;
    cc.batch_size = 3;
    cc.max_batches = 3;
    cc.target_percent = 101.0;  // never stops on target
    return cc;
}

std::string cover_json(const ClosureLoop& loop) {
    std::ostringstream os;
    loop.merged().write_json(os);
    return os.str();
}

// A loop saved after batch 1 and restored into a fresh instance must
// finish with byte-identical verdicts, coverage, and batch summaries —
// the in-process version of the kill -9 smoke.
TEST(SvcClosureLoop, SaveRestoreByteIdenticalToUninterrupted) {
    CampaignConfig rc;
    rc.jobs = 2;

    ClosureLoop straight(tiny_closure());
    while (!straight.done()) straight.run_batch(rc);

    ClosureLoop first(tiny_closure());
    ASSERT_FALSE(first.done());
    first.run_batch(rc);
    std::ostringstream blob;
    ASSERT_TRUE(first.save(blob));

    ClosureLoop resumed(tiny_closure());
    std::istringstream is(blob.str());
    std::string err;
    ASSERT_TRUE(resumed.restore(is, &err)) << err;
    EXPECT_EQ(resumed.next_batch(), 1u);
    while (!resumed.done()) resumed.run_batch(rc);

    EXPECT_EQ(resumed.verdicts(), straight.verdicts());
    EXPECT_EQ(cover_json(resumed), cover_json(straight));
    ASSERT_EQ(resumed.batches().size(), straight.batches().size());
    for (std::size_t i = 0; i < straight.batches().size(); ++i) {
        EXPECT_EQ(resumed.batches()[i].goal_hit,
                  straight.batches()[i].goal_hit)
            << "batch " << i;
        EXPECT_EQ(resumed.batches()[i].percent,
                  straight.batches()[i].percent)
            << "batch " << i;
    }
    EXPECT_EQ(resumed.scenarios_run(), straight.scenarios_run());
}

TEST(SvcClosureLoop, RestoreRejectsMismatchedConfig) {
    CampaignConfig rc;
    rc.jobs = 2;
    ClosureLoop loop(tiny_closure());
    loop.run_batch(rc);
    std::ostringstream blob;
    ASSERT_TRUE(loop.save(blob));

    ClosureConfig other = tiny_closure();
    other.seed = 6;  // a different campaign
    ClosureLoop wrong(other);
    std::istringstream is(blob.str());
    std::string err;
    EXPECT_FALSE(wrong.restore(is, &err));
    EXPECT_FALSE(err.empty());

    ClosureLoop garbage(tiny_closure());
    std::istringstream bad("not a checkpoint");
    EXPECT_FALSE(garbage.restore(bad, &err));
}

// --- executor --------------------------------------------------------------

JobSpec diff_spec() {
    JobSpec spec;
    spec.id = 1;
    spec.kind = "diff";
    spec.params = {{"seed", "9"}, {"seeds", "4"}};
    return spec;
}

TEST(SvcExec, DiffResumeFromCheckpointByteIdentical) {
    ExecConfig cfg;
    cfg.job_workers = 2;
    cfg.ckpt_interval = 1;

    std::vector<std::string> blobs;
    std::mutex mu;
    ExecHooks hooks;
    hooks.on_checkpoint = [&](const std::string& b) {
        const std::lock_guard lk(mu);
        blobs.push_back(b);
    };
    const JobOutcome fresh =
        run_service_job(diff_spec(), cfg, hooks, std::string());
    EXPECT_EQ(fresh.state, JobState::kDone);
    ASSERT_FALSE(blobs.empty());  // 4 scenarios, ckpt per completion

    // Resume from the first checkpoint: only the missing scenarios rerun,
    // and the merged verdict set is identical.
    std::atomic<unsigned> reran{0};
    ExecHooks resume_hooks;
    resume_hooks.on_record = [&](const autovision::campaign::JobRecord&) {
        ++reran;
    };
    const JobOutcome resumed =
        run_service_job(diff_spec(), cfg, resume_hooks, blobs.front());
    EXPECT_EQ(resumed.state, JobState::kDone);
    EXPECT_EQ(resumed.verdicts, fresh.verdicts);
    EXPECT_EQ(resumed.pass, fresh.pass);
    EXPECT_LT(reran.load(), 4u);

    // A blob from a different campaign config is ignored: fresh start.
    JobSpec other = diff_spec();
    other.params["seed"] = "10";
    std::atomic<unsigned> full{0};
    ExecHooks full_hooks;
    full_hooks.on_record = [&](const autovision::campaign::JobRecord&) {
        ++full;
    };
    const JobOutcome cross =
        run_service_job(other, cfg, full_hooks, blobs.front());
    EXPECT_EQ(cross.state, JobState::kDone);
    EXPECT_EQ(full.load(), 4u);
}

TEST(SvcExec, UnknownKindFails) {
    JobSpec spec;
    spec.kind = "fuzz";
    const JobOutcome out =
        run_service_job(spec, ExecConfig{}, ExecHooks{}, std::string());
    EXPECT_EQ(out.state, JobState::kFailed);
    EXPECT_NE(out.summary.find("unknown job kind"), std::string::npos);
}

TEST(SvcExec, CancelledBetweenUnits) {
    JobSpec spec;
    spec.kind = "closure";
    spec.params = {{"seed", "3"}, {"batches", "4"}, {"batch-size", "2"},
                   {"target", "101"}};
    ExecConfig cfg;
    cfg.job_workers = 2;
    std::atomic<unsigned> batches{0};
    ExecHooks hooks;
    hooks.on_progress = [&](std::uint32_t done, std::uint32_t) {
        batches.store(done);
    };
    hooks.cancelled = [&] { return batches.load() >= 1; };
    const JobOutcome out =
        run_service_job(spec, cfg, hooks, std::string());
    EXPECT_EQ(out.state, JobState::kCancelled);
    EXPECT_FALSE(out.pass);
    EXPECT_NE(out.summary.find("cancelled"), std::string::npos);
}

// --- daemon end-to-end -----------------------------------------------------

TEST(SvcDaemon, SubmitWaitStatusListShutdown) {
    const std::string dir = fresh_dir("daemon_e2e");
    std::filesystem::create_directories(dir);
    DaemonConfig cfg;
    cfg.socket_path = dir + "/d.sock";
    cfg.state_dir = dir + "/state";
    cfg.shards = 2;
    cfg.executors = 1;
    cfg.exec.job_workers = 2;
    cfg.quiet = true;

    Daemon daemon(cfg);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.run(); });

    Client client;
    ASSERT_TRUE(client.connect(cfg.socket_path, "test", &err)) << err;

    JobSpec spec;
    spec.kind = "diff";
    spec.params = {{"seed", "9"}, {"seeds", "3"}};
    SubmitResult res;
    ASSERT_TRUE(client.submit(spec, &res, &err)) << err;
    ASSERT_TRUE(res.accepted) << res.reason;
    EXPECT_EQ(res.id, 1u);

    std::vector<std::string> lines;
    JobOutcome outcome;
    ASSERT_TRUE(client.wait(
        res.id, [&](const RecordLine& rl) { lines.push_back(rl.line); },
        &outcome, &err))
        << err;
    EXPECT_EQ(outcome.state, JobState::kDone);
    EXPECT_TRUE(outcome.pass) << outcome.summary;
    // Records completed before the subscription are not replayed, so the
    // streamed count is at most one per scenario; the canonical artifact is
    // the outcome's verdict block, which always carries all three.
    EXPECT_LE(lines.size(), 3u);
    EXPECT_EQ(std::count(outcome.verdicts.begin(), outcome.verdicts.end(),
                         '\n'),
              3);

    const std::string job1_verdicts = outcome.verdicts;

    // A second wait on the finished job answers from the journal.
    JobOutcome again;
    ASSERT_TRUE(client.wait(res.id, nullptr, &again, &err)) << err;
    EXPECT_EQ(again.verdicts, job1_verdicts);

    JobStatusInfo info;
    ASSERT_TRUE(client.status(res.id, &info, &err)) << err;
    EXPECT_EQ(info.state, JobState::kDone);
    EXPECT_EQ(info.kind, "diff");
    ASSERT_TRUE(client.status(999, &info, &err)) << err;
    EXPECT_EQ(info.state, JobState::kUnknown);

    JobList list;
    ASSERT_TRUE(client.list(&list, &err)) << err;
    ASSERT_EQ(list.jobs.size(), 1u);
    EXPECT_EQ(list.jobs[0].id, 1u);

    // Unknown kinds fail cleanly through the whole stack.
    JobSpec bad;
    bad.kind = "fuzz";
    ASSERT_TRUE(client.submit(bad, &res, &err)) << err;
    ASSERT_TRUE(res.accepted);
    ASSERT_TRUE(client.wait(res.id, nullptr, &outcome, &err)) << err;
    EXPECT_EQ(outcome.state, JobState::kFailed);

    ASSERT_TRUE(client.shutdown_daemon(&err)) << err;
    server.join();

    // The journal outlives the daemon: a fresh instance still knows both
    // jobs and reports them finished.
    Daemon revived(cfg);
    ASSERT_TRUE(revived.start(&err)) << err;
    std::thread server2([&] { revived.run(); });
    Client c2;
    ASSERT_TRUE(c2.connect(cfg.socket_path, "test2", &err)) << err;
    JobList list2;
    ASSERT_TRUE(c2.list(&list2, &err)) << err;
    EXPECT_EQ(list2.jobs.size(), 2u);
    JobOutcome persisted;
    ASSERT_TRUE(c2.wait(1, nullptr, &persisted, &err)) << err;
    EXPECT_EQ(persisted.verdicts, job1_verdicts);
    ASSERT_TRUE(c2.shutdown_daemon(&err)) << err;
    server2.join();
}

TEST(SvcDaemon, AdmissionRejectsOverBudget) {
    const std::string dir = fresh_dir("daemon_admit");
    std::filesystem::create_directories(dir);
    DaemonConfig cfg;
    cfg.socket_path = dir + "/d.sock";
    cfg.state_dir = dir + "/state";
    cfg.executors = 1;
    cfg.exec.job_workers = 1;
    cfg.admission.max_jobs = 1;  // one unfinished job, total
    cfg.quiet = true;

    Daemon daemon(cfg);
    std::string err;
    ASSERT_TRUE(daemon.start(&err)) << err;
    std::thread server([&] { daemon.run(); });

    Client client;
    ASSERT_TRUE(client.connect(cfg.socket_path, "test", &err)) << err;
    JobSpec spec;
    spec.kind = "diff";
    spec.params = {{"seed", "2"}, {"seeds", "2"}};
    SubmitResult first;
    ASSERT_TRUE(client.submit(spec, &first, &err)) << err;
    ASSERT_TRUE(first.accepted);
    SubmitResult second;
    ASSERT_TRUE(client.submit(spec, &second, &err)) << err;
    EXPECT_FALSE(second.accepted);
    EXPECT_NE(second.reason.find("capacity"), std::string::npos);

    JobOutcome outcome;
    ASSERT_TRUE(client.wait(first.id, nullptr, &outcome, &err)) << err;
    // Budget released at completion: the next submit is admitted.
    SubmitResult third;
    ASSERT_TRUE(client.submit(spec, &third, &err)) << err;
    EXPECT_TRUE(third.accepted);
    ASSERT_TRUE(client.wait(third.id, nullptr, &outcome, &err)) << err;
    ASSERT_TRUE(client.shutdown_daemon(&err)) << err;
    server.join();
}

}  // namespace
