// Property tests: LVec's word-parallel 4-state operators must agree with a
// naive per-bit evaluation using the scalar Logic truth tables, across
// randomised inputs.
#include <gtest/gtest.h>

#include "kernel/logic.hpp"
#include "kernel/lvec.hpp"

namespace rtlsim {
namespace {

/// Deterministic 32-bit LCG for reproducible "random" vectors.
class Lcg {
public:
    explicit Lcg(std::uint32_t seed) : s_(seed) {}
    std::uint32_t next() {
        s_ = s_ * 1664525u + 1013904223u;
        return s_;
    }

private:
    std::uint32_t s_;
};

template <unsigned N>
LVec<N> random_lvec(Lcg& rng) {
    LVec<N> v{0};
    for (unsigned i = 0; i < N; ++i) {
        switch (rng.next() % 4) {
            case 0: v.set_bit(i, Logic::L0); break;
            case 1: v.set_bit(i, Logic::L1); break;
            case 2: v.set_bit(i, Logic::X); break;
            default: v.set_bit(i, Logic::Z); break;
        }
    }
    return v;
}

class LVecProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LVecProperty, BitwiseOpsMatchScalarTables) {
    Lcg rng(GetParam());
    for (int iter = 0; iter < 200; ++iter) {
        const auto a = random_lvec<16>(rng);
        const auto b = random_lvec<16>(rng);
        const auto land = a & b;
        const auto lor = a | b;
        const auto lxor = a ^ b;
        const auto lnot = ~a;
        for (unsigned i = 0; i < 16; ++i) {
            // Z inputs degrade to X inside vector gates, matching the
            // scalar tables where Z behaves as unknown.
            EXPECT_EQ(land.bit(i), a.bit(i) & b.bit(i))
                << "AND bit " << i << " of " << a << " & " << b;
            EXPECT_EQ(lor.bit(i), a.bit(i) | b.bit(i));
            EXPECT_EQ(lxor.bit(i), a.bit(i) ^ b.bit(i));
            EXPECT_EQ(lnot.bit(i), ~a.bit(i));
        }
    }
}

TEST_P(LVecProperty, ReductionsMatchScalarFold) {
    Lcg rng(GetParam());
    for (int iter = 0; iter < 200; ++iter) {
        const auto a = random_lvec<12>(rng);
        Logic ror = a.bit(0);
        Logic rand = a.bit(0);
        for (unsigned i = 1; i < 12; ++i) {
            ror = ror | a.bit(i);
            rand = rand & a.bit(i);
        }
        EXPECT_EQ(a.reduce_or(), ror) << a;
        EXPECT_EQ(a.reduce_and(), rand) << a;
    }
}

TEST_P(LVecProperty, ArithmeticMatchesUintWhenDefined) {
    Lcg rng(GetParam());
    for (int iter = 0; iter < 200; ++iter) {
        const std::uint32_t x = rng.next();
        const std::uint32_t y = rng.next();
        const LVec<32> a{x};
        const LVec<32> b{y};
        EXPECT_EQ((a + b).to_u64(), x + y);
        EXPECT_EQ((a - b).to_u64(), x - y);
        EXPECT_EQ((a * b).to_u64(), x * y);
        const unsigned s = rng.next() % 32;
        EXPECT_EQ((a << s).to_u64(), x << s);
        EXPECT_EQ((a >> s).to_u64(), x >> s);
        EXPECT_EQ(logic_eq(a, b), to_logic(x == y));
    }
}

TEST_P(LVecProperty, AnyUnknownPoisonsArithmetic) {
    Lcg rng(GetParam());
    for (int iter = 0; iter < 100; ++iter) {
        auto a = random_lvec<32>(rng);
        const auto b = LVec<32>{rng.next()};
        if (!a.has_unknown()) a.set_bit(rng.next() % 32, Logic::X);
        EXPECT_TRUE((a + b) == LVec<32>::all_x());
        EXPECT_TRUE((b - a) == LVec<32>::all_x());
        EXPECT_EQ(logic_eq(a, b), Logic::X);
    }
}

TEST_P(LVecProperty, StringRoundTrip) {
    Lcg rng(GetParam());
    for (int iter = 0; iter < 100; ++iter) {
        const auto a = random_lvec<24>(rng);
        const std::string s = a.to_string();
        ASSERT_EQ(s.size(), 24u);
        LVec<24> back{0};
        for (unsigned i = 0; i < 24; ++i) {
            back.set_bit(23 - i, logic_from_char(s[i]));
        }
        EXPECT_TRUE(back == a) << s;
    }
}

TEST_P(LVecProperty, DeMorganHoldsUnderFourState) {
    Lcg rng(GetParam());
    for (int iter = 0; iter < 200; ++iter) {
        const auto a = random_lvec<16>(rng);
        const auto b = random_lvec<16>(rng);
        // ~(a & b) == ~a | ~b per bit (4-state De Morgan).
        const auto lhs = ~(a & b);
        const auto rhs = ~a | ~b;
        for (unsigned i = 0; i < 16; ++i) {
            EXPECT_EQ(lhs.bit(i), rhs.bit(i)) << a << " " << b << " bit " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LVecProperty,
                         ::testing::Values(1u, 7u, 42u, 1337u, 0xDEADBEEFu));

}  // namespace
}  // namespace rtlsim
