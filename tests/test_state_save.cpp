// State saving and restoration through the configuration port — the ReSim
// companion feature (Gong & Diessel, FPGA'12). A module's flip-flop state
// is captured with a GCAPTURE SimB before swap-out and reinstated with a
// GRESTORE-bearing configuration SimB at swap-in, so a preempted job
// resumes exactly where it stopped.
#include <gtest/gtest.h>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"
#include "video/census.hpp"
#include "video/synth.hpp"

namespace autovision {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;
using rtlsim::Word;

constexpr rtlsim::Time kClk = 10 * NS;
constexpr std::uint32_t kIn = 0x1'0000;
constexpr std::uint32_t kOut = 0x2'0000;

struct StateTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 100000}};
    rtlsim::Signal<Logic> done_line{sch, "done", Logic::L0};
    EngineRegs cie_regs{sch, "cie_regs", clk.out, 0x60};
    EngineRegs me_regs{sch, "me_regs", clk.out, 0x68};
    CensusEngine cie{sch, "cie", clk.out, rst.out, cie_regs};
    MatchingEngine me{sch, "me", clk.out, rst.out, me_regs};
    RrBoundary rr{sch, "rr", plb.master(0), done_line};
    resim::ExtendedPortal portal{sch, "portal"};
    resim::IcapArtifact icap{sch, "icap", portal};

    StateTb() {
        plb.attach_slave(mem);
        rr.add_module(cie);
        rr.add_module(me);
        portal.map_module(1, 1, rr, 0);
        portal.map_module(1, 2, rr, 1);
        portal.initial_configuration(1, 1);
    }

    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }

    void write_simb(const std::vector<std::uint32_t>& ws) {
        for (std::uint32_t w : ws) icap.icap_write(Word{w});
    }

    void start_cie(unsigned w, unsigned h) {
        cie_regs.dcr_write(0x62, Word{kIn});
        cie_regs.dcr_write(0x63, Word{kOut});
        cie_regs.dcr_write(0x65, Word{(w << 16) | h});
        run_cycles(5);
        cie_regs.dcr_write(0x60, Word{1});
        run_cycles(5);
    }
};

TEST(StateSave, CaptureRefusedWhileDmaInFlight) {
    StateTb tb;
    video::SyntheticScene scene(video::SceneConfig::standard(32, 24, 2));
    tb.mem.load_bytes(kIn, scene.frame(0).pixels());
    tb.start_cie(32, 24);
    ASSERT_TRUE(tb.cie.busy());

    bool saw_refusal = false;
    bool saw_success = false;
    for (int i = 0; i < 50 && !(saw_refusal && saw_success); ++i) {
        tb.run_cycles(1);
        const auto st = tb.cie.rm_save_state();
        if (st.empty()) {
            saw_refusal = true;  // DMA in flight: quiescence rule enforced
        } else {
            saw_success = true;
        }
    }
    EXPECT_TRUE(saw_refusal) << "the quiescence check never triggered";
    EXPECT_TRUE(saw_success) << "no capturable cycle found";
    EXPECT_TRUE(tb.sch.has_diag_from("cie"));
}

TEST(StateSave, MidJobMigrationIsBitExact) {
    const unsigned w = 32;
    const unsigned h = 24;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h, 6));
    const video::Frame in = scene.frame(0);

    StateTb tb;
    tb.mem.load_bytes(kIn, in.pixels());
    tb.start_cie(w, h);
    tb.run_cycles(200);  // mid-frame
    ASSERT_TRUE(tb.cie.busy());

    // Capture the CIE (retry until a quiescent cycle is hit).
    resim::SimB cap;
    cap.rr_id = 1;
    cap.module_id = 1;
    for (int i = 0; i < 20 && tb.portal.captures() == 0; ++i) {
        tb.write_simb(cap.build_capture());
        tb.run_cycles(1);
    }
    ASSERT_EQ(tb.portal.captures(), 1u);
    ASSERT_TRUE(tb.portal.has_saved_state(1, 1));

    // Preempt: swap the ME in; the CIE job disappears with the module.
    resim::SimB to_me;
    to_me.rr_id = 1;
    to_me.module_id = 2;
    tb.write_simb(to_me.build());
    ASSERT_TRUE(tb.me.rm_active());
    tb.run_cycles(300);  // the region does other work for a while
    EXPECT_FALSE(tb.cie.busy());

    // Resume: configuration SimB with GRESTORE brings the CIE back with
    // its captured state, and the job runs to completion.
    resim::SimB back;
    back.rr_id = 1;
    back.module_id = 1;
    back.restore_state = true;
    tb.write_simb(back.build());
    ASSERT_TRUE(tb.cie.rm_active());
    EXPECT_TRUE(tb.cie.busy()) << "restored mid-job";
    EXPECT_EQ(tb.portal.restores(), 1u);

    for (int i = 0; i < 300 && !tb.cie_regs.done(); ++i) tb.run_cycles(64);
    ASSERT_TRUE(tb.cie_regs.done());

    const video::Frame want = video::census_transform(in);
    for (unsigned i = 0; i < want.size(); ++i) {
        ASSERT_EQ(tb.mem.peek_u8(kOut + i), want.pixels()[i])
            << "pixel " << i << " corrupted by the migration";
    }
}

TEST(StateSave, RestoreWithoutCaptureIsReported) {
    StateTb tb;
    tb.run_cycles(5);
    resim::SimB b;
    b.rr_id = 1;
    b.module_id = 2;
    b.restore_state = true;
    tb.write_simb(b.build());
    EXPECT_TRUE(tb.me.rm_active()) << "configuration itself still happens";
    EXPECT_EQ(tb.portal.restores(), 0u);
    bool found = false;
    for (const auto& d : tb.sch.diagnostics()) {
        if (d.message.find("without a previously captured") !=
            std::string::npos) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(StateSave, CaptureOfNonResidentModuleIsReported) {
    StateTb tb;
    tb.run_cycles(5);
    resim::SimB cap;
    cap.rr_id = 1;
    cap.module_id = 2;  // the ME is not resident (CIE is)
    tb.write_simb(cap.build_capture());
    EXPECT_EQ(tb.portal.captures(), 0u);
    bool found = false;
    for (const auto& d : tb.sch.diagnostics()) {
        if (d.message.find("not resident") != std::string::npos) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(StateSave, CorruptImageIsRejectedAtomically) {
    StateTb tb;
    tb.run_cycles(5);
    // Hand the module a garbage state image directly.
    std::vector<std::uint8_t> junk{1, 2, 3, 4, 5};
    EXPECT_FALSE(tb.cie.rm_restore_state(junk));
    EXPECT_FALSE(tb.cie.busy()) << "engine falls back to the initial state";
    // A truncated-but-magic-valid image must also be rejected.
    auto st = tb.cie.rm_save_state();
    ASSERT_FALSE(st.empty());
    st.resize(st.size() / 2);
    EXPECT_FALSE(tb.cie.rm_restore_state(st));
}

TEST(StateSave, RoundTripThroughSerializer) {
    StateWriter w;
    w.u32(0xDEADBEEF);
    w.i32(-42);
    w.bool8(true);
    const std::vector<std::uint8_t> bs{9, 8, 7};
    w.bytes(bs);
    const std::vector<std::uint32_t> ws{1, 2, 3, 4};
    w.words(ws);
    const auto img = w.take();

    StateReader r(img);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_TRUE(r.bool8());
    EXPECT_EQ(r.bytes(), bs);
    EXPECT_EQ(r.words(), ws);
    EXPECT_TRUE(r.ok());

    StateReader trunc(std::span<const std::uint8_t>(img.data(), 3));
    (void)trunc.u32();
    EXPECT_FALSE(trunc.ok_so_far());
}

}  // namespace
}  // namespace autovision
