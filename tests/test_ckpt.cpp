// Checkpoint invariance suite (src/ckpt).
//
// The contract under test: a run that is saved at cycle N, restored into a
// freshly elaborated system, and continued must be indistinguishable —
// bit-exact signals, kernel counters, memories and module state — from the
// same run left uninterrupted. The comparison oracle is the checkpoint
// blob itself: System::save serializes *all* simulator state
// byte-deterministically, so "warm final blob == cold final blob" pins
// every signal value, every counter and every in-flight transaction at
// once, in the spirit of the SimStats goldens in
// test_kernel_invariance.cpp.
//
// The save points are chosen adversarially: we step in small quanta until
// the system is mid-ICAP-packet, inside the isolation X-window, or holding
// a pending interrupt, and snapshot *there* — the moments with the most
// in-flight state (open DMA bursts, half-streamed SimBs, latched IRQs).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "diff/diff.hpp"
#include "scen/scenario.hpp"
#include "scen/stream_harness.hpp"
#include "sys/address_map.hpp"
#include "sys/system.hpp"
#include "sys/testbench.hpp"
#include "video/synth.hpp"

namespace {

using autovision::sys::kFrameBuf;
using autovision::sys::OpticalFlowSystem;
using autovision::sys::SystemConfig;
namespace video = autovision::video;

SystemConfig small_config() {
    SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.search = 2;
    cfg.simb_payload_words = 64;
    return cfg;
}

video::Frame scene_frame(const SystemConfig& cfg, unsigned index) {
    video::SyntheticScene scene(
        video::SceneConfig::standard(cfg.width, cfg.height, 1));
    return scene.frame(index);
}

/// Elaborate a fresh system, boot it and inject frame 0 — the shared
/// prefix of every directly-driven run in this suite.
struct DirectRun {
    explicit DirectRun(const SystemConfig& cfg) : sys(cfg) {
        sys.sch.run_until(8 * cfg.clk_period);
        sys.video_in.send_frame(scene_frame(cfg, 0), kFrameBuf);
    }

    void run_to(rtlsim::Time t) {
        while (sys.sch.now() < t && !sys.sch.stop_requested()) {
            sys.sch.run_until(sys.sch.now() + kQuantum);
        }
    }

    /// Step quanta until `cond()` holds (fails the test if it never does).
    template <typename Cond>
    rtlsim::Time run_until_condition(Cond cond, rtlsim::Time budget) {
        while (sys.sch.now() < budget) {
            sys.sch.run_until(sys.sch.now() + kQuantum);
            if (cond()) return sys.sch.now();
        }
        return 0;
    }

    [[nodiscard]] std::string blob() const {
        std::ostringstream os;
        EXPECT_TRUE(sys.save(os));
        return os.str();
    }

    static constexpr rtlsim::Time kQuantum = 32 * 10 * rtlsim::NS;
    OpticalFlowSystem sys;
};

/// The core round-trip check: save `warm` at its current time, restore
/// into a fresh system, continue both the original cold reference and the
/// restored system to `t_end`, and require bit-identical final blobs.
void expect_warm_equals_cold(const SystemConfig& cfg, DirectRun& warm,
                             rtlsim::Time t_end) {
    const std::string mid = warm.blob();
    ASSERT_FALSE(mid.empty());

    // Cold reference: one uninterrupted run to t_end.
    DirectRun cold(cfg);
    cold.run_to(t_end);

    // Warm side: fresh elaboration, restore, continue.
    OpticalFlowSystem restored(cfg);
    std::istringstream is(mid);
    std::string err;
    ASSERT_TRUE(restored.restore(is, &err)) << err;
    EXPECT_EQ(restored.sch.now(), warm.sys.sch.now());
    while (restored.sch.now() < t_end && !restored.sch.stop_requested()) {
        restored.sch.run_until(restored.sch.now() + DirectRun::kQuantum);
    }

    std::ostringstream warm_os;
    ASSERT_TRUE(restored.save(warm_os));
    EXPECT_EQ(warm_os.str(), cold.blob())
        << "restored run diverged from the uninterrupted reference";
}

// ---------------------------------------------------------------------------
// Determinism and manifest plumbing
// ---------------------------------------------------------------------------

TEST(Ckpt, BlobIsByteDeterministic) {
    const SystemConfig cfg = small_config();
    DirectRun a(cfg);
    a.run_to(2000 * cfg.clk_period);
    // Saving twice at the same instant is bit-identical (no wall-clock,
    // pointer or iteration-order leakage into the serialization).
    EXPECT_EQ(a.blob(), a.blob());

    // A second system elaborated in the same process and driven the same
    // way lands on the same bytes — the regression net for hidden static
    // mutable state surviving from the first run.
    DirectRun b(cfg);
    b.run_to(2000 * cfg.clk_period);
    EXPECT_EQ(a.blob(), b.blob());
}

TEST(Ckpt, ManifestRejectsMismatchedConfig) {
    const SystemConfig cfg = small_config();
    DirectRun a(cfg);
    a.run_to(1000 * cfg.clk_period);
    const std::string blob = a.blob();

    SystemConfig other = cfg;
    other.width = 64;  // different geometry => different config hash
    OpticalFlowSystem wrong(other);
    std::istringstream is(blob);
    std::string err;
    EXPECT_FALSE(wrong.restore(is, &err));
    EXPECT_NE(err.find("config"), std::string::npos) << err;
}

TEST(Ckpt, ManifestRoundTrips) {
    const SystemConfig cfg = small_config();
    DirectRun a(cfg);
    a.run_to(1000 * cfg.clk_period);
    const std::string blob = a.blob();

    std::istringstream is(blob);
    autovision::ckpt::Loader loader;
    ASSERT_TRUE(loader.load(is, 0)) << loader.error();  // 0 = skip hash check
    EXPECT_EQ(loader.manifest().format_version, autovision::ckpt::kFormatVersion);
    EXPECT_EQ(loader.manifest().config_hash, OpticalFlowSystem::config_hash(cfg));
    EXPECT_EQ(loader.manifest().sim_time, a.sys.sch.now());
    EXPECT_NE(loader.find("kernel"), nullptr);
    EXPECT_NE(loader.find("signals"), nullptr);
}

TEST(Ckpt, TruncatedBlobFailsCleanly) {
    const SystemConfig cfg = small_config();
    DirectRun a(cfg);
    a.run_to(1000 * cfg.clk_period);
    const std::string blob = a.blob();

    for (std::size_t cut : {std::size_t{0}, std::size_t{4}, blob.size() / 2,
                            blob.size() - 1}) {
        OpticalFlowSystem fresh(cfg);
        std::istringstream is(blob.substr(0, cut));
        std::string err;
        EXPECT_FALSE(fresh.restore(is, &err)) << "cut at " << cut;
    }
}

// ---------------------------------------------------------------------------
// Warm == cold at adversarial save points
// ---------------------------------------------------------------------------

TEST(Ckpt, WarmEqualsColdAtEarlyPoint) {
    const SystemConfig cfg = small_config();
    DirectRun warm(cfg);
    warm.run_to(500 * cfg.clk_period);
    expect_warm_equals_cold(cfg, warm, 30000 * cfg.clk_period);
}

TEST(Ckpt, WarmEqualsColdMidIcapPacket) {
    const SystemConfig cfg = small_config();
    DirectRun warm(cfg);
    ASSERT_TRUE(warm.sys.is_resim());
    // Step until the artifact is mid-payload: a SimB half-streamed through
    // the ICAP, DMA in flight, the portal's swap still pending.
    const rtlsim::Time t = warm.run_until_condition(
        [&] { return warm.sys.icap_artifact->payload_pending(); },
        60000 * cfg.clk_period);
    ASSERT_NE(t, 0u) << "run never reached a mid-ICAP-packet state";
    expect_warm_equals_cold(cfg, warm, t + 20000 * cfg.clk_period);
}

TEST(Ckpt, WarmEqualsColdInsideIsolationWindow) {
    const SystemConfig cfg = small_config();
    DirectRun warm(cfg);
    // Inside the isolation window the boundary drives safe levels while
    // the error injector feeds X into the gated side — the densest
    // 4-state moment of a reconfiguration.
    const rtlsim::Time t = warm.run_until_condition(
        [&] { return rtlsim::is1(warm.sys.iso.isolate.read()); },
        60000 * cfg.clk_period);
    ASSERT_NE(t, 0u) << "run never entered the isolation window";
    expect_warm_equals_cold(cfg, warm, t + 20000 * cfg.clk_period);
}

TEST(Ckpt, WarmEqualsColdWithPendingIrq) {
    const SystemConfig cfg = small_config();
    DirectRun warm(cfg);
    // A latched, enabled interrupt the CPU has not yet vectored to.
    const rtlsim::Time t = warm.run_until_condition(
        [&] { return rtlsim::is1(warm.sys.intc.irq.read()); },
        60000 * cfg.clk_period);
    ASSERT_NE(t, 0u) << "run never latched a pending interrupt";
    expect_warm_equals_cold(cfg, warm, t + 20000 * cfg.clk_period);
}

TEST(Ckpt, WarmEqualsColdBetweenEngineJobs) {
    // After a job completes the firmware reset-pulses the engine:
    // reset_job() clears the line buffers but w_/h_ keep the last job's
    // geometry. That cleared-but-configured state used to be rejected by
    // the engines' ckpt_restore_job geometry check ("cie section corrupt"
    // on any snapshot taken between jobs) — regression for that fix.
    const SystemConfig cfg = small_config();
    DirectRun warm(cfg);
    warm.run_to(20000 * cfg.clk_period);
    expect_warm_equals_cold(cfg, warm, 24000 * cfg.clk_period);
}

TEST(Ckpt, WarmEqualsColdUnderVirtualMux) {
    SystemConfig cfg = small_config();
    cfg.method = autovision::sys::FirmwareConfig::Method::kVm;
    DirectRun warm(cfg);
    warm.run_to(3000 * cfg.clk_period);
    ASSERT_NE(warm.sys.vmux, nullptr);
    expect_warm_equals_cold(cfg, warm, 30000 * cfg.clk_period);
}

TEST(Ckpt, WarmEqualsColdMidBasicBlock) {
    // The decode cache is deliberately never serialized: restore flushes it
    // and redecodes from restored memory. Save while the cached engine is
    // deep in decoded blocks — at a 32-cycle quantum against the firmware's
    // multi-hundred-instruction loop bodies the save lands mid-basic-block
    // with overwhelming likelihood — and require the redecoded warm run to
    // stay byte-exact with the uninterrupted reference.
    const SystemConfig cfg = small_config();
    DirectRun warm(cfg);
    const rtlsim::Time t = warm.run_until_condition(
        [&] {
            return warm.sys.cpu.decode_cache().blocks() > 4 &&
                   !warm.sys.cpu.halted();
        },
        60000 * cfg.clk_period);
    ASSERT_NE(t, 0u) << "run never populated the decode cache";
    EXPECT_GT(warm.sys.cpu.decode_cache().decodes(), 0u);
    expect_warm_equals_cold(cfg, warm, t + 20000 * cfg.clk_period);
}

TEST(Ckpt, WarmEqualsColdMidSyscallStream) {
    // Host-IO firmware: save after console output began but before the
    // firmware's exit(0). HostIo (console bytes, per-service counters, the
    // exit latch) rides inside the cpu checkpoint section, so the restored
    // run must reproduce the remaining output byte-for-byte — pinned
    // wholesale by the final-blob comparison.
    SystemConfig cfg = small_config();
    cfg.host_io = true;
    cfg.exit_after_frames = 3;
    DirectRun warm(cfg);
    const rtlsim::Time t = warm.run_until_condition(
        [&] {
            return !warm.sys.cpu.host_io().out().empty() &&
                   !warm.sys.cpu.host_io().exited();
        },
        120000 * cfg.clk_period);
    ASSERT_NE(t, 0u) << "firmware never produced console output";
    EXPECT_GT(warm.sys.cpu.host_io().total_calls(), 0u);
    expect_warm_equals_cold(cfg, warm, t + 20000 * cfg.clk_period);
}

TEST(Ckpt, WarmEqualsColdWithSoftwareScheduledPool) {
    // Software-scheduled virtualization pool: the run-time grown plan
    // (RegionManager::push_software) and the PoolBridge staging registers
    // must both survive a restore taken while pushes are still in flight.
    SystemConfig cfg = small_config();
    cfg.regions = 3;
    cfg.rrm_software = true;
    DirectRun warm(cfg);
    const rtlsim::Time t = warm.run_until_condition(
        [&] {
            return warm.sys.pool_bridge != nullptr &&
                   warm.sys.pool_bridge->pushes() > 0 &&
                   !warm.sys.region_manager->done();
        },
        200000 * cfg.clk_period);
    ASSERT_NE(t, 0u) << "firmware never pushed a pool job";
    expect_warm_equals_cold(cfg, warm, t + 30000 * cfg.clk_period);
}

// ---------------------------------------------------------------------------
// Stream-harness warm start (the closure campaign's fast path)
// ---------------------------------------------------------------------------

/// A deterministic kStream scenario with a corrupted middle session, so the
/// warm run replays SimB corruption from the restored state.
autovision::scen::Scenario corrupted_stream_scenario() {
    autovision::scen::ScenarioConstraints cons;
    cons.w_stream = 1;
    cons.w_system = 0;
    cons.w_fault = 0;
    cons.min_sessions = 3;
    cons.max_sessions = 5;
    autovision::scen::Scenario sc =
        autovision::scen::generate(cons, /*seed=*/0xC0FFEEu);
    EXPECT_EQ(sc.kind, autovision::scen::Kind::kStream);
    return sc;
}

bool same_events(const std::vector<autovision::obs::Event>& a,
                 const std::vector<autovision::obs::Event>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].time != b[i].time || a[i].kind != b[i].kind ||
            a[i].src != b[i].src || a[i].a != b[i].a || a[i].b != b[i].b) {
            return false;
        }
    }
    return true;
}

TEST(Ckpt, StreamHarnessWarmStartMatchesCold) {
    const autovision::scen::Scenario sc = corrupted_stream_scenario();

    const autovision::scen::StreamResult cold =
        autovision::scen::run_stream_scenario(sc);

    const std::string boot = autovision::scen::stream_boot_snapshot();
    ASSERT_FALSE(boot.empty());
    const autovision::scen::StreamResult warm =
        autovision::scen::run_stream_scenario(sc, nullptr, &boot);

    // The full observable surface must match bit-exactly: the recorded
    // event stream (what coverage is computed from), kernel counters,
    // portal/ICAP tallies and diagnostics.
    EXPECT_TRUE(same_events(cold.events, warm.events));
    EXPECT_EQ(cold.stats.timed_events, warm.stats.timed_events);
    EXPECT_EQ(cold.stats.delta_cycles, warm.stats.delta_cycles);
    EXPECT_EQ(cold.stats.proc_invocations, warm.stats.proc_invocations);
    EXPECT_EQ(cold.stats.signal_updates, warm.stats.signal_updates);
    EXPECT_EQ(cold.stats.time_steps, warm.stats.time_steps);
    EXPECT_EQ(cold.sim_time, warm.sim_time);
    EXPECT_EQ(cold.swaps, warm.swaps);
    EXPECT_EQ(cold.aborts, warm.aborts);
    EXPECT_EQ(cold.truncations, warm.truncations);
    EXPECT_EQ(cold.captures, warm.captures);
    EXPECT_EQ(cold.restores, warm.restores);
    EXPECT_EQ(cold.diagnostic_text, warm.diagnostic_text);
}

TEST(Ckpt, StreamBootSnapshotIsDeterministic) {
    EXPECT_EQ(autovision::scen::stream_boot_snapshot(),
              autovision::scen::stream_boot_snapshot());
}

// ---------------------------------------------------------------------------
// Differential-oracle warm start (the shrinker's fast path)
// ---------------------------------------------------------------------------

void expect_same_side(const autovision::diff::SideRun& cold,
                      const autovision::diff::SideRun& warm) {
    EXPECT_EQ(cold.selects, warm.selects);
    EXPECT_EQ(cold.swaps, warm.swaps);
    EXPECT_EQ(cold.aborts, warm.aborts);
    EXPECT_EQ(cold.captures, warm.captures);
    EXPECT_EQ(cold.restores, warm.restores);
    EXPECT_EQ(cold.probes, warm.probes);
    EXPECT_EQ(cold.diagnostics, warm.diagnostics);
    EXPECT_TRUE(same_events(cold.events, warm.events));
    EXPECT_EQ(cold.stats.timed_events, warm.stats.timed_events);
    EXPECT_EQ(cold.stats.proc_invocations, warm.stats.proc_invocations);
    EXPECT_EQ(cold.stats.signal_updates, warm.stats.signal_updates);
    EXPECT_EQ(cold.sim_time, warm.sim_time);
}

TEST(Ckpt, DiffSidesWarmStartMatchesCold) {
    const autovision::scen::Scenario sc = corrupted_stream_scenario();

    autovision::diff::DiffOptions cold_opt;  // no cache: always cold
    const autovision::diff::SideRun vm_cold =
        autovision::diff::run_vm_side(sc, cold_opt);
    const autovision::diff::SideRun rs_cold =
        autovision::diff::run_resim_side(sc, cold_opt);

    autovision::diff::BootCache cache;
    autovision::diff::DiffOptions warm_opt;
    warm_opt.boot = &cache;
    // First pair of runs fills the cache (cold boot + save)...
    expect_same_side(vm_cold, autovision::diff::run_vm_side(sc, warm_opt));
    expect_same_side(rs_cold, autovision::diff::run_resim_side(sc, warm_opt));
    ASSERT_FALSE(cache.vm[0].empty());
    ASSERT_FALSE(cache.resim[0].empty());
    // ...the second pair forks from the snapshots and must be identical.
    expect_same_side(vm_cold, autovision::diff::run_vm_side(sc, warm_opt));
    expect_same_side(rs_cold, autovision::diff::run_resim_side(sc, warm_opt));
}

}  // namespace
