// Unit tests for the RTL video engines, cross-checked bit-exactly against
// the independent golden models in src/video.
#include <gtest/gtest.h>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/rr_boundary.hpp"
#include "video/census.hpp"
#include "video/flow.hpp"
#include "video/synth.hpp"

namespace autovision {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;

constexpr rtlsim::Time kClk = 10 * NS;

constexpr std::uint32_t kFrameAddr = 0x0001'0000;
constexpr std::uint32_t kCensusAddr = 0x0002'0000;
constexpr std::uint32_t kCensusPrevAddr = 0x0003'0000;
constexpr std::uint32_t kMotionAddr = 0x0004'0000;

struct EngineTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 50000}};
    rtlsim::Signal<Logic> done_line{sch, "done_line", Logic::L0};
    EngineRegs cie_regs{sch, "cie_regs", clk.out, 0x60};
    EngineRegs me_regs{sch, "me_regs", clk.out, 0x68};
    CensusEngine cie{sch, "cie", clk.out, rst.out, cie_regs};
    MatchingEngine me{sch, "me", clk.out, rst.out, me_regs};
    RrBoundary rr{sch, "rr", plb.master(0), done_line};

    EngineTb() {
        plb.attach_slave(mem);
        rr.add_module(cie);  // slot 0
        rr.add_module(me);   // slot 1
    }

    void load_frame(std::uint32_t addr, const video::Frame& f) {
        mem.load_bytes(addr, f.pixels());
    }

    video::Frame read_frame(std::uint32_t addr, unsigned w, unsigned h) {
        video::Frame f(w, h);
        for (std::size_t i = 0; i < f.size(); ++i) {
            f.pixels()[i] = mem.peek_u8(addr + static_cast<std::uint32_t>(i));
        }
        return f;
    }

    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }

    /// Run until `regs` reports done or a cycle budget elapses.
    bool run_to_done(EngineRegs& regs, unsigned max_cycles) {
        for (unsigned i = 0; i < max_cycles / 128; ++i) {
            run_cycles(128);
            if (regs.done()) return true;
        }
        return regs.done();
    }
};

void program_cie(EngineTb& tb, unsigned w, unsigned h) {
    tb.cie_regs.dcr_write(0x62, rtlsim::Word{kFrameAddr});           // SRC
    tb.cie_regs.dcr_write(0x63, rtlsim::Word{kCensusAddr});          // DST
    tb.cie_regs.dcr_write(0x65, rtlsim::Word{(w << 16) | h});        // DIMS
}

void program_me(EngineTb& tb, unsigned w, unsigned h,
                const video::MatchConfig& mc) {
    tb.me_regs.dcr_write(0x6A, rtlsim::Word{kCensusAddr});           // SRC=cur
    tb.me_regs.dcr_write(0x6B, rtlsim::Word{kMotionAddr});           // DST
    tb.me_regs.dcr_write(0x6C, rtlsim::Word{kCensusPrevAddr});       // SRC2
    tb.me_regs.dcr_write(0x6D, rtlsim::Word{(w << 16) | h});         // DIMS
    tb.me_regs.dcr_write(
        0x6E, rtlsim::Word{static_cast<std::uint32_t>(mc.search) |
                           (mc.step << 8) | (mc.margin << 16)});     // PARAM
}

TEST(CensusEngine, BitExactAgainstReferenceModel) {
    EngineTb tb;
    const unsigned w = 32;
    const unsigned h = 24;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h, 7));
    const video::Frame in = scene.frame(0);
    tb.load_frame(kFrameAddr, in);

    tb.rr.select(0);
    program_cie(tb, w, h);
    tb.run_cycles(5);
    tb.cie_regs.dcr_write(0x60, rtlsim::Word{1});  // CTRL.start

    ASSERT_TRUE(tb.run_to_done(tb.cie_regs, 60000));
    const video::Frame got = tb.read_frame(kCensusAddr, w, h);
    const video::Frame want = video::census_transform(in);
    EXPECT_EQ(got.count_mismatches(want), 0u);
    EXPECT_EQ(tb.cie.jobs_completed(), 1u);
}

TEST(CensusEngine, RejectsBadGeometry) {
    EngineTb tb;
    tb.rr.select(0);
    tb.cie_regs.dcr_write(0x65, rtlsim::Word{(30u << 16) | 24u});  // W%4 != 0
    tb.cie_regs.dcr_write(0x62, rtlsim::Word{kFrameAddr});
    tb.cie_regs.dcr_write(0x63, rtlsim::Word{kCensusAddr});
    tb.run_cycles(5);
    tb.cie_regs.dcr_write(0x60, rtlsim::Word{1});
    tb.run_cycles(50);
    EXPECT_FALSE(tb.cie_regs.busy());
    EXPECT_TRUE(tb.sch.has_diag_from("cie"));
}

TEST(CensusEngine, BusyAndDoneStatusProtocol) {
    EngineTb tb;
    const unsigned w = 16;
    const unsigned h = 8;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h));
    tb.load_frame(kFrameAddr, scene.frame(0));
    tb.rr.select(0);
    program_cie(tb, w, h);
    tb.run_cycles(5);
    EXPECT_FALSE(tb.cie_regs.busy());
    tb.cie_regs.dcr_write(0x60, rtlsim::Word{1});
    tb.run_cycles(20);
    EXPECT_TRUE(tb.cie_regs.busy()) << "engine accepted the start";
    ASSERT_TRUE(tb.run_to_done(tb.cie_regs, 30000));
    EXPECT_FALSE(tb.cie_regs.busy());
    EXPECT_EQ(tb.cie_regs.dcr_read(0x61).to_u64() & 2u, 2u) << "done set";
    tb.cie_regs.dcr_write(0x61, rtlsim::Word{2});  // W1C
    EXPECT_EQ(tb.cie_regs.dcr_read(0x61).to_u64() & 2u, 0u);
}

TEST(CensusEngine, DoneIrqPulsesOnRegionBoundary) {
    EngineTb tb;
    const unsigned w = 16;
    const unsigned h = 8;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h));
    tb.load_frame(kFrameAddr, scene.frame(0));
    tb.rr.select(0);
    program_cie(tb, w, h);
    tb.run_cycles(5);

    int pulses = 0;
    rtlsim::Process mon(tb.sch, "mon", [&] { ++pulses; });
    tb.done_line.add_listener(mon, rtlsim::Edge::Pos);

    tb.cie_regs.dcr_write(0x60, rtlsim::Word{1});
    ASSERT_TRUE(tb.run_to_done(tb.cie_regs, 30000));
    tb.run_cycles(10);
    EXPECT_EQ(pulses, 1) << "exactly one done pulse through the boundary";
}

TEST(CensusEngine, StartPulseLostWhileSwappedOut) {
    EngineTb tb;
    const unsigned w = 16;
    const unsigned h = 8;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h));
    tb.load_frame(kFrameAddr, scene.frame(0));
    tb.rr.select(1);  // ME is resident; the CIE is swapped out
    program_cie(tb, w, h);
    tb.run_cycles(5);
    tb.cie_regs.dcr_write(0x60, rtlsim::Word{1});  // start lands nowhere
    tb.run_cycles(100);
    EXPECT_FALSE(tb.cie_regs.busy());
    // Swapping the CIE in afterwards must NOT revive the lost pulse — this
    // is the physical mechanism behind bug.dpr.6b.
    tb.rr.select(0);
    tb.run_cycles(200);
    EXPECT_FALSE(tb.cie_regs.busy());
    EXPECT_EQ(tb.cie.jobs_completed(), 0u);
}

TEST(CensusEngine, SwapOutMidJobDiscardsState) {
    EngineTb tb;
    const unsigned w = 32;
    const unsigned h = 24;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h));
    tb.load_frame(kFrameAddr, scene.frame(0));
    tb.rr.select(0);
    program_cie(tb, w, h);
    tb.run_cycles(5);
    tb.cie_regs.dcr_write(0x60, rtlsim::Word{1});
    tb.run_cycles(60);
    ASSERT_TRUE(tb.cie.busy());
    tb.rr.select(1);  // swap out mid-frame
    tb.run_cycles(10);
    EXPECT_FALSE(tb.cie.busy());
    tb.rr.select(0);  // back in: post-configuration initial state
    tb.run_cycles(200);
    EXPECT_FALSE(tb.cie.busy()) << "job did not resume";
    EXPECT_EQ(tb.cie.jobs_completed(), 0u);
}

TEST(CensusEngine, SoftResetAbortsJob) {
    EngineTb tb;
    const unsigned w = 32;
    const unsigned h = 24;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h));
    tb.load_frame(kFrameAddr, scene.frame(0));
    tb.rr.select(0);
    program_cie(tb, w, h);
    tb.run_cycles(5);
    tb.cie_regs.dcr_write(0x60, rtlsim::Word{1});
    tb.run_cycles(60);
    ASSERT_TRUE(tb.cie_regs.busy());
    tb.cie_regs.dcr_write(0x60, rtlsim::Word{2});  // CTRL.reset
    tb.run_cycles(10);
    EXPECT_FALSE(tb.cie_regs.busy());
    EXPECT_EQ(tb.cie.jobs_completed(), 0u);
}

TEST(MatchingEngine, BitExactAgainstReferenceModel) {
    EngineTb tb;
    const unsigned w = 48;
    const unsigned h = 32;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h, 3));
    const video::Frame c0 = video::census_transform(scene.frame(0));
    const video::Frame c1 = video::census_transform(scene.frame(1));
    tb.load_frame(kCensusPrevAddr, c0);
    tb.load_frame(kCensusAddr, c1);

    video::MatchConfig mc;
    mc.step = 4;
    mc.margin = 8;
    mc.search = 3;
    tb.rr.select(1);
    program_me(tb, w, h, mc);
    tb.run_cycles(5);
    tb.me_regs.dcr_write(0x68, rtlsim::Word{1});  // CTRL.start

    ASSERT_TRUE(tb.run_to_done(tb.me_regs, 120000));

    const video::MotionField want = video::match_census(c0, c1, mc);
    const unsigned gw = want.grid_w();
    const unsigned gh = want.grid_h();
    ASSERT_GT(gw * gh, 0u);
    for (unsigned gy = 0; gy < gh; ++gy) {
        for (unsigned gx = 0; gx < gw; ++gx) {
            const std::uint32_t got =
                tb.mem.peek_u32(kMotionAddr + 4 * (gy * gw + gx));
            const std::uint32_t exp =
                video::encode_motion_word(want.at(gx, gy));
            EXPECT_EQ(got, exp) << "grid point (" << gx << "," << gy << ")";
        }
    }
}

TEST(MatchingEngine, RejectsZeroSearchOrStep) {
    EngineTb tb;
    tb.rr.select(1);
    tb.me_regs.dcr_write(0x6D, rtlsim::Word{(32u << 16) | 24u});
    tb.me_regs.dcr_write(0x6E, rtlsim::Word{0});  // search=0, step=0
    tb.run_cycles(5);
    tb.me_regs.dcr_write(0x68, rtlsim::Word{1});
    tb.run_cycles(50);
    EXPECT_FALSE(tb.me_regs.busy());
    EXPECT_TRUE(tb.sch.has_diag_from("me"));
}

TEST(Engines, BothEnginesRunSequentiallyThroughSwaps) {
    // The demonstrator's per-frame schedule, driven directly: CIE produces
    // the census image, swap, ME consumes it against the previous one.
    EngineTb tb;
    const unsigned w = 32;
    const unsigned h = 24;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h, 5));
    const video::Frame f1 = scene.frame(1);
    const video::Frame c0 = video::census_transform(scene.frame(0));
    tb.load_frame(kFrameAddr, f1);
    tb.load_frame(kCensusPrevAddr, c0);

    video::MatchConfig mc;
    mc.step = 4;
    mc.margin = 8;
    mc.search = 2;

    tb.rr.select(0);
    program_cie(tb, w, h);
    tb.run_cycles(5);
    tb.cie_regs.dcr_write(0x60, rtlsim::Word{1});
    ASSERT_TRUE(tb.run_to_done(tb.cie_regs, 60000));

    tb.rr.select(1);
    program_me(tb, w, h, mc);
    tb.run_cycles(5);
    tb.me_regs.dcr_write(0x68, rtlsim::Word{1});
    ASSERT_TRUE(tb.run_to_done(tb.me_regs, 120000));

    const video::Frame c1 = video::census_transform(f1);
    const video::MotionField want = video::match_census(c0, c1, mc);
    const std::uint32_t got0 = tb.mem.peek_u32(kMotionAddr);
    EXPECT_EQ(got0, video::encode_motion_word(want.at(0, 0)));
    EXPECT_EQ(tb.cie.jobs_completed(), 1u);
    EXPECT_EQ(tb.me.jobs_completed(), 1u);
}

// Geometry sweep: the engine must stay bit-exact for many frame shapes.
class CieGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(CieGeometry, BitExact) {
    const auto [w, h] = GetParam();
    EngineTb tb;
    video::SyntheticScene scene(video::SceneConfig::standard(w, h, w + h));
    const video::Frame in = scene.frame(0);
    tb.load_frame(kFrameAddr, in);
    tb.rr.select(0);
    program_cie(tb, w, h);
    tb.run_cycles(5);
    tb.cie_regs.dcr_write(0x60, rtlsim::Word{1});
    ASSERT_TRUE(tb.run_to_done(tb.cie_regs, 40u * w * h + 20000));
    const video::Frame got = tb.read_frame(kCensusAddr, w, h);
    EXPECT_EQ(got.count_mismatches(video::census_transform(in)), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CieGeometry,
    ::testing::Values(std::pair{4u, 4u}, std::pair{8u, 2u}, std::pair{16u, 16u},
                      std::pair{64u, 48u}, std::pair{20u, 30u}));

}  // namespace
}  // namespace autovision
