// Unit tests for the PowerPC-subset assembler. Reference encodings were
// cross-checked against the Power ISA manual / GNU as output.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/ppc.hpp"

namespace autovision::isa {
namespace {

std::uint32_t one(const std::string& line) {
    const Program p = assemble(line);
    EXPECT_EQ(p.words.size(), 1u) << line;
    return p.words.at(0);
}

TEST(Asm, KnownEncodings) {
    EXPECT_EQ(one("li r3, 5"), 0x38600005u);
    EXPECT_EQ(one("addi r3, r1, -8"), 0x3861FFF8u);
    EXPECT_EQ(one("lis r9, 0x1234"), 0x3D201234u);
    EXPECT_EQ(one("nop"), 0x60000000u);
    EXPECT_EQ(one("ori r3, r3, 0xBEEF"), 0x6063BEEFu);
    EXPECT_EQ(one("add r3, r4, r5"), 0x7C642A14u);
    EXPECT_EQ(one("subf r3, r4, r5"), 0x7C642850u);
    EXPECT_EQ(one("mr r5, r7"), 0x7CE53B78u);
    EXPECT_EQ(one("blr"), 0x4E800020u);
    EXPECT_EQ(one("mflr r0"), 0x7C0802A6u);
    EXPECT_EQ(one("mtlr r0"), 0x7C0803A6u);
    EXPECT_EQ(one("mtctr r12"), 0x7D8903A6u);
    EXPECT_EQ(one("stw r1, -4(r1)"), 0x9021FFFCu);
    EXPECT_EQ(one("stwu r1, -4(r1)"), 0x9421FFFCu);
    EXPECT_EQ(one("lwz r4, 12(r3)"), 0x8083000Cu);
    EXPECT_EQ(one("lbz r5, 0(r6)"), 0x88A60000u);
    EXPECT_EQ(one("slwi r3, r4, 8"), 0x5483402Eu);
    EXPECT_EQ(one("srwi r3, r4, 4"), 0x5483E13Eu);
    EXPECT_EQ(one("cmpwi r3, 0"), 0x2C030000u);
    EXPECT_EQ(one("cmpw r3, r4"), 0x7C032000u);
    EXPECT_EQ(one("rfi"), 0x4C000064u);
    EXPECT_EQ(one("sync"), 0x7C0004ACu);
    EXPECT_EQ(one("mullw r3, r4, r5"), 0x7C6429D6u);
    EXPECT_EQ(one("divwu r3, r4, r5"), 0x7C642B96u);
    EXPECT_EQ(one("neg r3, r4"), 0x7C6400D0u);
    EXPECT_EQ(one("srawi r3, r4, 2"), 0x7C831670u);
}

TEST(Asm, DcrAndMsrInstructions) {
    // mfdcr r3, 0x40 / mtdcr 0x40, r3: DCRN 0x40 split-encodes as
    // low 5 bits (0) in 16..20 and high 5 bits (2) in 11..15.
    EXPECT_EQ(one("mfdcr r3, 0x40"), (31u << 26) | (3u << 21) | (2u << 11) |
                                         (X_MFDCR << 1));
    EXPECT_EQ(one("mtdcr 0x40, r3"), (31u << 26) | (3u << 21) | (2u << 11) |
                                         (X_MTDCR << 1));
    EXPECT_EQ(one("wrteei 1"), (31u << 26) | (1u << 15) | (X_WRTEEI << 1));
    EXPECT_EQ(one("wrteei 0"), (31u << 26) | (X_WRTEEI << 1));
    EXPECT_EQ(one("mfmsr r3"), (31u << 26) | (3u << 21) | (X_MFMSR << 1));
    EXPECT_EQ(one("mtmsr r3"), (31u << 26) | (3u << 21) | (X_MTMSR << 1));
}

TEST(Asm, BranchesResolveLabels) {
    const Program p = assemble(R"(
        start:  nop
        loop:   addi r3, r3, 1
                b loop
                beq start
                bne loop
                bdnz loop
    )");
    ASSERT_EQ(p.words.size(), 6u);
    // b loop: from 0x8 to 0x4 -> offset -4.
    EXPECT_EQ(p.words[2], 0x4BFFFFFCu);
    // beq start: from 0xC to 0x0 -> offset -12, BO=12, BI=2.
    EXPECT_EQ(p.words[3], (16u << 26) | (12u << 21) | (2u << 16) |
                              (static_cast<std::uint32_t>(-12) & 0xFFFC));
    // bne loop: from 0x10 to 0x4 -> offset -12, BO=4, BI=2.
    EXPECT_EQ(p.words[4], (16u << 26) | (4u << 21) | (2u << 16) |
                              (static_cast<std::uint32_t>(-12) & 0xFFFC));
    // bdnz loop: BO=16, BI=0, offset -16.
    EXPECT_EQ(p.words[5], (16u << 26) | (16u << 21) |
                              (static_cast<std::uint32_t>(-16) & 0xFFFC));
}

TEST(Asm, ForwardReferences) {
    const Program p = assemble(R"(
        b target
        nop
        target: nop
    )");
    EXPECT_EQ(p.words[0], 0x48000008u);
}

TEST(Asm, DirectivesOrgEquWordSpaceAlign) {
    const Program p = assemble(R"(
        .equ MAGIC, 0x1234
        .org 0x100
        _start: .word MAGIC, MAGIC + 1, -1
        .space 8
        tail: .word 0xFFFF0000
        .align 16
        aligned: .word 1
    )");
    EXPECT_EQ(p.origin, 0x100u);
    EXPECT_EQ(p.sym("_start"), 0x100u);
    EXPECT_EQ(p.entry(), 0x100u);
    EXPECT_EQ(p.words[0], 0x1234u);
    EXPECT_EQ(p.words[1], 0x1235u);
    EXPECT_EQ(p.words[2], 0xFFFFFFFFu);
    EXPECT_EQ(p.words[3], 0u);
    EXPECT_EQ(p.words[4], 0u);
    EXPECT_EQ(p.sym("tail"), 0x114u);
    EXPECT_EQ(p.words[5], 0xFFFF0000u);
    EXPECT_EQ(p.sym("aligned") % 16, 0u);
}

TEST(Asm, MultipleOrgRegionsZeroFilled) {
    const Program p = assemble(R"(
        .org 0x0
        .word 0xAAAA
        .org 0x10
        .word 0xBBBB
    )");
    EXPECT_EQ(p.origin, 0x0u);
    ASSERT_EQ(p.words.size(), 5u);
    EXPECT_EQ(p.words[0], 0xAAAAu);
    EXPECT_EQ(p.words[1], 0u);
    EXPECT_EQ(p.words[4], 0xBBBBu);
}

TEST(Asm, HiLoHaFunctions) {
    const Program p = assemble(R"(
        .equ ADDR, 0x12348765
        lis r3, hi(ADDR)
        ori r3, r3, lo(ADDR)
        lis r4, ha(ADDR)
    )");
    EXPECT_EQ(p.words[0] & 0xFFFF, 0x1234u);
    EXPECT_EQ(p.words[1] & 0xFFFF, 0x8765u);
    EXPECT_EQ(p.words[2] & 0xFFFF, 0x1235u) << "ha adjusts for signed lo";
}

TEST(Asm, ExpressionsEvaluate) {
    const Program p = assemble(R"(
        .equ A, 8
        .equ B, A * 4 + 2
        .word B, (A + 2) * 3, -A
    )");
    EXPECT_EQ(p.words[0], 34u);
    EXPECT_EQ(p.words[1], 30u);
    EXPECT_EQ(p.words[2], static_cast<std::uint32_t>(-8));
}

TEST(Asm, CommentsAndBlankLines) {
    const Program p = assemble(R"(
        # full-line comment
        nop    ; trailing comment
        ; another
        nop # tail
    )");
    EXPECT_EQ(p.words.size(), 2u);
}

TEST(Asm, Errors) {
    EXPECT_THROW(assemble("bogus r1, r2"), AsmError);
    EXPECT_THROW(assemble("addi r3, r4"), AsmError);          // missing operand
    EXPECT_THROW(assemble("li r3, 0x10000"), AsmError);       // imm range
    EXPECT_THROW(assemble("li r35, 0"), AsmError);            // bad register
    EXPECT_THROW(assemble("lwz r3, 4"), AsmError);            // not d(rA)
    EXPECT_THROW(assemble("b undefined_label"), AsmError);
    EXPECT_THROW(assemble("x: nop\nx: nop"), AsmError);       // dup label
    EXPECT_THROW(assemble(".align 3"), AsmError);             // non power-of-2
    EXPECT_THROW(assemble(".space 3"), AsmError);             // unaligned
    try {
        (void)assemble("nop\nnop\nbogus");
    } catch (const AsmError& e) {
        EXPECT_EQ(e.line(), 3u);
    }
}

TEST(Asm, SprSplitFieldRoundTrip) {
    for (std::uint32_t n : {1u, 8u, 9u, 26u, 27u, 0x40u, 0x155u, 0x3FFu}) {
        EXPECT_EQ(unsplit_sprf(split_sprf(n)), n);
    }
}

}  // namespace
}  // namespace autovision::isa
