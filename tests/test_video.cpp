// Unit tests for the video substrate: frames, synthetic scenes, the census
// transform and the block-matching optical flow reference model.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "video/census.hpp"
#include "video/flow.hpp"
#include "video/frame.hpp"
#include "video/synth.hpp"

namespace autovision::video {
namespace {

TEST(Frame, BasicAccess) {
    Frame f(8, 4, 7);
    EXPECT_EQ(f.width(), 8u);
    EXPECT_EQ(f.height(), 4u);
    EXPECT_EQ(f.size(), 32u);
    EXPECT_EQ(f.at(3, 2), 7);
    f.at(3, 2) = 42;
    EXPECT_EQ(f.at(3, 2), 42);
    EXPECT_EQ(f.words(), 8u);
    Frame odd(5, 3);
    EXPECT_EQ(odd.words(), 4u) << "15 pixels round up to 4 words";
}

TEST(Frame, ClampedAccessAtBorders) {
    Frame f(4, 4);
    f.at(0, 0) = 11;
    f.at(3, 3) = 22;
    EXPECT_EQ(f.at_clamped(-1, -1), 11);
    EXPECT_EQ(f.at_clamped(-5, 2), f.at(0, 2));
    EXPECT_EQ(f.at_clamped(10, 10), 22);
}

TEST(Frame, MismatchCount) {
    Frame a(4, 4, 0);
    Frame b(4, 4, 0);
    EXPECT_EQ(a.count_mismatches(b), 0u);
    b.at(1, 1) = 1;
    b.at(2, 2) = 1;
    EXPECT_EQ(a.count_mismatches(b), 2u);
    Frame c(3, 3);
    EXPECT_GT(a.count_mismatches(c), 9u) << "geometry mismatch is total";
}

TEST(Frame, PgmRoundTrip) {
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path = (dir / "resim_test_roundtrip.pgm").string();
    SyntheticScene scene(SceneConfig::standard(32, 24));
    const Frame f = scene.frame(0);
    write_pgm(f, path);
    const Frame g = read_pgm(path);
    EXPECT_EQ(f, g);
    std::remove(path.c_str());
}

TEST(Frame, PpmWriteProducesHeaderAndPayload) {
    const auto dir = std::filesystem::temp_directory_path();
    const std::string path = (dir / "resim_test_overlay.ppm").string();
    Frame f(8, 8, 128);
    write_ppm(f, f, f, path);
    EXPECT_GE(std::filesystem::file_size(path), 8u * 8u * 3u);
    std::remove(path.c_str());
}

TEST(Synth, DeterministicFrames) {
    SyntheticScene a(SceneConfig::standard(64, 48, 5));
    SyntheticScene b(SceneConfig::standard(64, 48, 5));
    EXPECT_EQ(a.frame(3), b.frame(3));
    SyntheticScene c(SceneConfig::standard(64, 48, 6));
    EXPECT_NE(a.frame(3), c.frame(3)) << "different seed, different texture";
}

TEST(Synth, ObjectsActuallyMove) {
    SyntheticScene s(SceneConfig::standard(64, 48));
    const Frame f0 = s.frame(0);
    const Frame f1 = s.frame(1);
    EXPECT_GT(f0.count_mismatches(f1), 20u);
}

TEST(Synth, GroundTruthMatchesObjectPlacement) {
    SceneConfig cfg;
    cfg.width = 32;
    cfg.height = 32;
    cfg.objects.push_back(MovingObject{4, 4, 8, 8, 3, -1, 200});
    SyntheticScene s(cfg);
    int dx = 0;
    int dy = 0;
    EXPECT_TRUE(s.ground_truth(0, 5, 5, dx, dy));
    EXPECT_EQ(dx, 3);
    EXPECT_EQ(dy, -1);
    EXPECT_FALSE(s.ground_truth(0, 20, 20, dx, dy)) << "background";
    // At t=2 the object has moved to (10, 2).
    EXPECT_TRUE(s.ground_truth(2, 11, 3, dx, dy));
    EXPECT_FALSE(s.ground_truth(2, 5, 5, dx, dy));
}

TEST(Census, SignatureBitsFollowNeighbourOrder) {
    Frame f(3, 3, 100);
    f.at(0, 0) = 200;  // top-left neighbour of centre -> bit 7
    f.at(2, 2) = 250;  // bottom-right -> bit 3 (clockwise order)
    const std::uint8_t sig = census_signature(f, 1, 1);
    EXPECT_EQ(sig & 0x80, 0x80);
    EXPECT_EQ(sig & 0x08, 0x08);
    EXPECT_EQ(sig, 0x88);
}

TEST(Census, FlatImageIsZero) {
    Frame f(8, 8, 77);
    const Frame c = census_transform(f);
    for (unsigned y = 0; y < 8; ++y) {
        for (unsigned x = 0; x < 8; ++x) EXPECT_EQ(c.at(x, y), 0);
    }
}

TEST(Census, IlluminationInvariance) {
    // Adding a constant offset (without clipping) must not change the
    // census image — the property the AutoVision pipeline relies on.
    SyntheticScene s(SceneConfig::standard(32, 24));
    Frame f = s.frame(0);
    Frame brighter = f;
    for (auto& p : brighter.pixels()) {
        p = static_cast<std::uint8_t>(std::min<int>(p + 10, 255));
    }
    bool clipped = false;
    for (auto p : f.pixels()) clipped |= (p > 245);
    if (!clipped) {
        EXPECT_EQ(census_transform(f), census_transform(brighter));
    }
}

TEST(Flow, MotionWordRoundTrip) {
    MotionVector v{12, 34, -3, 4, 77};
    const std::uint32_t w = encode_motion_word(v);
    const MotionVector d = decode_motion_word(w, 12, 34);
    EXPECT_EQ(d, v);
}

TEST(Flow, GridGeometry) {
    MatchConfig cfg;
    cfg.step = 4;
    cfg.margin = 8;
    EXPECT_EQ(grid_points(64, cfg), 12u);
    EXPECT_EQ(grid_points(16, cfg), 0u) << "frame too small for margins";
    EXPECT_EQ(grid_points(17, cfg), 1u);
}

TEST(Flow, ZeroMotionOnStaticScene) {
    SyntheticScene s(SceneConfig::standard(64, 48));
    const Frame c0 = census_transform(s.frame(0));
    MatchConfig cfg;
    const MotionField f = match_census(c0, c0, cfg);
    for (const MotionVector& v : f.vectors) {
        EXPECT_EQ(v.dx, 0);
        EXPECT_EQ(v.dy, 0);
        EXPECT_EQ(v.cost, 0u);
    }
}

TEST(Flow, RecoversKnownTranslation) {
    // A scene with one textured object moving (+2, 0); grid points well
    // inside the object must report exactly that displacement.
    SceneConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.seed = 3;
    cfg.objects.push_back(MovingObject{16, 16, 24, 20, 2, 0, 220});
    SyntheticScene s(cfg);
    const Frame c0 = census_transform(s.frame(0));
    const Frame c1 = census_transform(s.frame(1));

    MatchConfig mc;
    mc.step = 2;
    mc.margin = 8;
    mc.search = 4;
    const MotionField f = match_census(c0, c1, mc);

    unsigned inside = 0;
    unsigned correct = 0;
    for (const MotionVector& v : f.vectors) {
        // Strict interior of the object at t=1 (object now at 18..42 x).
        if (v.x >= 24 && v.x < 36 && v.y >= 22 && v.y < 32) {
            ++inside;
            if (v.dx == 2 && v.dy == 0) ++correct;
        }
    }
    ASSERT_GT(inside, 10u);
    EXPECT_GE(correct * 10, inside * 9)
        << "at least 90% of interior points recover the ground truth";
}

TEST(Flow, ThreadCountDoesNotChangeResult) {
    SyntheticScene s(SceneConfig::standard(96, 64, 9));
    const Frame c0 = census_transform(s.frame(0));
    const Frame c1 = census_transform(s.frame(1));
    MatchConfig mc;
    mc.step = 3;
    const MotionField f1 = match_census(c0, c1, mc, 1);
    const MotionField f4 = match_census(c0, c1, mc, 4);
    const MotionField f9 = match_census(c0, c1, mc, 9);
    EXPECT_EQ(f1.vectors, f4.vectors);
    EXPECT_EQ(f1.vectors, f9.vectors);
}

TEST(Flow, CostIsHammingDistance) {
    Frame a(16, 16, 0);
    Frame b(16, 16, 0);
    // Patch radius 1 at (8,8): 9 signatures, flip 3 bits in one of them.
    b.at(8, 8) = 0b0000'0111;
    MatchConfig mc;
    EXPECT_EQ(match_cost(a, b, 8, 8, 0, 0, mc), 3u);
    b.at(7, 7) = 0b1000'0000;
    EXPECT_EQ(match_cost(a, b, 8, 8, 0, 0, mc), 4u);
}

TEST(Flow, TieBreakIsFirstInScanOrder) {
    // All-zero census images: every displacement has cost 0; the scan
    // starts at (-search, -search), so that is the deterministic winner...
    // except (0,0) is scanned in order too. Verify the documented rule:
    // first candidate with strictly smaller cost wins; initial best is
    // (0,0) with infinite cost, so (-search,-search) wins the first strict
    // improvement.
    Frame z(32, 32, 0);
    MatchConfig mc;
    mc.search = 2;
    const MotionField f = match_census(z, z, mc);
    for (const MotionVector& v : f.vectors) {
        EXPECT_EQ(v.dx, -2);
        EXPECT_EQ(v.dy, -2);
    }
}

TEST(Flow, OverlayDrawsVectors) {
    Frame base(32, 32, 50);
    MotionField field;
    field.cfg = MatchConfig{};
    field.frame_w = 32;
    field.frame_h = 32;
    field.vectors.push_back(MotionVector{16, 16, 3, 0, 1});
    Frame r;
    Frame g;
    Frame b;
    make_overlay(base, field, 1, r, g, b);
    EXPECT_EQ(r.at(16, 16), 255) << "vector trace in red";
    EXPECT_EQ(g.at(16, 16), 32);
    EXPECT_EQ(r.at(2, 2), 50) << "background untouched";
}

// Property sweep: for any object velocity within the search window, the
// matcher recovers it at interior grid points.
class FlowVelocity : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FlowVelocity, RecoversVelocity) {
    const auto [vx, vy] = GetParam();
    SceneConfig cfg;
    cfg.width = 72;
    cfg.height = 60;
    cfg.seed = 11;
    cfg.objects.push_back(MovingObject{24, 20, 24, 20, vx, vy, 230});
    SyntheticScene s(cfg);
    const Frame c0 = census_transform(s.frame(0));
    const Frame c1 = census_transform(s.frame(1));
    MatchConfig mc;
    mc.step = 2;
    mc.margin = 8;
    mc.search = 4;
    const MotionField f = match_census(c0, c1, mc);

    unsigned inside = 0;
    unsigned correct = 0;
    for (const MotionVector& v : f.vectors) {
        if (v.x >= 32 && v.x < 40 && v.y >= 26 && v.y < 34) {
            ++inside;
            if (v.dx == vx && v.dy == vy) ++correct;
        }
    }
    ASSERT_GT(inside, 4u);
    EXPECT_GE(correct * 10, inside * 8)
        << "velocity (" << vx << "," << vy << ") poorly recovered";
}

INSTANTIATE_TEST_SUITE_P(
    Velocities, FlowVelocity,
    ::testing::Values(std::pair{1, 0}, std::pair{-2, 0}, std::pair{0, 3},
                      std::pair{2, 2}, std::pair{-3, 1}, std::pair{4, -4},
                      std::pair{0, 0}));

}  // namespace
}  // namespace autovision::video
