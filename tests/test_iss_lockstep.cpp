// Lockstep differential tests for the ISS execution engines.
//
// The decode-cache engine (kCached) claims to be cycle- and state-identical
// to the retained reference interpreter (kInterp). These tests pin that
// claim the hard way: two complete CPU testbenches execute the same
// assembler-generated program side by side and the whole architectural
// register file (ArchRegs: GPRs, PC, MSR, CR0, LR, CTR, XER, SRR0/1, halt)
// is diffed after every clock cycle.
//
// The program generator draws from a single seed and deliberately includes
// the three hazards the decode cache must survive:
//   * self-modifying code — stores of valid instruction words into patch
//     slots the control flow re-executes (page write-generation must
//     invalidate the cached block);
//   * mid-block external interrupts — IRQ pulses at arbitrary, off-phase
//     times landing in the middle of cached basic blocks (interrupts are
//     sampled between instructions in both engines);
//   * syscalls — `sc` traps (putchar/clock/yield and the final exit) whose
//     SRR clobber and host-IO side effects must agree byte-for-byte.
//
// A second layer runs the cached engine with sleep windows enabled
// (clock-gated batch execution) against the per-cycle interpreter: the
// comparison is coarser (arch state lags while a window is open, so the
// diff happens at quantum boundaries after wake_now()) but must still agree
// exactly, including interrupt arrival cycles.
//
// Across the randomized suites the two engines retire well over 100k
// instructions in lockstep (8 per-cycle seeds x ~10k + 4 sleep seeds x
// ~14k), asserted per test via the retired-instruction floors below.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bus/dcr.hpp"
#include "bus/intc.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "isa/assembler.hpp"
#include "isa/cpu.hpp"
#include "kernel/kernel.hpp"

namespace autovision::isa {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;
using rtlsim::Signal;

constexpr rtlsim::Time kClk = 10 * NS;
using Engine = PpcCpu::Config::Engine;

/// Full CPU testbench with an external interrupt line into the INTC.
struct LockTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Signal<Logic> line{sch, "line", Logic::L0};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 5000}};
    DcrChain dcr{sch, "dcr", clk.out, rst.out};
    Intc intc{sch, "intc", clk.out, rst.out, 0x40};
    PpcCpu cpu;

    LockTb(const Program& prog, Engine eng, bool sleep)
        : cpu(sch, "cpu", clk.out, rst.out, plb.master(0), dcr, mem, intc.irq,
              PpcCpu::Config{prog.entry(), 5, eng}) {
        plb.attach_slave(mem);
        dcr.attach(intc);
        intc.attach(line);
        mem.load_words(prog.origin, prog.words);
        if (sleep) {
            cpu.enable_sleep(clk);
            // The INTC itself is clock-gated during a sleep window, so the
            // raw line edge must end the window; the interrupt then flows
            // through the (resumed) INTC on the same cycle it would have in
            // a never-sleeping run.
            cpu.add_wake_signal(line);
        }
    }

    /// One-cycle IRQ pulse at an absolute (possibly off-phase) time.
    void pulse_at(rtlsim::Time t) {
        sch.schedule_at(t, [this] { line.write(Logic::L1); });
        sch.schedule_at(t + kClk, [this] { line.write(Logic::L0); });
    }
};

/// Assemble a single instruction to get its raw encoding (the SMC stores
/// write these words into the patch slots).
std::uint32_t encode(const std::string& insn) {
    return assemble(".org 0x100\n_start: " + insn + "\n").words.at(0);
}

// ------------------------------------------------------- program generator

struct GenConfig {
    unsigned body_items = 120;   ///< random items per loop pass
    unsigned outer = 16;         ///< loop passes
    unsigned mem_weight = 3;     ///< load/store weight (0 = bus-free body)
    unsigned smc_weight = 2;     ///< self-modifying-store weight
    unsigned syscall_weight = 1;
};

/// Random but always-valid program: an `outer`-pass loop whose body is a
/// seeded mix of register arithmetic, bounded loads/stores into a private
/// data area, short forward branches (bi 0..3 via CR0), CTR micro-loops,
/// syscalls, and stores of valid instruction encodings into four `nop`
/// patch slots that execute on every pass. Ends with exit(0) through the
/// syscall layer. Registers: r2/r28 bases, r20/r23 ISR-owned, r25 loop
/// counter, r26 SMC scratch, r3-r12 stream scratch.
std::string random_program(std::uint64_t seed, const GenConfig& g) {
    std::mt19937_64 rng(seed);
    const auto rnd = [&rng](unsigned lo, unsigned hi) {
        return lo + static_cast<unsigned>(rng() % (hi - lo + 1));
    };
    const auto reg = [&] { return rnd(3, 12); };

    static const std::uint32_t kPatchMenu[] = {
        encode("addi r6, r6, 5"),  encode("xor r7, r7, r7"),
        encode("neg r8, r8"),      encode("addi r7, r7, -3"),
        encode("ori r6, r6, 0x10"), encode("nop"),
    };

    std::ostringstream s;
    s << ".equ INTC_IER, 0x41\n.equ INTC_IAR, 0x42\n"
         ".org 0x500\n"
         "isr:  addi r20, r20, 1\n"
         "      li r23, 0xFF\n"
         "      mtdcr INTC_IAR, r23\n"
         "      rfi\n"
         ".org 0x1000\n"
         "_start:\n"
         "  li r20, 0\n"
         "  li r3, 0xFF\n"
         "  mtdcr INTC_IER, r3\n"
         "  wrteei 1\n"
         "  lis r2, hi(data)\n  ori r2, r2, lo(data)\n"
         "  lis r28, hi(patch)\n  ori r28, r28, lo(patch)\n";
    for (unsigned i = 3; i <= 12; ++i) {
        s << "  li r" << i << ", " << rnd(0, 255) << "\n";
    }
    s << "  li r25, " << g.outer << "\nouter:\n";

    static const char* kBranches[] = {"beq", "bne", "blt", "bgt", "ble",
                                      "bge"};
    unsigned label = 0;
    const auto emit_arith = [&] {
        switch (rnd(0, 11)) {
            case 0: s << "  add r" << reg() << ", r" << reg() << ", r"
                      << reg() << "\n"; break;
            case 1: s << "  subf r" << reg() << ", r" << reg() << ", r"
                      << reg() << "\n"; break;
            case 2: s << "  xor r" << reg() << ", r" << reg() << ", r"
                      << reg() << "\n"; break;
            case 3: s << "  or r" << reg() << ", r" << reg() << ", r"
                      << reg() << "\n"; break;
            case 4: s << "  and r" << reg() << ", r" << reg() << ", r"
                      << reg() << "\n"; break;
            case 5: s << "  addi r" << reg() << ", r" << reg() << ", "
                      << static_cast<int>(rnd(0, 400)) - 200 << "\n"; break;
            case 6: s << "  mulli r" << reg() << ", r" << reg() << ", "
                      << rnd(1, 9) << "\n"; break;
            case 7: s << "  slwi r" << reg() << ", r" << reg() << ", "
                      << rnd(0, 31) << "\n"; break;
            case 8: s << "  srwi r" << reg() << ", r" << reg() << ", "
                      << rnd(0, 31) << "\n"; break;
            case 9: s << "  neg r" << reg() << ", r" << reg() << "\n"; break;
            case 10: s << "  andi. r" << reg() << ", r" << reg() << ", "
                       << rnd(0, 0xFFFF) << "\n"; break;
            default: s << "  add. r" << reg() << ", r" << reg() << ", r"
                       << reg() << "\n"; break;
        }
    };

    for (unsigned i = 0; i < g.body_items; ++i) {
        const unsigned pick =
            rnd(0, 9 + g.mem_weight + g.smc_weight + g.syscall_weight);
        if (pick < 8) {
            emit_arith();
        } else if (pick == 8) {
            // Short forward conditional branch on CR0 (bi 0..3).
            s << "  cmpwi r" << reg() << ", " << rnd(0, 64) << "\n"
              << "  " << kBranches[rnd(0, 5)] << " skip" << label << "\n";
            const unsigned n = rnd(1, 3);
            for (unsigned k = 0; k < n; ++k) emit_arith();
            s << "skip" << label << ":\n";
            ++label;
        } else if (pick == 9) {
            // Bounded CTR micro-loop (bdnz).
            s << "  li r9, " << rnd(1, 5) << "\n  mtctr r9\n"
              << "ctl" << label << ":\n  addi r7, r7, 1\n"
              << "  bdnz ctl" << label << "\n";
            ++label;
        } else if (pick < 10 + g.mem_weight) {
            switch (rnd(0, 3)) {
                case 0: s << "  lwz r" << reg() << ", " << 4 * rnd(0, 200)
                          << "(r2)\n"; break;
                case 1: s << "  stw r" << reg() << ", " << 4 * rnd(0, 200)
                          << "(r2)\n"; break;
                case 2: s << "  lbz r" << reg() << ", " << rnd(0, 800)
                          << "(r2)\n"; break;
                default: s << "  stb r" << reg() << ", " << rnd(0, 800)
                           << "(r2)\n"; break;
            }
        } else if (pick < 10 + g.mem_weight + g.smc_weight) {
            // Self-modifying store: a valid encoding into a patch slot the
            // loop executes every pass.
            const std::uint32_t enc = kPatchMenu[rnd(0, 5)];
            s << "  lis r26, hi(" << enc << ")\n"
              << "  ori r26, r26, lo(" << enc << ")\n"
              << "  stw r26, " << 4 * rnd(0, 3) << "(r28)\n";
        } else {
            switch (rnd(0, 2)) {
                case 0: s << "  li r0, 2\n  sc\n"; break;  // clock -> r3
                case 1: s << "  li r0, 3\n  sc\n"; break;  // yield
                default: s << "  li r0, 1\n  li r3, " << rnd(33, 126)
                           << "\n  sc\n"; break;           // putchar
            }
        }
    }

    s << "patch:\n  nop\n  nop\n  nop\n  nop\n"
         "  addi r25, r25, -1\n"
         "  cmpwi r25, 0\n"
         "  bne outer\n"
         "  li r0, 0\n  li r3, 0\n  sc\n"  // exit(0)
         "done: b done\n"
         ".org 0x8000\n"
         "data: .space 1024\n";
    return s.str();
}

/// Seeded off-phase IRQ pulse schedule over the run's expected span.
std::vector<rtlsim::Time> random_pulses(std::uint64_t seed, unsigned count,
                                        rtlsim::Time span) {
    std::mt19937_64 rng(seed ^ 0x9E3779B97F4A7C15ull);
    std::vector<rtlsim::Time> out;
    out.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        const rtlsim::Time cyc = 50 + rng() % (span / kClk);
        out.push_back(cyc * kClk + 3 * NS);  // off the posedge
    }
    return out;
}

// ----------------------------------------------------------- lockstep core

/// Run interpreter vs cached side by side, diffing the full architectural
/// state every `quantum`. Returns retired instructions (asserted equal).
std::uint64_t run_lockstep(const Program& p,
                           const std::vector<rtlsim::Time>& pulses,
                           bool sleep_b, rtlsim::Time max_time,
                           rtlsim::Time quantum = kClk) {
    LockTb a(p, Engine::kInterp, false);
    LockTb b(p, Engine::kCached, sleep_b);
    for (const rtlsim::Time t : pulses) {
        a.pulse_at(t);
        b.pulse_at(t);
    }
    while (a.sch.now() < max_time) {
        a.sch.run_until(a.sch.now() + quantum);
        b.sch.run_until(b.sch.now() + quantum);
        b.cpu.wake_now();  // no-op unless a sleep window is open
        EXPECT_EQ(a.sch.now(), b.sch.now());
        const ArchRegs& ra = a.cpu.arch_state();
        const ArchRegs& rb = b.cpu.arch_state();
        if (!(ra == rb)) {
            ADD_FAILURE() << "arch state diverged at t=" << a.sch.now()
                          << " interp pc=0x" << std::hex << ra.pc
                          << " cached pc=0x" << rb.pc << std::dec
                          << " (interp icount=" << a.cpu.instructions()
                          << ", cached icount=" << b.cpu.instructions()
                          << ")";
            return a.cpu.instructions();
        }
        if (a.cpu.host_io().exited() && b.cpu.host_io().exited()) break;
    }
    EXPECT_TRUE(a.cpu.host_io().exited())
        << "interpreter run never reached exit(0)";
    EXPECT_TRUE(b.cpu.host_io().exited())
        << "cached run never reached exit(0)";
    EXPECT_EQ(a.cpu.instructions(), b.cpu.instructions());
    EXPECT_EQ(a.cpu.interrupts_taken(), b.cpu.interrupts_taken());
    EXPECT_EQ(a.cpu.host_io().out(), b.cpu.host_io().out());
    EXPECT_EQ(a.cpu.host_io().total_calls(), b.cpu.host_io().total_calls());
    EXPECT_EQ(a.cpu.host_io().exit_code(), b.cpu.host_io().exit_code());
    return a.cpu.instructions();
}

// ------------------------------------------------------------------- tests

TEST(IsaLockstep, RandomizedStreamsMatchPerCycle) {
    // Layer 1: per-cycle ArchRegs diff over eight seeded random programs
    // with self-modifying stores, mid-block IRQ pulses and syscalls mixed
    // in. Floor: >= 60k retired instructions across the seeds.
    std::uint64_t total = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        GenConfig g;
        g.body_items = 120;
        g.outer = 36;
        const Program p = assemble(random_program(seed, g));
        const auto pulses = random_pulses(seed, 12, 40000 * kClk);
        total += run_lockstep(p, pulses, /*sleep_b=*/false, 200000 * kClk);
        if (::testing::Test::HasFailure()) break;  // first divergence only
    }
    EXPECT_GE(total, 60000u) << "randomized suite must retire >= 60k insns";
}

TEST(IsaLockstep, SleepWindowsMatchInterpreter) {
    // Layer 2: cached engine with clock-gated sleep windows vs the
    // per-cycle interpreter. The body is bus-free (mem_weight 0) so long
    // windows actually open; IRQ pulses land inside them and must be taken
    // on the same cycle as the never-sleeping reference. Arch state is
    // compared at quantum boundaries after wake_now(). Floor: >= 48k
    // retired instructions across the seeds.
    std::uint64_t total = 0;
    for (std::uint64_t seed = 21; seed <= 24; ++seed) {
        GenConfig g;
        g.body_items = 100;
        g.outer = 60;
        g.mem_weight = 0;
        g.smc_weight = 1;  // each store still wakes the CPU (store-to-code)
        const Program p = assemble(random_program(seed, g));
        const auto pulses = random_pulses(seed, 8, 60000 * kClk);
        total += run_lockstep(p, pulses, /*sleep_b=*/true, 400000 * kClk,
                              /*quantum=*/512 * kClk);
        if (::testing::Test::HasFailure()) break;
    }
    EXPECT_GE(total, 48000u) << "sleep suite must retire >= 48k insns";
}

TEST(IsaLockstep, SleepActuallyOpensWindows) {
    // Guard for the layer-2 suite: on a bus-free body the cached+sleep
    // engine must batch a significant share of its instructions inside
    // sleep windows, otherwise the suite above degenerates into layer 1.
    GenConfig g;
    g.body_items = 100;
    g.outer = 60;
    g.mem_weight = 0;
    g.smc_weight = 0;
    g.syscall_weight = 0;
    const Program p = assemble(random_program(33, g));
    LockTb tb(p, Engine::kCached, true);
    while (!tb.cpu.host_io().exited() && tb.sch.now() < 400000 * kClk) {
        tb.sch.run_until(tb.sch.now() + 4096 * kClk);
        tb.cpu.wake_now();
    }
    ASSERT_TRUE(tb.cpu.host_io().exited());
    EXPECT_GT(tb.cpu.sleep_windows(), 0u);
    EXPECT_GT(tb.cpu.sleep_insns(), tb.cpu.instructions() / 4)
        << "expected a significant batched share on a bus-free body";
}

TEST(IsaLockstep, SelfModifyingStoreInvalidatesTheCachedBlock) {
    // Deterministic SMC kernel: pass 1 executes the original patch slot
    // (addi r6, r6, 1), stores the encoding of `addi r6, r6, 100` over it,
    // and every later pass must execute the patched word. Both engines run
    // in lockstep; the cached engine must additionally report stale
    // redecodes (the write-generation invalidation actually fired).
    std::ostringstream s;
    s << ".org 0x1000\n"
         "_start:\n"
         "  li r6, 0\n"
         "  li r25, 5\n"
         "  lis r28, hi(patch)\n  ori r28, r28, lo(patch)\n"
         "  lis r26, hi(" << encode("addi r6, r6, 100") << ")\n"
         "  ori r26, r26, lo(" << encode("addi r6, r6, 100") << ")\n"
         "outer:\n"
         "patch:\n"
         "  addi r6, r6, 1\n"
         "  stw r26, 0(r28)\n"
         "  addi r25, r25, -1\n"
         "  cmpwi r25, 0\n"
         "  bne outer\n"
         "  li r0, 0\n  li r3, 0\n  sc\n"
         "done: b done\n";
    const Program p = assemble(s.str());

    LockTb a(p, Engine::kInterp, false);
    LockTb b(p, Engine::kCached, false);
    while (!a.cpu.host_io().exited() && a.sch.now() < 20000 * kClk) {
        a.sch.run_until(a.sch.now() + kClk);
        b.sch.run_until(b.sch.now() + kClk);
        ASSERT_EQ(a.cpu.arch_state(), b.cpu.arch_state())
            << "diverged at t=" << a.sch.now();
    }
    ASSERT_TRUE(a.cpu.host_io().exited());
    // Pass 1 adds 1, passes 2..5 add the patched 100.
    EXPECT_EQ(a.cpu.gpr(6), 401u);
    EXPECT_EQ(b.cpu.gpr(6), 401u);
    EXPECT_GT(b.cpu.decode_cache().stale_redecodes(), 0u)
        << "store-to-code must invalidate the cached block";
}

TEST(IsaLockstep, MidBlockIrqsAreTakenOnTheSameCycle) {
    // A long straight-line block (cached as one basic block) hammered with
    // IRQ pulses at off-phase times: both engines must enter and leave the
    // ISR on exactly the same cycles (per-cycle ArchRegs diff covers
    // SRR0/SRR1/MSR), and take the same interrupt count.
    std::ostringstream body;
    body << ".equ INTC_IER, 0x41\n.equ INTC_IAR, 0x42\n"
            ".org 0x500\n"
            "isr:  addi r20, r20, 1\n"
            "      li r23, 0xFF\n"
            "      mtdcr INTC_IAR, r23\n"
            "      rfi\n"
            ".org 0x1000\n"
            "_start:\n"
            "  li r20, 0\n"
            "  li r3, 0xFF\n  mtdcr INTC_IER, r3\n  wrteei 1\n"
            "  li r5, 0\n  li r6, 1\n"
            "  li r25, 200\n"
            "outer:\n";
    for (unsigned i = 0; i < 48; ++i) {
        body << "  add r5, r5, r6\n  xor r7, r5, r6\n";
    }
    body << "  addi r25, r25, -1\n  cmpwi r25, 0\n  bne outer\n"
            "  li r0, 0\n  li r3, 0\n  sc\n"
            "done: b done\n";
    const Program p = assemble(body.str());
    std::vector<rtlsim::Time> pulses;
    for (unsigned i = 0; i < 16; ++i) {
        pulses.push_back((300 + 731 * i) * kClk + 3 * NS);
    }
    const std::uint64_t insns =
        run_lockstep(p, pulses, /*sleep_b=*/false, 120000 * kClk);
    EXPECT_GT(insns, 15000u);

    // Every pulse must actually have been serviced (r20 == 16) — rerun one
    // engine standalone to read the ISR counter.
    LockTb solo(p, Engine::kCached, false);
    for (const rtlsim::Time t : pulses) solo.pulse_at(t);
    while (!solo.cpu.host_io().exited() && solo.sch.now() < 120000 * kClk) {
        solo.sch.run_until(solo.sch.now() + 1024 * kClk);
    }
    ASSERT_TRUE(solo.cpu.host_io().exited());
    EXPECT_EQ(solo.cpu.gpr(20), pulses.size());
    EXPECT_EQ(solo.cpu.interrupts_taken(), pulses.size());
}

TEST(IsaLockstep, SyscallStreamsAgreeByteForByte) {
    // Syscall-dense program: the console output, per-service counters and
    // exit code must agree between the engines (the diff in run_lockstep
    // asserts them); additionally pin the console contents here.
    GenConfig g;
    g.body_items = 60;
    g.outer = 8;
    g.syscall_weight = 6;
    const Program p = assemble(random_program(77, g));
    LockTb solo(p, Engine::kCached, false);
    while (!solo.cpu.host_io().exited() && solo.sch.now() < 120000 * kClk) {
        solo.sch.run_until(solo.sch.now() + 1024 * kClk);
    }
    ASSERT_TRUE(solo.cpu.host_io().exited());
    const std::string expected = solo.cpu.host_io().out();
    EXPECT_FALSE(expected.empty());

    LockTb ref(p, Engine::kInterp, false);
    while (!ref.cpu.host_io().exited() && ref.sch.now() < 120000 * kClk) {
        ref.sch.run_until(ref.sch.now() + 1024 * kClk);
    }
    ASSERT_TRUE(ref.cpu.host_io().exited());
    EXPECT_EQ(ref.cpu.host_io().out(), expected);
    run_lockstep(p, {}, /*sleep_b=*/false, 120000 * kClk);
}

}  // namespace
}  // namespace autovision::isa
