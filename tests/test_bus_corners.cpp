// PLB corner cases: mid-burst abandonment, grant starvation, X write data,
// and parked grants on uncontended buses.
#include <gtest/gtest.h>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "kernel/kernel.hpp"

namespace autovision {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;

constexpr rtlsim::Time kClk = 10 * NS;

struct CornerTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb;

    explicit CornerTb(unsigned masters, unsigned timeout = 200)
        : plb(sch, "plb", clk.out, rst.out,
              Plb::Config{masters, 16, timeout}) {
        plb.attach_slave(mem);
    }
    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }
};

// A rogue master that drops its request mid-burst while another master is
// waiting: the arbiter must abort the transaction and report it.
TEST(PlbCorners, MidBurstReleaseWithContentionAborts) {
    CornerTb tb(2);
    // Master 0 manually requests a 16-beat read...
    auto& m0 = tb.plb.master(0);
    auto& m1 = tb.plb.master(1);
    tb.sch.schedule_at(5 * kClk, [&] {
        m0.addr.write(rtlsim::Word{0x1000});
        m0.nbeats.write(rtlsim::LVec<16>{16});
        m0.rnw.write(Logic::L1);
        m0.req.write(Logic::L1);
    });
    // ...then (buggy IP behaviour) drops req after a few beats while
    // master 1 is asking for the bus.
    tb.sch.schedule_at(10 * kClk, [&] {
        m1.addr.write(rtlsim::Word{0x2000});
        m1.nbeats.write(rtlsim::LVec<16>{1});
        m1.rnw.write(Logic::L1);
        m1.req.write(Logic::L1);
    });
    tb.sch.schedule_at(12 * kClk, [&] { m0.req.write(Logic::L0); });
    tb.run_cycles(60);

    EXPECT_EQ(tb.plb.counters().aborts, 1u);
    bool found = false;
    for (const auto& d : tb.sch.diagnostics()) {
        if (d.message.find("released req mid-burst") != std::string::npos) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    // Master 1 must still get served afterwards.
    bool granted = false;
    rtlsim::Process p(tb.sch, "mon", [&] { granted = true; });
    m1.grant.add_listener(p, rtlsim::Edge::Pos);
    tb.run_cycles(40);
    EXPECT_TRUE(granted);
}

// The same release without contention parks the grant and the burst
// completes (point-to-point tolerance; the original AutoVision wiring).
TEST(PlbCorners, MidBurstReleaseWithoutContentionContinues) {
    CornerTb tb(2);
    auto& m0 = tb.plb.master(0);
    tb.sch.schedule_at(5 * kClk, [&] {
        m0.addr.write(rtlsim::Word{0x1000});
        m0.nbeats.write(rtlsim::LVec<16>{16});
        m0.rnw.write(Logic::L1);
        m0.req.write(Logic::L1);
    });
    tb.sch.schedule_at(12 * kClk, [&] { m0.req.write(Logic::L0); });
    tb.run_cycles(80);
    EXPECT_EQ(tb.plb.counters().read_beats, 16u)
        << "burst ran to completion";
    EXPECT_EQ(tb.plb.counters().aborts, 0u);
}

TEST(PlbCorners, GrantStarvationIsReported) {
    // One master requests an address nobody claims... no — decode errors
    // terminate. Starvation needs a request that never wins arbitration:
    // master 1 asserts req with X on its address, so the arbiter skips it
    // forever while reporting the X once; the starvation counter fires too.
    CornerTb tb(1, /*timeout=*/100);
    auto& m0 = tb.plb.master(0);
    tb.sch.schedule_at(5 * kClk, [&] {
        m0.addr.write(rtlsim::Word::all_x());
        m0.nbeats.write(rtlsim::LVec<16>{1});
        m0.rnw.write(Logic::L1);
        m0.req.write(Logic::L1);
    });
    tb.run_cycles(300);
    bool starved = false;
    for (const auto& d : tb.sch.diagnostics()) {
        if (d.message.find("starvation") != std::string::npos) starved = true;
    }
    EXPECT_TRUE(starved);
}

TEST(PlbCorners, XWriteDataIsReported) {
    CornerTb tb(1);
    auto& m0 = tb.plb.master(0);
    tb.sch.schedule_at(5 * kClk, [&] {
        m0.addr.write(rtlsim::Word{0x3000});
        m0.nbeats.write(rtlsim::LVec<16>{1});
        m0.rnw.write(Logic::L0);
        m0.wdata.write(rtlsim::Word::all_x());
        m0.req.write(Logic::L1);
    });
    tb.run_cycles(40);
    bool found = false;
    for (const auto& d : tb.sch.diagnostics()) {
        if (d.message.find("X in write data") != std::string::npos) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    // The X propagates into memory (4-state storage), observable later.
    EXPECT_TRUE(tb.mem.peek(0x3000).has_unknown());
}

TEST(PlbCorners, RoundRobinIsFairUnderSustainedLoad) {
    CornerTb tb(3);
    struct Driver : rtlsim::Module {
        DmaMaster dma;
        std::uint64_t transfers = 0;
        Driver(CornerTb& tb2, unsigned port, std::uint32_t addr)
            : Module(tb2.sch, "drv" + std::to_string(port)),
              dma(tb2.plb.master(port), 4) {
            issue(addr);
            sync_proc("step", [this] { dma.step(); },
                      {rtlsim::posedge(tb2.clk.out)});
        }
        void issue(std::uint32_t addr) {
            dma.start_read(addr, 4, [](std::uint32_t, rtlsim::Word) {},
                           [this, addr] {
                               ++transfers;
                               issue(addr);
                           });
        }
    };
    Driver d0(tb, 0, 0x1000);
    Driver d1(tb, 1, 0x2000);
    Driver d2(tb, 2, 0x3000);
    tb.run_cycles(3000);
    // Sustained contention: nobody gets more than ~1.5x anyone else.
    const auto lo = std::min({d0.transfers, d1.transfers, d2.transfers});
    const auto hi = std::max({d0.transfers, d1.transfers, d2.transfers});
    EXPECT_GT(lo, 10u);
    EXPECT_LE(hi, lo + lo / 2 + 1)
        << d0.transfers << "/" << d1.transfers << "/" << d2.transfers;
    EXPECT_EQ(tb.plb.counters().aborts, 0u);
}

TEST(PlbCorners, ResetMidBurstRecovers) {
    CornerTb tb(1);
    auto& m0 = tb.plb.master(0);
    tb.sch.schedule_at(5 * kClk, [&] {
        m0.addr.write(rtlsim::Word{0x1000});
        m0.nbeats.write(rtlsim::LVec<16>{16});
        m0.rnw.write(Logic::L1);
        m0.req.write(Logic::L1);
    });
    // Pulse reset in the middle of the burst.
    tb.sch.schedule_at(12 * kClk, [&] { tb.rst.out.write(Logic::L1); });
    tb.sch.schedule_at(15 * kClk, [&] {
        tb.rst.out.write(Logic::L0);
        m0.req.write(Logic::L0);
    });
    tb.run_cycles(40);

    // The bus must arbitrate fresh transactions cleanly afterwards; the
    // manual master deasserts req as soon as the burst completes.
    int done_seen = 0;
    rtlsim::Process p(tb.sch, "mon", [&] {
        ++done_seen;
        m0.req.write(Logic::L0);
    });
    m0.done.add_listener(p, rtlsim::Edge::Pos);
    const auto beats_before = tb.plb.counters().read_beats;
    tb.sch.schedule_in(2 * kClk, [&] {
        m0.addr.write(rtlsim::Word{0x2000});
        m0.nbeats.write(rtlsim::LVec<16>{2});
        m0.rnw.write(Logic::L1);
        m0.req.write(Logic::L1);
    });
    tb.run_cycles(40);
    EXPECT_EQ(done_seen, 1);
    EXPECT_EQ(tb.plb.counters().read_beats - beats_before, 2u);
}

}  // namespace
}  // namespace autovision
