// Edge-case and failure-injection tests across modules: diagnostic
// bounding, DCR reset mid-transaction, degenerate engine geometries, and
// command handling in unusual states.
#include <gtest/gtest.h>

#include "bus/dcr.hpp"
#include "bus/intc.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "engines/census_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/rr_boundary.hpp"
#include "video/census.hpp"
#include "video/synth.hpp"

namespace autovision {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;
using rtlsim::Word;

constexpr rtlsim::Time kClk = 10 * NS;

TEST(Diagnostics, StorageIsBoundedAndDropsAreCounted) {
    Scheduler sch;
    for (std::size_t i = 0; i < Scheduler::kMaxDiags + 100; ++i) {
        sch.report("spammer", "msg " + std::to_string(i));
    }
    EXPECT_EQ(sch.diagnostics().size(), Scheduler::kMaxDiags);
    EXPECT_EQ(sch.dropped_diagnostics(), 100u);
}

TEST(DcrChain, ResetMidTransactionAborts) {
    Scheduler sch;
    Clock clk(sch, "clk", kClk);
    ResetGen rst(sch, "rst", 3 * kClk);
    DcrChain chain(sch, "dcr", clk.out, rst.out);
    Intc intc(sch, "intc", clk.out, rst.out, 0x40);
    chain.attach(intc);

    bool completed = false;
    sch.schedule_at(10 * kClk, [&] {
        chain.start_write(0x41, Word{0xFF}, [&] { completed = true; });
    });
    // Reset strikes one cycle into the ring traversal.
    sch.schedule_at(11 * kClk, [&] { rst.out.write(Logic::L1); });
    sch.schedule_at(13 * kClk, [&] { rst.out.write(Logic::L0); });
    sch.run_until(30 * kClk);
    EXPECT_FALSE(completed) << "transaction vanished with the reset";
    EXPECT_FALSE(chain.busy());
    // The chain accepts fresh transactions afterwards.
    Word got{0};
    chain.start_read(0x41, [&](Word w) { got = w; });
    sch.run_until(50 * kClk);
    EXPECT_TRUE(got.is_fully_defined());
}

struct MiniTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 100000}};
    rtlsim::Signal<Logic> done_line{sch, "done", Logic::L0};
    EngineRegs regs{sch, "cie_regs", clk.out, 0x60};
    CensusEngine cie{sch, "cie", clk.out, rst.out, regs};
    RrBoundary rr{sch, "rr", plb.master(0), done_line};

    MiniTb() {
        plb.attach_slave(mem);
        rr.add_module(cie);
        rr.select(0);
    }
    void run_cycles(unsigned n) { sch.run_until(sch.now() + n * kClk); }
    void program(unsigned w, unsigned h) {
        regs.dcr_write(0x62, Word{0x10000});
        regs.dcr_write(0x63, Word{0x20000});
        regs.dcr_write(0x65, Word{(w << 16) | h});
        run_cycles(5);
    }
    bool run_job(unsigned budget) {
        regs.dcr_write(0x60, Word{1});
        for (unsigned i = 0; i < budget / 64; ++i) {
            run_cycles(64);
            if (regs.done()) return true;
        }
        return regs.done();
    }
};

TEST(EngineEdge, SingleRowFrame) {
    MiniTb tb;
    video::Frame in(8, 1);
    for (unsigned x = 0; x < 8; ++x) in.at(x, 0) = static_cast<std::uint8_t>(x * 30);
    tb.mem.load_bytes(0x10000, in.pixels());
    tb.program(8, 1);
    ASSERT_TRUE(tb.run_job(20000));
    const video::Frame want = video::census_transform(in);
    for (unsigned x = 0; x < 8; ++x) {
        EXPECT_EQ(tb.mem.peek_u8(0x20000 + x), want.at(x, 0)) << x;
    }
}

TEST(EngineEdge, MinimumWidthFrame) {
    MiniTb tb;
    video::Frame in(4, 6);
    for (unsigned y = 0; y < 6; ++y) {
        for (unsigned x = 0; x < 4; ++x) {
            in.at(x, y) = static_cast<std::uint8_t>(17 * x + 31 * y);
        }
    }
    tb.mem.load_bytes(0x10000, in.pixels());
    tb.program(4, 6);
    ASSERT_TRUE(tb.run_job(20000));
    const video::Frame want = video::census_transform(in);
    for (unsigned i = 0; i < want.size(); ++i) {
        EXPECT_EQ(tb.mem.peek_u8(0x20000 + i), want.pixels()[i]) << i;
    }
}

TEST(EngineEdge, StartWhileRunningIsIgnored) {
    MiniTb tb;
    video::SyntheticScene scene(video::SceneConfig::standard(32, 24));
    tb.mem.load_bytes(0x10000, scene.frame(0).pixels());
    tb.program(32, 24);
    tb.regs.dcr_write(0x60, Word{1});
    tb.run_cycles(100);
    ASSERT_TRUE(tb.cie.busy());
    tb.regs.dcr_write(0x60, Word{1});  // second start mid-job
    for (int i = 0; i < 400 && !tb.regs.done(); ++i) tb.run_cycles(64);
    ASSERT_TRUE(tb.regs.done());
    EXPECT_EQ(tb.cie.jobs_completed(), 1u) << "no double execution";
}

TEST(EngineEdge, BackToBackJobsProduceFreshResults) {
    MiniTb tb;
    video::SyntheticScene scene(video::SceneConfig::standard(16, 8, 4));
    const video::Frame f0 = scene.frame(0);
    const video::Frame f1 = scene.frame(3);
    tb.mem.load_bytes(0x10000, f0.pixels());
    tb.program(16, 8);
    ASSERT_TRUE(tb.run_job(20000));
    tb.regs.dcr_write(0x61, Word{2});  // clear done
    tb.mem.load_bytes(0x10000, f1.pixels());
    ASSERT_TRUE(tb.run_job(20000));
    const video::Frame want = video::census_transform(f1);
    for (unsigned i = 0; i < want.size(); ++i) {
        EXPECT_EQ(tb.mem.peek_u8(0x20000 + i), want.pixels()[i]) << i;
    }
    EXPECT_EQ(tb.cie.jobs_completed(), 2u);
}

TEST(EngineEdge, HardResetDuringJobRecovers) {
    MiniTb tb;
    video::SyntheticScene scene(video::SceneConfig::standard(32, 24));
    tb.mem.load_bytes(0x10000, scene.frame(0).pixels());
    tb.program(32, 24);
    tb.regs.dcr_write(0x60, Word{1});
    tb.run_cycles(100);
    ASSERT_TRUE(tb.cie.busy());
    // System-level reset pulse (e.g. watchdog-initiated).
    tb.sch.schedule_in(0, [&] { tb.rst.out.write(Logic::L1); });
    tb.sch.schedule_in(3 * kClk, [&] { tb.rst.out.write(Logic::L0); });
    tb.run_cycles(10);
    // Re-activate the region (reconfiguration after reset) and rerun.
    tb.rr.select(0);
    tb.program(32, 24);
    ASSERT_TRUE(tb.run_job(60000));
    const video::Frame want = video::census_transform(scene.frame(0));
    EXPECT_EQ(tb.mem.peek_u8(0x20000 + 50), want.pixels()[50]);
}

TEST(Intc, IsrTestHookSetsBits) {
    Scheduler sch;
    Clock clk(sch, "clk", kClk);
    ResetGen rst(sch, "rst", 3 * kClk);
    Intc intc(sch, "intc", clk.out, rst.out, 0x40);
    // Program after reset deasserts, or the status clears again.
    sch.schedule_at(5 * kClk, [&] {
        intc.dcr_write(0x41, Word{0x2});
        intc.dcr_write(0x40, Word{0x2});  // software-set status bit
    });
    sch.run_until(10 * kClk);
    EXPECT_EQ(intc.irq.read(), Logic::L1);
    intc.dcr_write(0x42, Word{0x2});
    sch.run_until(12 * kClk);
    EXPECT_EQ(intc.irq.read(), Logic::L0);
}

TEST(Memory, WordAlignmentOfSubWordOps) {
    Memory mem;
    mem.poke_u32(0x100, 0x11223344);
    // Writing each byte lane individually reconstructs the word.
    mem.poke_u8(0x100, 0xAA);
    mem.poke_u8(0x101, 0xBB);
    mem.poke_u8(0x102, 0xCC);
    mem.poke_u8(0x103, 0xDD);
    EXPECT_EQ(mem.peek_u32(0x100), 0xAABBCCDDu);
    // Halfword lanes.
    mem.poke_u16(0x100, 0x1122);
    mem.poke_u16(0x102, 0x3344);
    EXPECT_EQ(mem.peek_u32(0x100), 0x11223344u);
}

}  // namespace
}  // namespace autovision
