// Unit tests for the PowerPC-subset ISS: programs are assembled, loaded
// into the memory model and executed through the cycle-accurate PLB.
#include <gtest/gtest.h>

#include "bus/dcr.hpp"
#include "bus/intc.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "isa/assembler.hpp"
#include "isa/cpu.hpp"
#include "kernel/kernel.hpp"

namespace autovision::isa {
namespace {

using rtlsim::Clock;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;

constexpr rtlsim::Time kClk = 10 * NS;

/// Full CPU testbench: clock/reset, PLB + memory, DCR chain + INTC, CPU.
struct CpuTb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 5000}};
    DcrChain dcr{sch, "dcr", clk.out, rst.out};
    Intc intc{sch, "intc", clk.out, rst.out, 0x40};
    PpcCpu cpu;

    explicit CpuTb(const Program& prog)
        : cpu(sch, "cpu", clk.out, rst.out, plb.master(0), dcr, mem, intc.irq,
              PpcCpu::Config{prog.entry(), 5}) {
        plb.attach_slave(mem);
        dcr.attach(intc);
        mem.load_words(prog.origin, prog.words);
    }

    /// Run until the CPU halts (branch-to-self) or `max_cycles` elapse.
    bool run_to_halt(unsigned max_cycles) {
        for (unsigned i = 0; i < max_cycles / 64; ++i) {
            sch.run_until(sch.now() + 64 * kClk);
            if (cpu.halted() || sch.stop_requested()) break;
        }
        return cpu.halted();
    }
};

TEST(Cpu, ArithmeticLoopSumsToFiftyFive) {
    const Program p = assemble(R"(
        .org 0x100
        _start: li r4, 10
                li r5, 0
        loop:   add r5, r5, r4
                addi r4, r4, -1
                cmpwi r4, 0
                bne loop
        done:   b done
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(5), 55u);
    EXPECT_EQ(tb.cpu.gpr(4), 0u);
}

TEST(Cpu, LoadStoreThroughPlb) {
    const Program p = assemble(R"(
        .org 0x100
        _start: lis r6, hi(buf)
                ori r6, r6, lo(buf)
                lwz r3, 0(r6)
                addi r3, r3, 1
                stw r3, 4(r6)
        done:   b done
        .org 0x400
        buf:    .word 41, 0
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(3), 42u);
    EXPECT_EQ(tb.mem.peek_u32(p.sym("buf") + 4), 42u);
}

TEST(Cpu, ByteAndHalfwordAccess) {
    const Program p = assemble(R"(
        .org 0x100
        _start: lis r6, hi(buf)
                ori r6, r6, lo(buf)
                lbz r3, 1(r6)        # 0xBB
                lhz r4, 2(r6)        # 0xCCDD
                li r5, 0x5A
                stb r5, 0(r6)
                li r5, 0x1122
                sth r5, 6(r6)
        done:   b done
        .org 0x400
        buf:    .word 0xAABBCCDD, 0xEEFF0011
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(4000));
    EXPECT_EQ(tb.cpu.gpr(3), 0xBBu);
    EXPECT_EQ(tb.cpu.gpr(4), 0xCCDDu);
    EXPECT_EQ(tb.mem.peek_u32(p.sym("buf")), 0x5ABBCCDDu);
    EXPECT_EQ(tb.mem.peek_u32(p.sym("buf") + 4), 0xEEFF1122u);
}

TEST(Cpu, UpdateFormsAdvancePointer) {
    const Program p = assemble(R"(
        .org 0x100
        _start: lis r6, hi(buf)
                ori r6, r6, lo(buf)
                addi r6, r6, -4
                lwzu r3, 4(r6)      # r6 = buf, r3 = 7
                lwzu r4, 4(r6)      # r6 = buf+4, r4 = 9
                add r5, r3, r4
        done:   b done
        .org 0x400
        buf:    .word 7, 9
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(3000));
    EXPECT_EQ(tb.cpu.gpr(5), 16u);
    EXPECT_EQ(tb.cpu.gpr(6), p.sym("buf") + 4);
}

TEST(Cpu, FunctionCallAndReturn) {
    const Program p = assemble(R"(
        .org 0x100
        _start: li r3, 20
                bl double_it
                bl double_it
        done:   b done
        double_it:
                add r3, r3, r3
                blr
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(3), 80u);
}

TEST(Cpu, CtrLoopWithBdnz) {
    const Program p = assemble(R"(
        .org 0x100
        _start: li r3, 6
                mtctr r3
                li r5, 0
        loop:   addi r5, r5, 2
                bdnz loop
        done:   b done
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(5), 12u);
}

TEST(Cpu, ShiftsAndLogic) {
    const Program p = assemble(R"(
        .org 0x100
        _start: li r3, 0xF0
                slwi r4, r3, 8       # 0xF000
                srwi r5, r4, 4       # 0x0F00
                li r6, 0x0FF0
                and r7, r5, r6       # 0x0F00
                or r8, r7, r3        # 0x0FF0
                xor r9, r8, r6       # 0
                li r10, -8
                srawi r11, r10, 2    # -2 arithmetic
        done:   b done
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(4), 0xF000u);
    EXPECT_EQ(tb.cpu.gpr(5), 0x0F00u);
    EXPECT_EQ(tb.cpu.gpr(7), 0x0F00u);
    EXPECT_EQ(tb.cpu.gpr(8), 0x0FF0u);
    EXPECT_EQ(tb.cpu.gpr(9), 0u);
    EXPECT_EQ(tb.cpu.gpr(11), static_cast<std::uint32_t>(-2));
}

TEST(Cpu, MulDiv) {
    const Program p = assemble(R"(
        .org 0x100
        _start: li r3, -6
                li r4, 7
                mullw r5, r3, r4     # -42
                li r6, 84
                li r7, 4
                divwu r8, r6, r7     # 21
                divw r9, r5, r4      # -6
        done:   b done
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(5), static_cast<std::uint32_t>(-42));
    EXPECT_EQ(tb.cpu.gpr(8), 21u);
    EXPECT_EQ(tb.cpu.gpr(9), static_cast<std::uint32_t>(-6));
}

TEST(Cpu, UnsignedVsSignedCompare) {
    const Program p = assemble(R"(
        .org 0x100
        _start: li r3, -1          # 0xFFFFFFFF
                li r4, 1
                li r5, 0
                li r6, 0
                cmpw r3, r4        # signed: -1 < 1
                bge skip1
                li r5, 1
        skip1:  cmplw r3, r4       # unsigned: 0xFFFFFFFF > 1
                ble skip2
                li r6, 1
        skip2:
        done:   b done
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(5), 1u);
    EXPECT_EQ(tb.cpu.gpr(6), 1u);
}

// External interrupt: the ISR increments a counter, acks the INTC via DCR
// and rfi's back to the interrupted loop.
TEST(Cpu, ExternalInterruptAndRfi) {
    const Program p = assemble(R"(
        .equ INTC_ISR, 0x40
        .equ INTC_IER, 0x41
        .equ INTC_IAR, 0x42
        .org 0x500
        isr:    addi r20, r20, 1     # count interrupts
                li r21, 0xFF
                mtdcr INTC_IAR, r21  # ack all lines
                rfi
        .org 0x1000
        _start: li r20, 0
                li r3, 0xFF
                mtdcr INTC_IER, r3   # enable all INTC lines
                wrteei 1             # MSR[EE] = 1
        spin:   addi r22, r22, 1
                cmpwi r20, 2
                bne spin
                wrteei 0
        done:   b done
    )");
    CpuTb tb(p);
    // Pulse interrupt line 0 twice, far enough apart to be distinct.
    tb.sch.schedule_at(200 * kClk, [&] { tb.intc.dcr_write(0x40, Word{1}); });
    tb.sch.schedule_at(400 * kClk, [&] { tb.intc.dcr_write(0x40, Word{1}); });
    ASSERT_TRUE(tb.run_to_halt(20000));
    EXPECT_EQ(tb.cpu.gpr(20), 2u);
    EXPECT_EQ(tb.cpu.interrupts_taken(), 2u);
}

TEST(Cpu, InterruptMaskedWhenEEClear) {
    const Program p = assemble(R"(
        .org 0x500
        isr:    addi r20, r20, 1
                rfi
        .org 0x1000
        _start: li r20, 0
                li r3, 50
                mtctr r3
        spin:   bdnz spin
        done:   b done
    )");
    CpuTb tb(p);
    tb.sch.schedule_at(20 * kClk, [&] {
        tb.intc.dcr_write(0x41, Word{0xFF});
        tb.intc.dcr_write(0x40, Word{1});
    });
    ASSERT_TRUE(tb.run_to_halt(5000));
    EXPECT_EQ(tb.cpu.gpr(20), 0u) << "EE clear: no interrupt taken";
    EXPECT_EQ(tb.cpu.interrupts_taken(), 0u);
}

TEST(Cpu, DcrReadWrite) {
    const Program p = assemble(R"(
        .org 0x100
        _start: li r3, 0x7F
                mtdcr 0x41, r3       # INTC IER
                mfdcr r4, 0x41
        done:   b done
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(4), 0x7Fu);
}

TEST(Cpu, DcrReadOfXReportsBrokenChain) {
    const Program p = assemble(R"(
        .org 0x100
        _start: mfdcr r4, 0x3F0     # nobody claims this register
        done:   b done
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(2000));
    bool found = false;
    for (const auto& d : tb.sch.diagnostics()) {
        if (d.message.find("returned X") != std::string::npos) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Cpu, IllegalInstructionStopsSimulation) {
    const Program p = assemble(R"(
        .org 0x100
        _start: .word 0x00000000    # illegal opcode 0
    )");
    CpuTb tb(p);
    tb.run_to_halt(1000);
    EXPECT_TRUE(tb.sch.stop_requested());
    EXPECT_TRUE(tb.sch.has_diag_from("cpu"));
}

TEST(Cpu, FetchOfCorruptedMemoryStops) {
    const Program p = assemble(R"(
        .org 0x100
        _start: nop
                nop
    )");
    CpuTb tb(p);
    tb.mem.poke(0x108, Word::all_x());  // corrupt the third instruction
    tb.run_to_halt(1000);
    EXPECT_TRUE(tb.sch.stop_requested());
    bool found = false;
    for (const auto& d : tb.sch.diagnostics()) {
        if (d.message.find("fetched X") != std::string::npos) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Cpu, InstructionCountAdvances) {
    const Program p = assemble(R"(
        .org 0x100
        _start: li r3, 4
                mtctr r3
        loop:   bdnz loop
        done:   b done
    )");
    CpuTb tb(p);
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_GE(tb.cpu.instructions(), 7u);
}

TEST(Cpu, TraceHookSeesEveryInstruction) {
    const Program p = assemble(R"(
        .org 0x100
        _start: li r3, 1
                li r4, 2
        done:   b done
    )");
    CpuTb tb(p);
    std::vector<std::uint32_t> pcs;
    tb.cpu.trace = [&](std::uint32_t pc, std::uint32_t) {
        if (pcs.size() < 4) pcs.push_back(pc);
    };
    ASSERT_TRUE(tb.run_to_halt(1000));
    ASSERT_GE(pcs.size(), 3u);
    EXPECT_EQ(pcs[0], 0x100u);
    EXPECT_EQ(pcs[1], 0x104u);
    EXPECT_EQ(pcs[2], 0x108u);
}

}  // namespace
}  // namespace autovision::isa
