// Fault-catalogue completeness — the runtime half (the compile-time half
// is the static_asserts in sys/faults.hpp): every injectable Fault
// enumerator resolves to its own catalogue entry, ids are unique and
// non-empty, and fault_info round-trips.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sys/faults.hpp"

namespace {

using namespace autovision;

TEST(FaultCatalog, CoversEveryEnumeratorExactlyOnce) {
    ASSERT_EQ(sys::kFaultCatalog.size(),
              static_cast<std::size_t>(sys::Fault::kCount) - 1);
    std::set<sys::Fault> seen;
    for (const sys::FaultInfo& fi : sys::kFaultCatalog) {
        EXPECT_NE(fi.fault, sys::Fault::kNone);
        EXPECT_NE(fi.fault, sys::Fault::kCount);
        EXPECT_TRUE(seen.insert(fi.fault).second)
            << "duplicate catalogue entry for " << fi.id;
    }
    EXPECT_EQ(seen.size(), sys::kFaultCatalog.size());
}

TEST(FaultCatalog, IdsAreUniqueAndNonEmpty) {
    std::set<std::string> ids;
    for (const sys::FaultInfo& fi : sys::kFaultCatalog) {
        ASSERT_NE(fi.id, nullptr);
        ASSERT_NE(fi.description, nullptr);
        EXPECT_FALSE(std::string(fi.id).empty());
        EXPECT_FALSE(std::string(fi.description).empty());
        EXPECT_TRUE(ids.insert(fi.id).second) << "duplicate id " << fi.id;
    }
}

TEST(FaultCatalog, FaultInfoRoundTrips) {
    for (int f = static_cast<int>(sys::Fault::kNone) + 1;
         f < static_cast<int>(sys::Fault::kCount); ++f) {
        const sys::Fault fault = static_cast<sys::Fault>(f);
        const sys::FaultInfo& fi = sys::fault_info(fault);
        EXPECT_EQ(fi.fault, fault);
    }
    // kNone falls back to the sentinel entry instead of aborting.
    EXPECT_EQ(sys::fault_info(sys::Fault::kNone).fault, sys::Fault::kNone);
}

}  // namespace
