// Event-lane suite (DESIGN.md §13): the parallel evaluate phase must be
// indistinguishable from the sequential kernel — bit-exact stats, values,
// and deterministic diagnostic/stop merging — at every lane count. The
// whole file matches the `Lanes*` CI filter and is the primary TSan
// target: the stress tests below push wide deltas through the worker pool
// with cross-lane committed-signal reads, which is exactly the access
// pattern the lane partitioning rules promise is race-free.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "sys/testbench.hpp"

namespace {

using rtlsim::Clock;
using rtlsim::Edge;
using rtlsim::Logic;
using rtlsim::NS;
using rtlsim::Process;
using rtlsim::Scheduler;
using rtlsim::Signal;

// --- kernel-level fixture --------------------------------------------------

/// A deterministic multi-lane workload: `n` counter processes on one clock,
/// each bumping its own signal by a value derived from its neighbour's
/// *committed* counter — every evaluate reads across lane boundaries, and
/// every delta is wide enough (n >= kMinParallelDelta) to take the
/// parallel path when lanes > 1.
struct CounterFarm {
    explicit CounterFarm(unsigned lanes, unsigned n = 12)
        : clk(sch, "clk", 10 * NS) {
        sch.configure_lanes(lanes);
        for (unsigned i = 0; i < n; ++i) {
            counts.push_back(std::make_unique<Signal<std::uint32_t>>(
                sch, "count" + std::to_string(i), 0u));
        }
        for (unsigned i = 0; i < n; ++i) {
            procs.push_back(std::make_unique<Process>(
                sch, "bump" + std::to_string(i), [this, i, n] {
                    const std::uint32_t neighbour =
                        counts[(i + 1) % n]->read();
                    counts[i]->write(counts[i]->read() + 1 +
                                     (neighbour & 3u));
                }));
            clk.out.add_listener(*procs[i], Edge::Pos);
            sch.set_process_lane(*procs[i], static_cast<std::uint16_t>(i));
        }
    }

    [[nodiscard]] std::vector<std::uint32_t> values() const {
        std::vector<std::uint32_t> v;
        for (const auto& c : counts) v.push_back(c->read());
        return v;
    }

    Scheduler sch;
    Clock clk;
    std::vector<std::unique_ptr<Signal<std::uint32_t>>> counts;
    std::vector<std::unique_ptr<Process>> procs;
};

TEST(LanesKernel, WideDeltasAreBitExactAcrossLaneCounts) {
    CounterFarm ref(1);
    ref.sch.run_until(200 * 10 * NS);
    for (const unsigned lanes : {2u, 3u, 4u, 8u}) {
        CounterFarm farm(lanes);
        farm.sch.run_until(200 * 10 * NS);
        EXPECT_EQ(farm.values(), ref.values()) << "lanes=" << lanes;
        EXPECT_EQ(farm.sch.stats, ref.sch.stats) << "lanes=" << lanes;
    }
}

TEST(LanesKernel, StressManyProcessesLongRun) {
    // The TSan workhorse: 32 processes over 4 lanes, 2000 clock edges of
    // cross-lane reads through the worker pool.
    CounterFarm ref(1, 32);
    ref.sch.run_until(2000 * 10 * NS);
    CounterFarm farm(4, 32);
    farm.sch.run_until(2000 * 10 * NS);
    EXPECT_EQ(farm.values(), ref.values());
    EXPECT_EQ(farm.sch.stats, ref.sch.stats);
}

TEST(LanesKernel, NarrowDeltasStaySequentialAndCorrect) {
    // A single-process ripple is below kMinParallelDelta: with lanes
    // configured it must run inline and produce the sequential result.
    for (const unsigned lanes : {1u, 4u}) {
        Scheduler sch;
        sch.configure_lanes(lanes);
        Clock clk(sch, "clk", 10 * NS);
        Signal<std::uint32_t> count(sch, "count", 0u);
        Process p(sch, "solo", [&] { count.write(count.read() + 1); });
        clk.out.add_listener(p, Edge::Pos);
        sch.set_process_lane(p, 3);
        sch.run_until(50 * 10 * NS);
        EXPECT_EQ(count.read(), 50u) << "lanes=" << lanes;
    }
}

TEST(LanesKernel, LaneAssignmentClampsToConfiguredCount) {
    Scheduler sch;
    sch.configure_lanes(2);
    Process p(sch, "p", [] {});
    sch.set_process_lane(p, 7);  // modulo lane_count()
    EXPECT_EQ(p.lane(), 1u);
    // Reconfiguring narrower re-clamps existing assignments.
    sch.set_process_lane(p, 1);
    sch.configure_lanes(1);
    EXPECT_EQ(p.lane(), 0u);
    EXPECT_EQ(sch.lane_count(), 1u);
}

// --- diagnostic / stop merging --------------------------------------------

/// Four reporter processes, one per lane, all firing in the same delta.
struct ReporterFarm {
    explicit ReporterFarm(unsigned lanes) : clk(sch, "clk", 10 * NS) {
        sch.configure_lanes(lanes);
        for (unsigned i = 0; i < 4; ++i) {
            procs.push_back(std::make_unique<Process>(
                sch, "rep" + std::to_string(i), [this, i] {
                    sch.report("tb.lane" + std::to_string(i),
                               "tick " + std::to_string(ticks));
                }));
            clk.out.add_listener(*procs[i], Edge::Pos);
            sch.set_process_lane(*procs[i], static_cast<std::uint16_t>(i));
        }
        ticker = std::make_unique<Process>(sch, "ticker", [this] { ++ticks; });
        clk.out.add_listener(*ticker, Edge::Neg);
    }

    Scheduler sch;
    Clock clk;
    std::vector<std::unique_ptr<Process>> procs;
    std::unique_ptr<Process> ticker;
    int ticks = 0;
};

TEST(LanesDiag, ReportsMergeInAscendingLaneOrderDeterministically) {
    auto run_once = [] {
        ReporterFarm farm(4);
        farm.sch.run_until(10 * 10 * NS);
        std::vector<std::string> sources;
        for (const rtlsim::Diag& d : farm.sch.diagnostics()) {
            sources.push_back(d.source);
        }
        return sources;
    };
    const std::vector<std::string> a = run_once();
    const std::vector<std::string> b = run_once();
    ASSERT_EQ(a.size(), 40u);  // 4 reporters x 10 rising edges
    EXPECT_EQ(a, b) << "parallel diag merge must be run-to-run stable";
    // Within each delta the four reports appear in ascending lane order.
    for (std::size_t i = 0; i < a.size(); i += 4) {
        EXPECT_EQ(a[i], "tb.lane0");
        EXPECT_EQ(a[i + 1], "tb.lane1");
        EXPECT_EQ(a[i + 2], "tb.lane2");
        EXPECT_EQ(a[i + 3], "tb.lane3");
    }
}

TEST(LanesDiag, OverflowAcrossLanesIsCountedNotStored) {
    ReporterFarm farm(4);
    // 4 diags per rising edge: run far enough to blow through kMaxDiags.
    const std::size_t edges = rtlsim::Scheduler::kMaxDiags / 4 + 25;
    farm.sch.run_until(edges * 10 * NS);  // one rising edge per period
    EXPECT_EQ(farm.sch.diagnostics().size(), rtlsim::Scheduler::kMaxDiags);
    EXPECT_EQ(farm.sch.diagnostics().size() + farm.sch.dropped_diagnostics(),
              4u * edges);
}

TEST(LanesStop, LowestLaneWinsWhenStopsCollideInOneDelta) {
    auto run_once = [] {
        Scheduler sch;
        sch.configure_lanes(4);
        Clock clk(sch, "clk", 10 * NS);
        std::vector<std::unique_ptr<Process>> procs;
        // Registered high-lane first, so notification order favours lane 3:
        // the merge, not scheduling luck, must pick lane 1.
        for (const unsigned lane : {3u, 1u}) {
            procs.push_back(std::make_unique<Process>(
                sch, "stopper" + std::to_string(lane), [&sch, lane] {
                    sch.request_stop("lane" + std::to_string(lane));
                }));
            clk.out.add_listener(*procs.back(), Edge::Pos);
            sch.set_process_lane(*procs.back(),
                                 static_cast<std::uint16_t>(lane));
        }
        // Padding processes so the delta is wide enough to go parallel.
        for (unsigned i = 0; i < 4; ++i) {
            procs.push_back(
                std::make_unique<Process>(sch, "pad" + std::to_string(i),
                                          [] {}));
            clk.out.add_listener(*procs.back(), Edge::Pos);
            sch.set_process_lane(*procs.back(),
                                 static_cast<std::uint16_t>(i));
        }
        sch.run();
        return sch.stop_reason();
    };
    const std::string a = run_once();
    EXPECT_EQ(a, "lane1");
    EXPECT_EQ(run_once(), a);
}

// --- full system -----------------------------------------------------------

TEST(LanesSystem, SmallFrameLanes4BitExactVsLanes1) {
    autovision::sys::SystemConfig cfg;  // 64x48 invariance geometry
    cfg.lanes = 1;
    autovision::sys::Testbench tb1(cfg, /*scene_seed=*/1);
    const autovision::sys::RunResult r1 = tb1.run(1);

    cfg.lanes = 4;
    autovision::sys::Testbench tb4(cfg, /*scene_seed=*/1);
    const autovision::sys::RunResult r4 = tb4.run(1);

    EXPECT_EQ(r1.stats, r4.stats);
    EXPECT_EQ(r1.sim_time, r4.sim_time);
    EXPECT_EQ(r1.verdict(), r4.verdict());
    EXPECT_EQ(r4.verdict(), "clean");
    EXPECT_EQ(r1.census_mismatches, r4.census_mismatches);
    EXPECT_EQ(r1.field_mismatches, r4.field_mismatches);
    EXPECT_EQ(r1.output_mismatches, r4.output_mismatches);
}

TEST(LanesSystem, ResolveLanesHonoursExplicitValueAndEnv) {
    using autovision::sys::SystemConfig;
    const char* saved = ::getenv("AUTOVISION_LANES");
    const std::string saved_val = saved != nullptr ? saved : "";
    EXPECT_EQ(SystemConfig::resolve_lanes(4), 4u);  // explicit wins
    ::unsetenv("AUTOVISION_LANES");
    EXPECT_EQ(SystemConfig::resolve_lanes(0), 1u);
    ::setenv("AUTOVISION_LANES", "4", 1);
    EXPECT_EQ(SystemConfig::resolve_lanes(0), 4u);
    EXPECT_EQ(SystemConfig::resolve_lanes(2), 2u);  // env never overrides
    ::setenv("AUTOVISION_LANES", "0", 1);
    EXPECT_EQ(SystemConfig::resolve_lanes(0), 1u);
    ::setenv("AUTOVISION_LANES", "99", 1);
    EXPECT_EQ(SystemConfig::resolve_lanes(0), 1u);
    ::setenv("AUTOVISION_LANES", "junk", 1);
    EXPECT_EQ(SystemConfig::resolve_lanes(0), 1u);
    if (saved != nullptr) {
        ::setenv("AUTOVISION_LANES", saved_val.c_str(), 1);
    } else {
        ::unsetenv("AUTOVISION_LANES");
    }
}

}  // namespace
