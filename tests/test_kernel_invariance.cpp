// Kernel-invariance suite: pins the *observable* behaviour of the
// simulation kernel so hot-path rewrites (the calendar-queue time wheel,
// event pooling, delta-queue flattening) are provably behaviour-preserving.
//
// The golden SimStats below were captured from the pre-rewrite kernel (the
// std::map<Time, vector<function>> time wheel) running the canned Testbench
// configurations at that commit, and must stay bit-identical: a kernel
// change that alters event ordering, delta settling, or signal-commit
// semantics shows up here as a counter drift long before it corrupts a
// frame. Update these constants only when a change *intentionally* alters
// kernel semantics, and say why in the commit message.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sys/testbench.hpp"

namespace {

using autovision::sys::RunResult;
using autovision::sys::SystemConfig;
using autovision::sys::Testbench;

struct Golden {
    std::uint64_t timed_events;
    std::uint64_t delta_cycles;
    std::uint64_t proc_invocations;
    std::uint64_t signal_updates;
    std::uint64_t time_steps;
    rtlsim::Time sim_time;
};

void expect_golden(const RunResult& r, const Golden& g) {
    EXPECT_EQ(r.stats.timed_events, g.timed_events);
    EXPECT_EQ(r.stats.delta_cycles, g.delta_cycles);
    EXPECT_EQ(r.stats.proc_invocations, g.proc_invocations);
    EXPECT_EQ(r.stats.signal_updates, g.signal_updates);
    EXPECT_EQ(r.stats.time_steps, g.time_steps);
    EXPECT_EQ(r.sim_time, g.sim_time);
    // A clean run is part of the contract: zero diagnostics and bit-exact
    // scoreboard results (census, motion field, drawn output).
    EXPECT_EQ(r.verdict(), "clean");
    EXPECT_TRUE(r.diagnostics.empty());
    EXPECT_EQ(r.census_mismatches, 0u);
    EXPECT_EQ(r.field_mismatches, 0u);
    EXPECT_EQ(r.output_mismatches, 0u);
}

// Canned frame #1: default 64x48 ReSim configuration, two frames, scene
// seed 1. Goldens captured from the pre-calendar-queue kernel.
TEST(KernelInvariance, DefaultConfigTwoFramesMatchesGolden) {
    SystemConfig cfg;
    Testbench tb(cfg, /*scene_seed=*/1);
    const RunResult r = tb.run(2);
    ASSERT_EQ(r.frames_completed, 2u);
    expect_golden(r, Golden{
                         .timed_events = 82513,
                         .delta_cycles = 138656,
                         .proc_invocations = 470658,
                         .signal_updates = 163149,
                         .time_steps = 82512,
                         .sim_time = 412560000,
                     });
}

// Canned frame #2: wider 96x64 frame, bigger SimB, scene seed 7 — a
// different DPR/compute balance than the default config.
TEST(KernelInvariance, WideConfigOneFrameMatchesGolden) {
    SystemConfig cfg;
    cfg.width = 96;
    cfg.height = 64;
    cfg.search = 2;
    cfg.simb_payload_words = 512;
    Testbench tb(cfg, /*scene_seed=*/7);
    const RunResult r = tb.run(1);
    ASSERT_EQ(r.frames_completed, 1u);
    expect_golden(r, Golden{
                         .timed_events = 95505,
                         .delta_cycles = 157831,
                         .proc_invocations = 541930,
                         .signal_updates = 180062,
                         .time_steps = 95504,
                         .sim_time = 477520000,
                     });
}

// The parallel evaluate phase must be invisible: the canned golden run is
// re-checked at every supported lane count, and the full observable
// surface — SimStats, the VCD trace, and the checkpoint blob — must be
// byte-identical to the sequential kernel. This is the acceptance pin for
// the event-lane machinery (DESIGN.md §13): any scheduling-order leak into
// committed values, trace emission, or snapshot bytes fails here.
TEST(KernelInvariance, GoldenRunIsByteIdenticalAtEveryLaneCount) {
    struct Capture {
        RunResult result;
        std::string vcd;
        std::string ckpt;
    };
    auto run_at = [](unsigned lanes) {
        const std::string vcd_path = ::testing::TempDir() + "inv_lanes" +
                                     std::to_string(lanes) + ".vcd";
        SystemConfig cfg;
        cfg.lanes = lanes;
        cfg.vcd_path = vcd_path;
        Testbench tb(cfg, /*scene_seed=*/1);
        Capture c{tb.run(2), "", ""};
        std::ostringstream os;
        EXPECT_TRUE(tb.sys.save(os));
        c.ckpt = os.str();
        std::ifstream is(vcd_path, std::ios::binary);
        std::ostringstream vs;
        vs << is.rdbuf();
        c.vcd = vs.str();
        std::remove(vcd_path.c_str());
        return c;
    };

    const Capture ref = run_at(1);
    ASSERT_EQ(ref.result.frames_completed, 2u);
    ASSERT_FALSE(ref.vcd.empty());
    ASSERT_FALSE(ref.ckpt.empty());
    for (const unsigned lanes : {2u, 4u}) {
        const Capture c = run_at(lanes);
        EXPECT_EQ(c.result.stats, ref.result.stats) << "lanes=" << lanes;
        EXPECT_EQ(c.result.sim_time, ref.result.sim_time) << "lanes=" << lanes;
        EXPECT_EQ(c.result.verdict(), ref.result.verdict())
            << "lanes=" << lanes;
        EXPECT_EQ(c.vcd, ref.vcd) << "VCD bytes diverged at lanes=" << lanes;
        EXPECT_EQ(c.ckpt, ref.ckpt)
            << "checkpoint bytes diverged at lanes=" << lanes;
    }
}

// The same configuration must be deterministic run-to-run — otherwise the
// goldens above could flake rather than catch real kernel drift.
TEST(KernelInvariance, RepeatRunsAreBitIdentical) {
    SystemConfig cfg;
    auto run_once = [&cfg] {
        Testbench tb(cfg, /*scene_seed=*/3);
        return tb.run(1);
    };
    const RunResult a = run_once();
    const RunResult b = run_once();
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.sim_time, b.sim_time);
    EXPECT_EQ(a.diagnostics.size(), b.diagnostics.size());
}

// --- diagnostic overflow bound ------------------------------------------
// Scheduler::kMaxDiags caps stored diagnostics; everything beyond is
// counted in dropped_diagnostics(). No other test exercises this bound.

TEST(KernelInvariance, DiagnosticsOverflowIsCountedNotStored) {
    rtlsim::Scheduler sch;
    constexpr std::size_t kExtra = 37;
    for (std::size_t i = 0; i < rtlsim::Scheduler::kMaxDiags + kExtra; ++i) {
        sch.report("tb.flood", "diag " + std::to_string(i));
    }
    EXPECT_EQ(sch.diagnostics().size(), rtlsim::Scheduler::kMaxDiags);
    EXPECT_EQ(sch.dropped_diagnostics(), kExtra);
    // The stored window is the *first* kMaxDiags entries.
    EXPECT_EQ(sch.diagnostics().front().message, "diag 0");
    EXPECT_EQ(sch.diagnostics().back().message,
              "diag " + std::to_string(rtlsim::Scheduler::kMaxDiags - 1));
    EXPECT_TRUE(sch.has_diag_from("flood"));
    EXPECT_FALSE(sch.has_diag_from("nosuch"));
}

TEST(KernelInvariance, DiagnosticsBelowBoundAreAllStored) {
    rtlsim::Scheduler sch;
    sch.report("tb.a", "one");
    sch.report("tb.b", "two");
    EXPECT_EQ(sch.diagnostics().size(), 2u);
    EXPECT_EQ(sch.dropped_diagnostics(), 0u);
}

}  // namespace
