// Unit tests for the firmware builder: every variant must assemble, and
// the generated code must reflect the method/wait/fault knobs. The FwPool
// suite pins the software-scheduled virtualization pool end to end: the
// generated pool driver decides the engine order and the RegionManager's
// schedule signature must match it exactly, at every lane count.
#include <gtest/gtest.h>

#include "sys/firmware.hpp"
#include "sys/testbench.hpp"

namespace autovision::sys {
namespace {

FirmwareConfig base_cfg() {
    FirmwareConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.simb_cie_words = 110;
    cfg.simb_me_words = 110;
    return cfg;
}

TEST(Firmware, AllVariantsAssemble) {
    for (auto method :
         {FirmwareConfig::Method::kVm, FirmwareConfig::Method::kResim}) {
        for (auto wait :
             {FirmwareConfig::Wait::kIrq, FirmwareConfig::Wait::kPollDone,
              FirmwareConfig::Wait::kDelay}) {
            for (int f = 0; f < static_cast<int>(Fault::kCount); ++f) {
                FirmwareConfig cfg = base_cfg();
                cfg.method = method;
                cfg.wait = wait;
                cfg.fault = static_cast<Fault>(f);
                const isa::Program p = build_firmware(cfg);
                EXPECT_GT(p.words.size(), 100u)
                    << "method=" << static_cast<int>(method)
                    << " wait=" << static_cast<int>(wait) << " fault=" << f;
                EXPECT_EQ(p.entry(), 0x1000u);
            }
        }
    }
}

TEST(Firmware, VectorAndEntryPlacement) {
    const isa::Program p = build_firmware(base_cfg());
    EXPECT_EQ(p.origin, 0x500u) << "image begins at the interrupt vector";
    EXPECT_EQ(p.sym("isr"), 0x500u);
    EXPECT_EQ(p.sym("_start"), 0x1000u);
    EXPECT_EQ(p.sym("main_loop") % 4, 0u);
}

TEST(Firmware, MethodSelectsReconfigurationDriver) {
    FirmwareConfig cfg = base_cfg();
    cfg.method = FirmwareConfig::Method::kResim;
    const std::string resim_src = build_firmware_source(cfg);
    EXPECT_NE(resim_src.find("mtdcr ICAP_ADDR"), std::string::npos);
    EXPECT_NE(resim_src.find("mtdcr ISO_CTRL"), std::string::npos);
    EXPECT_EQ(resim_src.find("mtdcr SIG_REG"), std::string::npos)
        << "the real driver never touches the simulation-only register";

    cfg.method = FirmwareConfig::Method::kVm;
    const std::string vm_src = build_firmware_source(cfg);
    EXPECT_NE(vm_src.find("mtdcr SIG_REG"), std::string::npos);
    EXPECT_EQ(vm_src.find("mtdcr ICAP_ADDR"), std::string::npos)
        << "the hacked VM software bypasses the IcapCTRL driver";
    EXPECT_EQ(vm_src.find("mtdcr ISO_CTRL"), std::string::npos)
        << "VM never exercises the isolation driver";
}

TEST(Firmware, WaitModeShapesTheDriver) {
    FirmwareConfig cfg = base_cfg();
    cfg.wait = FirmwareConfig::Wait::kIrq;
    EXPECT_EQ(build_firmware_source(cfg).find("poll_"), std::string::npos);
    cfg.wait = FirmwareConfig::Wait::kPollDone;
    EXPECT_NE(build_firmware_source(cfg).find("poll_"), std::string::npos);
    cfg.wait = FirmwareConfig::Wait::kDelay;
    const std::string s = build_firmware_source(cfg);
    EXPECT_NE(s.find("delay_"), std::string::npos);
    EXPECT_NE(s.find("DELAY_LOOPS"), std::string::npos);
}

TEST(Firmware, FaultsEditTheGeneratedCode) {
    // bug.hw.1: the source address is shifted down to a word index.
    FirmwareConfig cfg = base_cfg();
    cfg.fault = Fault::kHw1SrcWordAddr;
    EXPECT_NE(build_firmware_source(cfg).find("srwi r6, r6, 2"),
              std::string::npos);

    // bug.hw.3: INTC control written with 0 (level capture).
    cfg = base_cfg();
    cfg.fault = Fault::kHw3LevelIntc;
    EXPECT_NE(build_firmware_source(cfg).find("li r6, 0\n  mtdcr INTC_CTRL"),
              std::string::npos);

    // bug.sw.2: the IAR acknowledge disappears.
    cfg = base_cfg();
    const std::string good = build_firmware_source(cfg);
    cfg.fault = Fault::kSw2NoIntcAck;
    const std::string bad = build_firmware_source(cfg);
    EXPECT_NE(good.find("mtdcr INTC_IAR"), std::string::npos);
    EXPECT_EQ(bad.find("mtdcr INTC_IAR"), std::string::npos);

    // bug.dpr.1: isolation writes disappear (the equate remains).
    cfg = base_cfg();
    cfg.fault = Fault::kDpr1NoIsolation;
    EXPECT_EQ(build_firmware_source(cfg).find("mtdcr ISO_CTRL"),
              std::string::npos);

    // bug.dpr.5: the size equates are word counts, not byte counts.
    cfg = base_cfg();
    cfg.fault = Fault::kDpr5SizeInWords;
    const std::string sz = build_firmware_source(cfg);
    EXPECT_NE(sz.find(".equ SIMB_ME_SIZE, 110"), std::string::npos);
    cfg.fault = Fault::kNone;
    EXPECT_NE(build_firmware_source(cfg).find(".equ SIMB_ME_SIZE, 440"),
              std::string::npos);

    // bug.dpr.3: the DPR-to-ME path stages the CIE SimB.
    cfg = base_cfg();
    cfg.fault = Fault::kDpr3WrongSimbAddr;
    const std::string wrong = build_firmware_source(cfg);
    // In the to-ME block (tagged "tome") the address constant is SIMB_CIE.
    const auto tome = wrong.find("stw r7, VAR_DPR_TARGET");
    ASSERT_NE(tome, std::string::npos);
    EXPECT_NE(wrong.find("hi(SIMB_CIE)", tome), std::string::npos);
}

TEST(Firmware, GeometryEquatesMatchConfig) {
    FirmwareConfig cfg = base_cfg();
    cfg.width = 128;
    cfg.height = 96;
    cfg.step = 4;
    cfg.margin = 8;
    const std::string s = build_firmware_source(cfg);
    EXPECT_NE(s.find(".equ WIDTH, 128"), std::string::npos);
    EXPECT_NE(s.find(".equ HEIGHT, 96"), std::string::npos);
    EXPECT_NE(s.find(".equ GW, 28"), std::string::npos);   // (128-16+3)/4
    EXPECT_NE(s.find(".equ GH, 20"), std::string::npos);   // (96-16+3)/4
}

TEST(Firmware, IerMasksIcapLineOutsideIrqMode) {
    FirmwareConfig cfg = base_cfg();
    cfg.method = FirmwareConfig::Method::kResim;
    cfg.wait = FirmwareConfig::Wait::kIrq;
    EXPECT_NE(build_firmware_source(cfg).find("li r6, 7\n  mtdcr INTC_IER"),
              std::string::npos);
    cfg.wait = FirmwareConfig::Wait::kDelay;
    EXPECT_NE(build_firmware_source(cfg).find("li r6, 5\n  mtdcr INTC_IER"),
              std::string::npos);
}

TEST(Firmware, PoolDriverShapesTheCode) {
    // Default config: no pool driver, text identical to the classic build.
    FirmwareConfig cfg = base_cfg();
    const std::string classic = build_firmware_source(cfg);
    EXPECT_EQ(classic.find("handle_region"), std::string::npos);
    EXPECT_EQ(classic.find("pool_table"), std::string::npos);
    EXPECT_EQ(classic.find("POOL_CMD"), std::string::npos);

    cfg.pool_regions = 2;
    cfg.pool_jobs_per_region = 3;
    const std::string pool = build_firmware_source(cfg);
    EXPECT_NE(pool.find("handle_region"), std::string::npos);
    EXPECT_NE(pool.find("mtdcr POOL_CMD"), std::string::npos);
    EXPECT_NE(pool.find(".equ POOL_N, 2"), std::string::npos);
    EXPECT_NE(pool.find(".equ POOL_JOBS, 3"), std::string::npos);
    // Region lines unmasked: 0b111 | ((1<<2)-1)<<3 = 0x1F.
    EXPECT_NE(pool.find("li r6, 31\n  mtdcr INTC_IER"), std::string::npos);
    // The job table carries 3 words per job.
    EXPECT_NE(pool.find("pool_table:"), std::string::npos);
    const isa::Program p = build_firmware(cfg);
    EXPECT_EQ(p.sym("pool_table") % 4, 0u);
}

// ---------------------------------------------------------------- FwPool
// Full-system runs of the software-scheduled pool. The firmware seeds one
// job per region at boot and pushes the rest from the region-done ISR; the
// RegionManager executes the pushed plan. Goldens pin the schedule
// signature (reconfigurations marked '!', demand hits unmarked).

SystemConfig pool_cfg(unsigned regions) {
    SystemConfig cfg;
    cfg.width = 32;
    cfg.height = 24;
    cfg.step = 4;
    cfg.margin = 8;
    cfg.search = 2;
    cfg.simb_payload_words = 100;
    cfg.regions = regions;
    cfg.rrm_software = true;
    return cfg;
}

/// Run two video frames, then keep simulating until the pool drains.
RunResult run_pool(Testbench& tb) {
    RunResult r = tb.run(2);
    unsigned guard = 0;
    while (!tb.sys.region_manager->done() && ++guard < 2000) {
        tb.sys.sch.run_until(tb.sys.sch.now() + 100000);
    }
    EXPECT_TRUE(tb.sys.region_manager->done()) << "pool failed to drain";
    return r;
}

TEST(FwPool, ScheduleSignatureGolden) {
    const char* kGolden[] = {
        "r0.census! r0.census",
        "r0.census! r1.matching! r0.census r1.matching",
        "r0.census! r1.matching! r2.sobel! "
        "r0.census r1.matching r2.sobel",
    };
    for (unsigned regions = 2; regions <= 4; ++regions) {
        Testbench tb(pool_cfg(regions));
        const RunResult r = run_pool(tb);
        EXPECT_TRUE(r.clean()) << "regions=" << regions << ": "
                               << r.verdict();
        EXPECT_EQ(tb.sys.region_manager->signature(), kGolden[regions - 2]);
        EXPECT_EQ(tb.sys.pool_bridge->pushes(), (regions - 1) * 2);
        for (unsigned i = 0; i + 1 < regions; ++i) {
            EXPECT_EQ(tb.sys.region_manager->jobs_done(i), 2u);
            EXPECT_EQ(tb.sys.region_manager->timeouts(i), 0u);
        }
    }
}

TEST(FwPool, VmMethodRunsTheSameSchedule) {
    SystemConfig cfg = pool_cfg(3);
    cfg.method = FirmwareConfig::Method::kVm;
    Testbench tb(cfg);
    const RunResult r = run_pool(tb);
    EXPECT_TRUE(r.clean()) << r.verdict();
    EXPECT_EQ(tb.sys.region_manager->signature(),
              "r0.census! r1.matching! r0.census r1.matching");
    // VM swaps never stream SimBs.
    EXPECT_EQ(tb.sys.region_manager->sessions_submitted(0), 0u);
    EXPECT_EQ(tb.sys.region_manager->sessions_submitted(1), 0u);
}

TEST(FwPool, PairedJobsAreDemandHits) {
    // Four jobs per region: the schedule rotates engines in pairs, so the
    // second of each pair skips the reconfiguration entirely.
    SystemConfig cfg = pool_cfg(2);
    cfg.rrm_jobs_per_region = 4;
    Testbench tb(cfg);
    const RunResult r = run_pool(tb);
    EXPECT_TRUE(r.clean()) << r.verdict();
    EXPECT_EQ(tb.sys.region_manager->signature(),
              "r0.census! r0.census r0.matching! r0.matching");
    // Exactly the two '!' entries streamed a SimB through the arbiter.
    EXPECT_EQ(tb.sys.region_manager->sessions_submitted(0), 2u);
    EXPECT_EQ(tb.sys.region_manager->jobs_done(0), 4u);
}

TEST(FwPool, DeterministicAcrossLanes) {
    // The pinned pool run must be bit-reproducible at every lane count
    // (the kernel-invariance contract extends to the software pool).
    std::string sig1;
    rtlsim::Time end1 = 0;
    std::uint32_t frames1 = 0;
    for (unsigned lanes : {1u, 2u, 4u}) {
        SystemConfig cfg = pool_cfg(4);
        cfg.lanes = lanes;
        Testbench tb(cfg);
        const RunResult r = run_pool(tb);
        EXPECT_TRUE(r.clean()) << "lanes=" << lanes << ": " << r.verdict();
        if (lanes == 1) {
            sig1 = tb.sys.region_manager->signature();
            end1 = tb.sys.sch.now();
            frames1 = r.frames_completed;
        } else {
            EXPECT_EQ(tb.sys.region_manager->signature(), sig1)
                << "lanes=" << lanes;
            EXPECT_EQ(tb.sys.sch.now(), end1) << "lanes=" << lanes;
            EXPECT_EQ(r.frames_completed, frames1) << "lanes=" << lanes;
        }
    }
}

TEST(FwPool, SoftwarePoolFoldsIntoConfigHash) {
    SystemConfig plain = pool_cfg(3);
    plain.rrm_software = false;
    SystemConfig sw = pool_cfg(3);
    EXPECT_NE(OpticalFlowSystem::config_hash(plain),
              OpticalFlowSystem::config_hash(sw))
        << "software scheduling changes simulation semantics";
    // Single-region configs ignore (and normalize away) the flag.
    SystemConfig one;
    SystemConfig one_sw;
    one_sw.rrm_software = true;
    EXPECT_EQ(OpticalFlowSystem::config_hash(one),
              OpticalFlowSystem::config_hash(one_sw));
}

}  // namespace
}  // namespace autovision::sys
