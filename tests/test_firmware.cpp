// Unit tests for the firmware builder: every variant must assemble, and
// the generated code must reflect the method/wait/fault knobs.
#include <gtest/gtest.h>

#include "sys/firmware.hpp"

namespace autovision::sys {
namespace {

FirmwareConfig base_cfg() {
    FirmwareConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.simb_cie_words = 110;
    cfg.simb_me_words = 110;
    return cfg;
}

TEST(Firmware, AllVariantsAssemble) {
    for (auto method :
         {FirmwareConfig::Method::kVm, FirmwareConfig::Method::kResim}) {
        for (auto wait :
             {FirmwareConfig::Wait::kIrq, FirmwareConfig::Wait::kPollDone,
              FirmwareConfig::Wait::kDelay}) {
            for (int f = 0; f < static_cast<int>(Fault::kCount); ++f) {
                FirmwareConfig cfg = base_cfg();
                cfg.method = method;
                cfg.wait = wait;
                cfg.fault = static_cast<Fault>(f);
                const isa::Program p = build_firmware(cfg);
                EXPECT_GT(p.words.size(), 100u)
                    << "method=" << static_cast<int>(method)
                    << " wait=" << static_cast<int>(wait) << " fault=" << f;
                EXPECT_EQ(p.entry(), 0x1000u);
            }
        }
    }
}

TEST(Firmware, VectorAndEntryPlacement) {
    const isa::Program p = build_firmware(base_cfg());
    EXPECT_EQ(p.origin, 0x500u) << "image begins at the interrupt vector";
    EXPECT_EQ(p.sym("isr"), 0x500u);
    EXPECT_EQ(p.sym("_start"), 0x1000u);
    EXPECT_EQ(p.sym("main_loop") % 4, 0u);
}

TEST(Firmware, MethodSelectsReconfigurationDriver) {
    FirmwareConfig cfg = base_cfg();
    cfg.method = FirmwareConfig::Method::kResim;
    const std::string resim_src = build_firmware_source(cfg);
    EXPECT_NE(resim_src.find("mtdcr ICAP_ADDR"), std::string::npos);
    EXPECT_NE(resim_src.find("mtdcr ISO_CTRL"), std::string::npos);
    EXPECT_EQ(resim_src.find("mtdcr SIG_REG"), std::string::npos)
        << "the real driver never touches the simulation-only register";

    cfg.method = FirmwareConfig::Method::kVm;
    const std::string vm_src = build_firmware_source(cfg);
    EXPECT_NE(vm_src.find("mtdcr SIG_REG"), std::string::npos);
    EXPECT_EQ(vm_src.find("mtdcr ICAP_ADDR"), std::string::npos)
        << "the hacked VM software bypasses the IcapCTRL driver";
    EXPECT_EQ(vm_src.find("mtdcr ISO_CTRL"), std::string::npos)
        << "VM never exercises the isolation driver";
}

TEST(Firmware, WaitModeShapesTheDriver) {
    FirmwareConfig cfg = base_cfg();
    cfg.wait = FirmwareConfig::Wait::kIrq;
    EXPECT_EQ(build_firmware_source(cfg).find("poll_"), std::string::npos);
    cfg.wait = FirmwareConfig::Wait::kPollDone;
    EXPECT_NE(build_firmware_source(cfg).find("poll_"), std::string::npos);
    cfg.wait = FirmwareConfig::Wait::kDelay;
    const std::string s = build_firmware_source(cfg);
    EXPECT_NE(s.find("delay_"), std::string::npos);
    EXPECT_NE(s.find("DELAY_LOOPS"), std::string::npos);
}

TEST(Firmware, FaultsEditTheGeneratedCode) {
    // bug.hw.1: the source address is shifted down to a word index.
    FirmwareConfig cfg = base_cfg();
    cfg.fault = Fault::kHw1SrcWordAddr;
    EXPECT_NE(build_firmware_source(cfg).find("srwi r6, r6, 2"),
              std::string::npos);

    // bug.hw.3: INTC control written with 0 (level capture).
    cfg = base_cfg();
    cfg.fault = Fault::kHw3LevelIntc;
    EXPECT_NE(build_firmware_source(cfg).find("li r6, 0\n  mtdcr INTC_CTRL"),
              std::string::npos);

    // bug.sw.2: the IAR acknowledge disappears.
    cfg = base_cfg();
    const std::string good = build_firmware_source(cfg);
    cfg.fault = Fault::kSw2NoIntcAck;
    const std::string bad = build_firmware_source(cfg);
    EXPECT_NE(good.find("mtdcr INTC_IAR"), std::string::npos);
    EXPECT_EQ(bad.find("mtdcr INTC_IAR"), std::string::npos);

    // bug.dpr.1: isolation writes disappear (the equate remains).
    cfg = base_cfg();
    cfg.fault = Fault::kDpr1NoIsolation;
    EXPECT_EQ(build_firmware_source(cfg).find("mtdcr ISO_CTRL"),
              std::string::npos);

    // bug.dpr.5: the size equates are word counts, not byte counts.
    cfg = base_cfg();
    cfg.fault = Fault::kDpr5SizeInWords;
    const std::string sz = build_firmware_source(cfg);
    EXPECT_NE(sz.find(".equ SIMB_ME_SIZE, 110"), std::string::npos);
    cfg.fault = Fault::kNone;
    EXPECT_NE(build_firmware_source(cfg).find(".equ SIMB_ME_SIZE, 440"),
              std::string::npos);

    // bug.dpr.3: the DPR-to-ME path stages the CIE SimB.
    cfg = base_cfg();
    cfg.fault = Fault::kDpr3WrongSimbAddr;
    const std::string wrong = build_firmware_source(cfg);
    // In the to-ME block (tagged "tome") the address constant is SIMB_CIE.
    const auto tome = wrong.find("stw r7, VAR_DPR_TARGET");
    ASSERT_NE(tome, std::string::npos);
    EXPECT_NE(wrong.find("hi(SIMB_CIE)", tome), std::string::npos);
}

TEST(Firmware, GeometryEquatesMatchConfig) {
    FirmwareConfig cfg = base_cfg();
    cfg.width = 128;
    cfg.height = 96;
    cfg.step = 4;
    cfg.margin = 8;
    const std::string s = build_firmware_source(cfg);
    EXPECT_NE(s.find(".equ WIDTH, 128"), std::string::npos);
    EXPECT_NE(s.find(".equ HEIGHT, 96"), std::string::npos);
    EXPECT_NE(s.find(".equ GW, 28"), std::string::npos);   // (128-16+3)/4
    EXPECT_NE(s.find(".equ GH, 20"), std::string::npos);   // (96-16+3)/4
}

TEST(Firmware, IerMasksIcapLineOutsideIrqMode) {
    FirmwareConfig cfg = base_cfg();
    cfg.method = FirmwareConfig::Method::kResim;
    cfg.wait = FirmwareConfig::Wait::kIrq;
    EXPECT_NE(build_firmware_source(cfg).find("li r6, 7\n  mtdcr INTC_IER"),
              std::string::npos);
    cfg.wait = FirmwareConfig::Wait::kDelay;
    EXPECT_NE(build_firmware_source(cfg).find("li r6, 5\n  mtdcr INTC_IER"),
              std::string::npos);
}

}  // namespace
}  // namespace autovision::sys
