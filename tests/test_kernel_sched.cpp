// Unit tests for the event scheduler, signals, processes and tracing.
#include <gtest/gtest.h>

#include <sstream>

#include "kernel/kernel.hpp"

namespace rtlsim {
namespace {

TEST(Scheduler, TimedEventsRunInOrder) {
    Scheduler sch;
    std::vector<int> order;
    sch.schedule_at(30 * NS, [&] { order.push_back(3); });
    sch.schedule_at(10 * NS, [&] { order.push_back(1); });
    sch.schedule_at(20 * NS, [&] { order.push_back(2); });
    sch.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sch.now(), 30 * NS);
    EXPECT_EQ(sch.stats.timed_events, 3u);
    EXPECT_EQ(sch.stats.time_steps, 3u);
}

TEST(Scheduler, ScheduleInIsRelative) {
    Scheduler sch;
    Time seen = 0;
    sch.schedule_at(5 * NS, [&] {
        sch.schedule_in(7 * NS, [&] { seen = sch.now(); });
    });
    sch.run();
    EXPECT_EQ(seen, 12 * NS);
}

TEST(Scheduler, RunUntilStopsAtBound) {
    Scheduler sch;
    int hits = 0;
    for (int i = 1; i <= 10; ++i) {
        sch.schedule_at(static_cast<Time>(i) * NS, [&] { ++hits; });
    }
    sch.run_until(4 * NS);
    EXPECT_EQ(hits, 4);
    EXPECT_EQ(sch.now(), 4 * NS);
    sch.run();
    EXPECT_EQ(hits, 10);
}

TEST(Scheduler, StopRequestHaltsRun) {
    Scheduler sch;
    int hits = 0;
    for (int i = 1; i <= 10; ++i) {
        sch.schedule_at(static_cast<Time>(i) * NS, [&] {
            if (++hits == 3) sch.request_stop("enough");
        });
    }
    sch.run();
    EXPECT_EQ(hits, 3);
    EXPECT_TRUE(sch.stop_requested());
    EXPECT_EQ(sch.stop_reason(), "enough");
}

TEST(Scheduler, DiagnosticsAreRecorded) {
    Scheduler sch;
    sch.schedule_at(2 * NS, [&] { sch.report("tb.checker", "boom"); });
    sch.run();
    ASSERT_EQ(sch.diagnostics().size(), 1u);
    EXPECT_EQ(sch.diagnostics()[0].time, 2 * NS);
    EXPECT_TRUE(sch.has_diag_from("checker"));
    EXPECT_FALSE(sch.has_diag_from("scoreboard"));
}

TEST(Signal, NonBlockingWriteVisibleNextDelta) {
    Scheduler sch;
    Signal<int> s(sch, "s", 0);
    int seen_during_eval = -1;
    sch.schedule_at(1 * NS, [&] {
        s.write(42);
        seen_during_eval = s.read();  // still old value in the same delta
    });
    sch.run();
    EXPECT_EQ(seen_during_eval, 0);
    EXPECT_EQ(s.read(), 42);
}

TEST(Signal, SameValueWriteDoesNotNotify) {
    Scheduler sch;
    Signal<int> s(sch, "s", 7);
    int wakeups = 0;
    Process p(sch, "watcher", [&] { ++wakeups; });
    s.add_listener(p, Edge::Any);
    sch.schedule_at(1 * NS, [&] { s.write(7); });
    sch.schedule_at(2 * NS, [&] { s.write(8); });
    sch.run();
    EXPECT_EQ(wakeups, 1);
    EXPECT_EQ(sch.stats.signal_updates, 1u);
}

TEST(Signal, LogicStartsX) {
    Scheduler sch;
    Signal<Logic> s(sch, "s");
    EXPECT_EQ(s.read(), Logic::X);
    Signal<Word> w(sch, "w");
    EXPECT_TRUE(w.read().has_unknown());
}

TEST(Signal, EdgeFiltering) {
    Scheduler sch;
    Clock clk(sch, "clk", 10 * NS);
    int pos = 0;
    int neg = 0;
    int any = 0;
    Process pp(sch, "pos", [&] { ++pos; });
    Process pn(sch, "neg", [&] { ++neg; });
    Process pa(sch, "any", [&] { ++any; });
    clk.out.add_listener(pp, Edge::Pos);
    clk.out.add_listener(pn, Edge::Neg);
    clk.out.add_listener(pa, Edge::Any);
    // Period 10ns: rising edges at 5,15,...,95 and falling at 10,20,...,100.
    sch.run_until(100 * NS);
    EXPECT_EQ(pos, 10);
    EXPECT_EQ(neg, 10);
    EXPECT_EQ(any, 20);
}

TEST(Signal, XToOneCountsAsPosedge) {
    Scheduler sch;
    Signal<Logic> s(sch, "s");  // starts X
    int pos = 0;
    Process p(sch, "pos", [&] { ++pos; });
    s.add_listener(p, Edge::Pos);
    sch.schedule_at(1 * NS, [&] { s.write(Logic::L1); });
    sch.run();
    EXPECT_EQ(pos, 1);
}

// Two registers swapping values through each other on the same clock edge
// is the canonical race that non-blocking semantics must make deterministic.
TEST(Signal, SimultaneousSwapIsRaceFree) {
    Scheduler sch;
    Clock clk(sch, "clk", 10 * NS);
    Signal<int> a(sch, "a", 1);
    Signal<int> b(sch, "b", 2);
    Process pa(sch, "ra", [&] { a.write(b.read()); });
    Process pb(sch, "rb", [&] { b.write(a.read()); });
    clk.out.add_listener(pa, Edge::Pos);
    clk.out.add_listener(pb, Edge::Pos);
    sch.run_until(10 * NS);  // exactly one rising edge at t=5ns
    EXPECT_EQ(a.read(), 2);
    EXPECT_EQ(b.read(), 1);
    sch.run_until(20 * NS);  // second rising edge swaps back
    EXPECT_EQ(a.read(), 1);
    EXPECT_EQ(b.read(), 2);
}

// A combinational chain through three processes must settle within one
// timestep via delta cycles.
TEST(Scheduler, CombinationalChainSettles) {
    Scheduler sch;
    Signal<int> in(sch, "in", 0);
    Signal<int> s1(sch, "s1", 0);
    Signal<int> s2(sch, "s2", 0);
    Signal<int> out(sch, "out", 0);
    Process p1(sch, "p1", [&] { s1.write(in.read() + 1); });
    Process p2(sch, "p2", [&] { s2.write(s1.read() * 2); });
    Process p3(sch, "p3", [&] { out.write(s2.read() + 3); });
    in.add_listener(p1, Edge::Any);
    s1.add_listener(p2, Edge::Any);
    s2.add_listener(p3, Edge::Any);
    sch.schedule_at(1 * NS, [&] { in.write(10); });
    sch.run();
    EXPECT_EQ(sch.now(), 1 * NS);
    EXPECT_EQ(out.read(), 25);  // (10+1)*2+3, settled at the same timestamp
}

TEST(Module, HierarchicalNames) {
    Scheduler sch;
    struct Inner : Module {
        Inner(Scheduler& s, const Module* parent)
            : Module(s, "inner", parent) {}
    };
    struct Outer : Module {
        Inner child;
        explicit Outer(Scheduler& s) : Module(s, "outer"), child(s, this) {}
    };
    Outer o(sch);
    EXPECT_EQ(o.full_name(), "outer");
    EXPECT_EQ(o.child.full_name(), "outer.inner");
}

TEST(Module, CombProcRunsAtInit) {
    Scheduler sch;
    Signal<int> in(sch, "in", 5);
    Signal<int> out(sch, "out", 0);

    struct Doubler : Module {
        Doubler(Scheduler& s, Signal<int>& i, Signal<int>& o)
            : Module(s, "doubler") {
            comb_proc("eval", [&i, &o] { o.write(i.read() * 2); }, {anyedge(i)});
        }
    };
    Doubler d(sch, in, out);
    sch.schedule_at(0, [] {});  // force one timestep so init deltas run
    sch.run();
    EXPECT_EQ(out.read(), 10) << "comb process must establish initial output";
}

TEST(Module, SyncProcDoesNotRunAtInit) {
    Scheduler sch;
    Clock clk(sch, "clk", 10 * NS);
    int ticks = 0;
    struct Counter : Module {
        Counter(Scheduler& s, Signal<Logic>& clk, int& t) : Module(s, "ctr") {
            sync_proc("tick", [&t] { ++t; }, {posedge(clk)});
        }
    };
    Counter c(sch, clk.out, ticks);
    sch.run_until(25 * NS);
    EXPECT_EQ(ticks, 3) << "edges at 5/15/25ns only; no init invocation";
}

TEST(Clock, PeriodAndPhase) {
    Scheduler sch;
    Clock clk(sch, "clk", 10 * NS);
    std::vector<Time> rises;
    Process p(sch, "mon", [&] { rises.push_back(sch.now()); });
    clk.out.add_listener(p, Edge::Pos);
    sch.run_until(40 * NS);
    EXPECT_EQ(rises, (std::vector<Time>{5 * NS, 15 * NS, 25 * NS, 35 * NS}));
    EXPECT_EQ(clk.period(), 10 * NS);
}

TEST(ResetGen, AssertsThenReleases) {
    Scheduler sch;
    ResetGen rst(sch, "rst", 22 * NS);
    EXPECT_EQ(rst.out.read(), Logic::L1);
    sch.run_until(21 * NS);
    EXPECT_EQ(rst.out.read(), Logic::L1);
    sch.run_until(23 * NS);
    EXPECT_EQ(rst.out.read(), Logic::L0);
}

TEST(Profiling, CountsInvocationsAndTime) {
    Scheduler sch;
    sch.set_profiling(true);
    Clock clk(sch, "clk", 10 * NS);
    Process p(sch, "busy", [&] {
        int sink = 0;
        for (int i = 0; i < 1000; ++i) sink += i;
        // Keep the loop from being optimised away so self_time is nonzero.
        asm volatile("" : : "r"(sink) : "memory");
    });
    clk.out.add_listener(p, Edge::Pos);
    sch.run_until(100 * NS);
    EXPECT_EQ(p.invocations(), 10u);
    EXPECT_GT(p.self_time().count(), 0);
    EXPECT_GE(sch.processes().size(), 1u);
}

TEST(Tracer, EmitsHeaderAndChanges) {
    Scheduler sch;
    std::ostringstream vcd;
    Tracer tr(vcd);
    Clock clk(sch, "clk", 10 * NS);
    Signal<LVec<8>> data(sch, "data", LVec<8>{0});
    tr.add(clk.out);
    tr.add(data);
    sch.set_tracer(&tr);
    sch.schedule_at(7 * NS, [&] { data.write(LVec<8>{0xA5}); });
    sch.run_until(20 * NS);
    tr.finish();

    const std::string out = vcd.str();
    EXPECT_NE(out.find("$timescale 1ps $end"), std::string::npos);
    EXPECT_NE(out.find("$var wire 1"), std::string::npos);
    EXPECT_NE(out.find("$var wire 8"), std::string::npos);
    EXPECT_NE(out.find("clk_out"), std::string::npos);
    EXPECT_NE(out.find("#5000"), std::string::npos) << "first clock edge";
    EXPECT_NE(out.find("b10100101 "), std::string::npos) << "data change";
    EXPECT_NE(out.find("#7000"), std::string::npos);
}

TEST(Stats, DeltaAndUpdateCounting) {
    Scheduler sch;
    Signal<int> a(sch, "a", 0);
    Signal<int> b(sch, "b", 0);
    Process p(sch, "fwd", [&] { b.write(a.read()); });
    a.add_listener(p, Edge::Any);
    sch.schedule_at(1 * NS, [&] { a.write(1); });
    sch.run();
    // a commits (delta 1), p runs and writes b, b commits (delta 2).
    EXPECT_EQ(sch.stats.signal_updates, 2u);
    EXPECT_GE(sch.stats.delta_cycles, 2u);
    SimStats snap = sch.stats;
    SimStats diff = sch.stats - snap;
    EXPECT_EQ(diff.signal_updates, 0u);
}

}  // namespace
}  // namespace rtlsim
