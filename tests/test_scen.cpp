// Constrained-random scenarios: seed determinism, constraint independence
// of the batch seed stream, validity-by-construction (every generated
// stream scenario swaps exactly as predicted), per-corruption harness
// outcomes, and the randomized SimB robustness corpus (mutated bitstreams
// must never crash the parser or swap in a half-configured module).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "cover/model.hpp"
#include "engines/census_engine.hpp"
#include "engines/engine_regs.hpp"
#include "engines/matching_engine.hpp"
#include "kernel/kernel.hpp"
#include "recon/rr_boundary.hpp"
#include "resim/icap_artifact.hpp"
#include "resim/portal.hpp"
#include "resim/simb.hpp"
#include "scen/scenario.hpp"
#include "scen/stream_harness.hpp"

namespace {

using namespace autovision;
using scen::Corrupt;
using scen::Scenario;
using scen::ScenarioConstraints;
using scen::StreamSession;

ScenarioConstraints streams_only() {
    ScenarioConstraints c;
    c.w_system = 0;
    c.w_fault = 0;
    return c;
}

// ----------------------------------------------------------- generator

TEST(ScenGen, SameSeedSameScenario) {
    const ScenarioConstraints c;
    for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull, ~0ull}) {
        const Scenario a = scen::generate(c, seed);
        const Scenario b = scen::generate(c, seed);
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.seed, b.seed);
        ASSERT_EQ(a.sessions.size(), b.sessions.size());
        for (std::size_t i = 0; i < a.sessions.size(); ++i) {
            const std::vector<rtlsim::Word> wa = a.sessions[i].words();
            const std::vector<rtlsim::Word> wb = b.sessions[i].words();
            ASSERT_EQ(wa.size(), wb.size());
            for (std::size_t j = 0; j < wa.size(); ++j) {
                EXPECT_EQ(wa[j].to_string(), wb[j].to_string());
            }
        }
    }
}

TEST(ScenGen, DifferentSeedsDiverge) {
    const ScenarioConstraints c;
    const Scenario a = scen::generate(c, 1);
    const Scenario b = scen::generate(c, 2);
    EXPECT_NE(a.name, b.name);
}

TEST(ScenGen, BatchSeedStreamIndependentOfConstraints) {
    // The biased-vs-random closure comparison relies on both arms drawing
    // identical per-scenario seeds; only the weight tables may differ.
    ScenarioConstraints biased = streams_only();
    biased.w_corrupt.fill(10);
    biased.min_sessions = 3;
    biased.max_sessions = 3;
    const auto a = scen::generate_batch(streams_only(), 99, 2, 8);
    const auto b = scen::generate_batch(biased, 99, 2, 8);
    ASSERT_EQ(a.size(), 8u);
    ASSERT_EQ(b.size(), 8u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, b[i].seed) << "index " << i;
    }
}

TEST(ScenGen, StreamScenariosAreValidByConstruction) {
    const ScenarioConstraints c = streams_only();
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        const Scenario s = scen::generate(c, seed);
        ASSERT_EQ(s.kind, scen::Kind::kStream);
        ASSERT_GE(s.sessions.size(), c.min_sessions);
        ASSERT_LE(s.sessions.size(), c.max_sessions);
        for (const StreamSession& ss : s.sessions) {
            EXPECT_TRUE(ss.module_id == 1 || ss.module_id == 2);
            // A type-1 FDRI header can only express 11 bits of count.
            if (!ss.type2_header && ss.corrupt == Corrupt::kNone) {
                EXPECT_LE(ss.payload_words, 0x7FFu);
            }
            EXPECT_GE(ss.word_gap, 1u);
            // words() must always produce a playable stream.
            EXPECT_FALSE(ss.words().empty());
        }
    }
}

TEST(ScenGen, BiasLeavesClosedModelAlone) {
    // With every goal bin hit there is nothing to steer toward.
    cover::Coverage cov = cover::make_model();
    for (const auto& g : cov.groups()) {
        for (std::size_t i = 0; i < g.bins().size(); ++i) {
            cov.find(g.name())->hit(i);
        }
    }
    const ScenarioConstraints base;
    const ScenarioConstraints biased = scen::bias_towards(base, cov);
    EXPECT_EQ(biased.w_corrupt, base.w_corrupt);
    EXPECT_EQ(biased.w_stream, base.w_stream);
    EXPECT_EQ(biased.w_system, base.w_system);
    EXPECT_EQ(biased.w_fault, base.w_fault);
    EXPECT_EQ(biased.w_regions, base.w_regions);
}

TEST(ScenGen, RegionScenariosAreValidAndDeterministic) {
    ScenarioConstraints c;
    c.w_stream = 0;
    c.w_system = 0;
    c.w_fault = 0;
    c.w_regions = 1;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        const Scenario a = scen::generate(c, seed);
        const Scenario b = scen::generate(c, seed);
        ASSERT_EQ(a.kind, scen::Kind::kRegions);
        EXPECT_GE(a.rrm.regions, 2u);
        EXPECT_LE(a.rrm.regions, 4u);
        EXPECT_LT(a.rrm.victim, a.rrm.regions);
        EXPECT_GE(a.rrm.jobs_per_region, 1u);
        EXPECT_LE(a.rrm.jobs_per_region, 4u);
        EXPECT_GE(a.rrm.payload_words, 8u);
        EXPECT_LE(a.rrm.payload_words, 128u);
        if (a.rrm.corrupt != rrm::RegionCorrupt::kNone) {
            EXPECT_FALSE(a.rrm.vm_mode)
                << "cross-region corruptions live on the SimB datapath";
        }
        // Pure in (constraints, seed): the elaboration identity pins every
        // generated field at once.
        EXPECT_EQ(a.rrm.config_hash(), b.rrm.config_hash()) << seed;
    }
}

TEST(ScenGen, ZeroRegionWeightNeverEmitsRegionScenarios) {
    // The default table must be bit-compatible with the pre-pool generator:
    // the zero-weight trailing kind leaves every draw untouched.
    const ScenarioConstraints c;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        EXPECT_NE(scen::generate(c, seed).kind, scen::Kind::kRegions);
    }
}

TEST(ScenGen, BiasEnablesRegionKindWhenRrmBinsOpen) {
    const cover::Coverage cov = cover::make_model();  // nothing hit
    const ScenarioConstraints base;                   // w_regions == 0
    const ScenarioConstraints biased = scen::bias_towards(base, cov);
    EXPECT_GT(biased.w_regions, 0u)
        << "open rrm bins are closeable by no other scenario kind";
}

TEST(ScenGen, BiasBoostsKnobsFeedingOpenBins) {
    const cover::Coverage cov = cover::make_model();  // nothing hit
    const ScenarioConstraints base;
    const ScenarioConstraints biased = scen::bias_towards(base, cov);
    EXPECT_GT(biased.w_corrupt[static_cast<std::size_t>(Corrupt::kTruncate)],
              base.w_corrupt[static_cast<std::size_t>(Corrupt::kTruncate)]);
    EXPECT_LE(biased.w_corrupt[static_cast<std::size_t>(Corrupt::kNone)], 2u)
        << "open malformation bins must damp the clean-session weight";
    EXPECT_GE(biased.w_restore, base.w_restore);
}

// ------------------------------------------------------------- harness

StreamSession clean_session(std::uint8_t module) {
    StreamSession ss;
    ss.module_id = module;
    ss.payload_words = 8;
    ss.filler_seed = 7;
    return ss;
}

scen::StreamResult run_one(const StreamSession& ss) {
    Scenario s;
    s.kind = scen::Kind::kStream;
    s.sessions.push_back(ss);
    return scen::run_stream_scenario(s);
}

TEST(ScenHarness, CleanSessionSwapsOnce) {
    const scen::StreamResult r = run_one(clean_session(2));
    EXPECT_EQ(r.swaps, 1u);
    EXPECT_EQ(r.aborts, 0u);
}

TEST(ScenHarness, EveryCorruptionKindMatchesItsPredictedOutcome) {
    for (std::size_t ci = 0; ci < scen::kNumCorrupt; ++ci) {
        const Corrupt c = static_cast<Corrupt>(ci);
        StreamSession ss = clean_session(2);
        ss.corrupt = c;
        switch (c) {
            case Corrupt::kHeaderOnly:
            case Corrupt::kZeroPayload:
                ss.payload_words = 0;
                break;
            case Corrupt::kTruncate:
                ss.corrupt_pos = 3;
                break;
            case Corrupt::kBitFlip:
                ss.corrupt_pos = 2;
                ss.corrupt_bit = 13;
                break;
            default:
                ss.corrupt_pos = 1;
                break;
        }
        const scen::StreamResult r = run_one(ss);
        const unsigned expected = scen::swap_expected(c) ? 1u : 0u;
        EXPECT_EQ(r.swaps, expected) << scen::to_string(c);
        if (c == Corrupt::kTruncate) {
            EXPECT_EQ(r.aborts, 1u);
            EXPECT_GE(r.truncations, 1u);
        }
    }
}

TEST(ScenHarness, XWordIsReportedAndDoesNotKillTheSwap) {
    StreamSession ss = clean_session(2);
    ss.corrupt = Corrupt::kXWord;
    ss.corrupt_pos = 4;
    const scen::StreamResult r = run_one(ss);
    EXPECT_EQ(r.swaps, 1u);
    cover::Coverage cov = cover::make_model();
    cover::observe_events(cov, r.events, r.clk_period);
    EXPECT_EQ(cov.hits("simb.seq", "malformed.x_on_icap"), 1u);
}

TEST(ScenHarness, CaptureRestoreRoundTripOfIdleModule) {
    // Regression: GRESTORE of a state captured from a never-started module
    // used to be rejected by the geometry consistency check, making the
    // restore coverage bin unreachable.
    StreamSession ss = clean_session(1);  // repeat-module: CIE is resident
    ss.capture_first = true;
    ss.capture_module = 1;
    ss.restore_state = true;
    const scen::StreamResult r = run_one(ss);
    EXPECT_EQ(r.captures, 1u);
    EXPECT_EQ(r.restores, 1u);
    EXPECT_EQ(r.swaps, 1u);
    cover::Coverage cov = cover::make_model();
    cover::observe_events(cov, r.events, r.clk_period);
    EXPECT_EQ(cov.hits("simb.seq", "capture"), 1u);
    EXPECT_EQ(cov.hits("simb.seq", "restore"), 1u);
}

TEST(ScenHarness, GeneratedScenariosSwapExactlyAsPredicted) {
    // The generator's validity contract, end to end: whatever it emits, the
    // harness completes exactly the predicted number of module swaps.
    ScenarioConstraints c = streams_only();
    c.w_corrupt.fill(2);  // plenty of malformed sessions in the mix
    for (std::uint64_t seed = 100; seed < 112; ++seed) {
        const Scenario s = scen::generate(c, seed);
        const scen::StreamResult r = scen::run_stream_scenario(s);
        EXPECT_EQ(r.swaps, s.expected_swaps()) << "seed " << seed;
    }
}

// -------------------------------------------- SimB robustness corpus

// Minimal deterministic generator for the corpus (the test must not depend
// on the library's RNG so corpus cases stay pinned).
struct CorpusRng {
    std::uint64_t s;
    std::uint32_t next() {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint32_t>(s >> 33);
    }
    std::uint32_t below(std::uint32_t n) { return next() % n; }
};

struct RobustnessTb {
    rtlsim::Scheduler sch;
    rtlsim::Clock clk{sch, "clk", 10 * rtlsim::NS};
    rtlsim::ResetGen rst{sch, "rst", 30 * rtlsim::NS};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 100000}};
    rtlsim::Signal<rtlsim::Logic> done_line{sch, "done", rtlsim::Logic::L0};
    EngineRegs cie_regs{sch, "cie_regs", clk.out, 0x60};
    EngineRegs me_regs{sch, "me_regs", clk.out, 0x68};
    CensusEngine cie{sch, "cie", clk.out, rst.out, cie_regs};
    MatchingEngine me{sch, "me", clk.out, rst.out, me_regs};
    RrBoundary rr{sch, "rr", plb.master(0), done_line};
    resim::ExtendedPortal portal{sch, "portal"};
    resim::IcapArtifact icap{sch, "icap", portal};

    RobustnessTb() {
        plb.attach_slave(mem);
        rr.add_module(cie);
        rr.add_module(me);
        portal.map_module(1, 1, rr, 0);
        portal.map_module(1, 2, rr, 1);
        portal.initial_configuration(1, 1);
    }

    void write_all(const std::vector<std::uint32_t>& ws) {
        for (std::uint32_t w : ws) icap.icap_write(rtlsim::Word{w});
    }
};

TEST(ScenRobustness, TruncatedStreamsNeverSwap) {
    CorpusRng rng{0xC0FFEE01};
    for (int i = 0; i < 24; ++i) {
        resim::SimB b;
        b.module_id = static_cast<std::uint8_t>(1 + rng.below(2));
        b.payload_words = 2 + rng.below(63);
        b.seed = rng.next();
        std::vector<std::uint32_t> ws = b.build();
        // Cut anywhere from just after SYNC to just before the final word
        // of the payload: the swap must never have happened.
        const std::size_t payload_end = ws.size() - 2;  // before CMD DESYNC
        const std::size_t cut = 2 + rng.below(
            static_cast<std::uint32_t>(payload_end - 2));
        ws.resize(cut);
        EXPECT_FALSE(resim::SimB::describe(ws).empty());
        RobustnessTb tb;
        tb.write_all(ws);
        EXPECT_EQ(tb.portal.reconfigurations(), 0u)
            << "corpus case " << i << " cut at " << cut;
        EXPECT_TRUE(tb.cie.rm_active())
            << "the pre-swap module must stay resident";
    }
}

TEST(ScenRobustness, PayloadBitFlipsNeverCrashAndNeverBlockTheSwap) {
    CorpusRng rng{0xC0FFEE02};
    for (int i = 0; i < 24; ++i) {
        resim::SimB b;
        b.module_id = 2;
        b.payload_words = 4 + rng.below(60);
        b.seed = rng.next();
        std::vector<std::uint32_t> ws = b.build();
        // Flip one bit of one payload word (payload occupies
        // [8, 8 + payload_words) in the built stream). The filler is
        // opaque data: the parser must complete the transfer regardless.
        const std::size_t idx = 8 + rng.below(b.payload_words);
        ws[idx] ^= 1u << rng.below(32);
        EXPECT_FALSE(resim::SimB::describe(ws).empty());
        RobustnessTb tb;
        tb.write_all(ws);
        EXPECT_EQ(tb.portal.reconfigurations(), 1u) << "corpus case " << i;
        EXPECT_TRUE(tb.me.rm_active());
    }
}

TEST(ScenRobustness, PayloadReorderNeverCrashesAndStillSwaps) {
    CorpusRng rng{0xC0FFEE03};
    for (int i = 0; i < 24; ++i) {
        resim::SimB b;
        b.module_id = 2;
        b.payload_words = 4 + rng.below(60);
        b.seed = rng.next();
        std::vector<std::uint32_t> ws = b.build();
        const std::size_t idx = 8 + rng.below(b.payload_words - 1);
        std::swap(ws[idx], ws[idx + 1]);
        EXPECT_FALSE(resim::SimB::describe(ws).empty());
        RobustnessTb tb;
        tb.write_all(ws);
        EXPECT_EQ(tb.portal.reconfigurations(), 1u) << "corpus case " << i;
    }
}

TEST(ScenRobustness, ArbitraryWordCorruptionNeverCrashesTheParser) {
    // Unrestricted mutation: overwrite any word (framing included) with a
    // random value. No invariant on the outcome beyond memory safety, at
    // most one swap, and a describable stream.
    CorpusRng rng{0xC0FFEE04};
    for (int i = 0; i < 32; ++i) {
        resim::SimB b;
        b.module_id = static_cast<std::uint8_t>(1 + rng.below(2));
        b.payload_words = 2 + rng.below(30);
        b.seed = rng.next();
        std::vector<std::uint32_t> ws = b.build();
        ws[rng.below(static_cast<std::uint32_t>(ws.size()))] = rng.next();
        EXPECT_FALSE(resim::SimB::describe(ws).empty());
        RobustnessTb tb;
        tb.write_all(ws);
        EXPECT_LE(tb.portal.reconfigurations(), 1u) << "corpus case " << i;
    }
}

}  // namespace
