// Additional ISS coverage: the long tail of the instruction subset, CR
// moves, exception-model details and load/store atomicity.
#include <gtest/gtest.h>

#include "bus/dcr.hpp"
#include "bus/intc.hpp"
#include "bus/memory.hpp"
#include "bus/plb.hpp"
#include "isa/assembler.hpp"
#include "isa/cpu.hpp"
#include "kernel/kernel.hpp"

namespace autovision::isa {
namespace {

using rtlsim::Clock;
using rtlsim::NS;
using rtlsim::ResetGen;
using rtlsim::Scheduler;

constexpr rtlsim::Time kClk = 10 * NS;

struct Tb {
    Scheduler sch;
    Clock clk{sch, "clk", kClk};
    ResetGen rst{sch, "rst", 3 * kClk};
    Memory mem;
    Plb plb{sch, "plb", clk.out, rst.out, Plb::Config{1, 16, 5000}};
    DcrChain dcr{sch, "dcr", clk.out, rst.out};
    Intc intc{sch, "intc", clk.out, rst.out, 0x40};
    PpcCpu cpu;

    explicit Tb(const Program& p)
        : cpu(sch, "cpu", clk.out, rst.out, plb.master(0), dcr, mem, intc.irq,
              PpcCpu::Config{p.entry(), 5}) {
        plb.attach_slave(mem);
        dcr.attach(intc);
        mem.load_words(p.origin, p.words);
    }

    bool run_to_halt(unsigned cycles) {
        for (unsigned i = 0; i < cycles / 64; ++i) {
            sch.run_until(sch.now() + 64 * kClk);
            if (cpu.halted() || sch.stop_requested()) break;
        }
        return cpu.halted();
    }
};

Program prog(const std::string& body) {
    return assemble(".org 0x100\n_start:\n" + body + "\ndone: b done\n");
}

TEST(CpuMore, MulliSubficAddic) {
    Tb tb(prog(R"(
        li r3, 7
        mulli r4, r3, -6       # -42
        subfic r5, r3, 100     # 93
        addic r6, r3, 5        # 12
    )"));
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(4), static_cast<std::uint32_t>(-42));
    EXPECT_EQ(tb.cpu.gpr(5), 93u);
    EXPECT_EQ(tb.cpu.gpr(6), 12u);
}

TEST(CpuMore, HighHalfLogicals) {
    Tb tb(prog(R"(
        li r3, 0
        oris r4, r3, 0xA5A5    # 0xA5A50000
        xoris r5, r4, 0xFFFF   # 0x5A5A0000
        andis. r6, r4, 0x00FF  # 0x00A50000, CR0 updated
        bgt gt_ok
        li r7, 0
        b cont
    gt_ok:
        li r7, 1
    cont:
    )"));
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(4), 0xA5A50000u);
    EXPECT_EQ(tb.cpu.gpr(5), 0x5A5A0000u);
    EXPECT_EQ(tb.cpu.gpr(6), 0x00A50000u);
    EXPECT_EQ(tb.cpu.gpr(7), 1u) << "andis. recorded a positive result";
}

TEST(CpuMore, NotAndcSubAliases) {
    Tb tb(prog(R"(
        li r3, 0x0F0F
        not r4, r3             # ~0x0F0F
        li r5, 0xFF
        andc r6, r3, r5        # 0x0F00
        li r7, 30
        li r8, 12
        sub r9, r7, r8         # 18
    )"));
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(4), ~0x0F0Fu);
    EXPECT_EQ(tb.cpu.gpr(6), 0x0F00u);
    EXPECT_EQ(tb.cpu.gpr(9), 18u);
}

TEST(CpuMore, RegisterShifts) {
    Tb tb(prog(R"(
        li r3, 0xF0
        li r4, 4
        slw r5, r3, r4         # 0xF00
        srw r6, r5, r4         # 0xF0
        li r7, -64
        li r8, 3
        sraw r9, r7, r8        # -8
        li r10, 40
        slw r11, r3, r10       # shift >= 32 -> 0
    )"));
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(5), 0xF00u);
    EXPECT_EQ(tb.cpu.gpr(6), 0xF0u);
    EXPECT_EQ(tb.cpu.gpr(9), static_cast<std::uint32_t>(-8));
    EXPECT_EQ(tb.cpu.gpr(11), 0u);
}

TEST(CpuMore, BctrComputedDispatch) {
    Tb tb(prog(R"(
        lis r3, hi(target)
        ori r3, r3, lo(target)
        mtctr r3
        bctr
        li r4, 99              # skipped
    target:
        li r4, 7
    )"));
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(4), 7u);
}

TEST(CpuMore, UpdateFormStores) {
    Tb tb(prog(R"(
        lis r6, hi(buf)
        ori r6, r6, lo(buf)
        addi r6, r6, -4
        li r3, 0xAA
        stbu r3, 4(r6)         # buf[0], r6 = buf
        li r3, 0x1234
        sthu r3, 2(r6)         # buf+2, r6 = buf+2
        li r3, 0x5678
        stwu r3, 2(r6)         # buf+4, r6 = buf+4
        b fin
        .org 0x400
        buf: .word 0, 0
        fin:
    )"));
    ASSERT_TRUE(tb.run_to_halt(4000));
    EXPECT_EQ(tb.mem.peek_u8(0x400), 0xAAu);
    EXPECT_EQ(tb.mem.peek_u16(0x402), 0x1234u);
    EXPECT_EQ(tb.mem.peek_u32(0x404), 0x5678u);
    EXPECT_EQ(tb.cpu.gpr(6), 0x404u);
}

TEST(CpuMore, CrMoveRoundTrip) {
    Tb tb(prog(R"(
        cmpwi r0, 1            # r0=0 < 1 -> LT
        mfcr r3
        li r4, 0
        cmpwi r4, 0            # EQ, clobbers CR0
        mtcr r3                # restore LT
        bge not_lt
        li r5, 1
        b fin
    not_lt:
        li r5, 0
    fin:
    )"));
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(5), 1u) << "CR0 restored from GPR";
    EXPECT_EQ(tb.cpu.gpr(3) >> 28, 0x8u) << "mfcr put LT in the top nibble";
}

TEST(CpuMore, DivisionByZeroReportsAndContinues) {
    Tb tb(prog(R"(
        li r3, 5
        li r4, 0
        divw r5, r3, r4
        divwu r6, r3, r4
        li r7, 1
    )"));
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(5), 0u);
    EXPECT_EQ(tb.cpu.gpr(7), 1u) << "execution continued";
    EXPECT_TRUE(tb.sch.has_diag_from("cpu"));
}

TEST(CpuMore, MsrReadWriteAndWrteei) {
    Tb tb(prog(R"(
        wrteei 1
        mfmsr r3               # EE set
        wrteei 0
        mfmsr r4               # EE clear
        ori r5, r3, 0
        mtmsr r5               # restore EE via mtmsr
        mfmsr r6
    )"));
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(3) & 0x8000u, 0x8000u);
    EXPECT_EQ(tb.cpu.gpr(4) & 0x8000u, 0u);
    EXPECT_EQ(tb.cpu.gpr(6) & 0x8000u, 0x8000u);
}

TEST(CpuMore, RfiRestoresInterruptEnable) {
    // The ISR runs with EE masked; rfi restores SRR1 (EE set), so a second
    // pending interrupt is taken right after return.
    Program p = assemble(R"(
        .equ INTC_IER, 0x41
        .equ INTC_IAR, 0x42
        .org 0x500
        isr:    addi r20, r20, 1
                mfmsr r21          # must have EE clear inside the ISR
                li r22, 0xFF
                mtdcr INTC_IAR, r22
                rfi
        .org 0x1000
        _start: li r20, 0
                li r3, 0xFF
                mtdcr INTC_IER, r3
                wrteei 1
        spin:   cmpwi r20, 1
                bne spin
        done:   b done
    )");
    Tb tb(p);
    tb.sch.schedule_at(100 * kClk, [&] { tb.intc.dcr_write(0x40, Word{1}); });
    ASSERT_TRUE(tb.run_to_halt(20000));
    EXPECT_EQ(tb.cpu.gpr(20), 1u);
    EXPECT_EQ(tb.cpu.gpr(21) & 0x8000u, 0u) << "EE masked inside the ISR";
    EXPECT_EQ(tb.cpu.msr() & 0x8000u, 0x8000u) << "EE restored by rfi";
}

TEST(CpuMore, InterruptNotSampledMidLoadStore) {
    // Interrupts are taken between instructions only: a pending interrupt
    // during a multi-cycle store must wait for the store to finish (the
    // stored value is never torn).
    Program p = assemble(R"(
        .equ INTC_IER, 0x41
        .equ INTC_IAR, 0x42
        .org 0x500
        isr:    lis r21, hi(0x700)
                ori r21, r21, lo(0x700)
                lwz r22, 0(r21)       # observe the completed store
                addi r20, r20, 1
                li r23, 0xFF
                mtdcr INTC_IAR, r23
                rfi
        .org 0x1000
        _start: li r20, 0
                li r3, 0xFF
                mtdcr INTC_IER, r3
                wrteei 1
                lis r4, hi(0x700)
                ori r4, r4, lo(0x700)
                lis r5, hi(0xCAFE0000 + 0xBABE)
                ori r5, r5, lo(0xCAFE0000 + 0xBABE)
        again:  stw r5, 0(r4)
                cmpwi r20, 1
                bne again
        done:   b done
    )");
    Tb tb(p);
    // Raise the interrupt while the CPU is mid-store (storm of stores).
    tb.sch.schedule_at(150 * kClk, [&] { tb.intc.dcr_write(0x40, Word{1}); });
    ASSERT_TRUE(tb.run_to_halt(30000));
    EXPECT_EQ(tb.cpu.gpr(22), 0xCAFEBABEu)
        << "ISR observed a complete, untorn word";
}

TEST(CpuMore, NegOfIntMinWraps) {
    Tb tb(prog(R"(
        lis r3, 0x8000
        neg r4, r3             # two's complement wrap
    )"));
    ASSERT_TRUE(tb.run_to_halt(2000));
    EXPECT_EQ(tb.cpu.gpr(4), 0x80000000u);
}

}  // namespace
}  // namespace autovision::isa
